//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use elearn_cloud::analysis::stats;
use elearn_cloud::cloud::storage::{ObjectStore, ReplicationPolicy};
use elearn_cloud::net::outage::OutageModel;
use elearn_cloud::net::units::{Bandwidth, Bytes};
use elearn_cloud::simcore::metrics::{Histogram, Summary};
use elearn_cloud::simcore::queue::EventQueue;
use elearn_cloud::simcore::time::{SimDuration, SimTime};
use elearn_cloud::simcore::SimRng;

proptest! {
    /// The event queue is a stable priority queue: output is sorted by
    /// time, FIFO among equal times.
    #[test]
    fn event_queue_pops_sorted_stable(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for ties");
            }
        }
    }

    /// Cancelling any subset never disturbs the order of the survivors.
    #[test]
    fn event_queue_cancellation_preserves_survivors(
        times in prop::collection::vec(0u64..20, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (q.push(SimTime::from_nanos(t), i), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for ((id, i), &c) in ids.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if c {
                q.cancel(*id);
                cancelled.insert(*i);
            }
        }
        let mut survivors = Vec::new();
        while let Some((_, i)) = q.pop() {
            prop_assert!(!cancelled.contains(&i), "cancelled event fired");
            survivors.push(i);
        }
        prop_assert_eq!(survivors.len(), times.len() - cancelled.len());
    }

    /// SimRng stream derivation is position-independent and deterministic.
    #[test]
    fn rng_derivation_is_stable(seed in any::<u64>(), label in "[a-z]{1,12}", skips in 0usize..64) {
        let mut parent = SimRng::seed(seed);
        let early = parent.derive(&label);
        for _ in 0..skips {
            let _ = parent.next_u64();
        }
        let late = parent.derive(&label);
        prop_assert_eq!(early, late);
    }

    /// Bounded integers are in range for arbitrary bounds.
    #[test]
    fn rng_range_respects_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 0u64..1_000) {
        let mut rng = SimRng::seed(seed);
        let hi = lo + span;
        for _ in 0..32 {
            let x = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// Summary::merge equals recording everything into one summary.
    #[test]
    fn summary_merge_is_concat(
        xs in prop::collection::vec(-1e6f64..1e6, 0..50),
        ys in prop::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for &x in &xs { a.record(x); all.record(x); }
        for &y in &ys { b.record(y); all.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-3);
    }

    /// Histogram quantiles are monotone in q and bounded by observed
    /// extrema.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let (lo, hi) = h.min_max().unwrap();
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile not monotone");
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "quantile out of range");
            prev = v;
        }
    }

    /// Outage schedules are sorted, disjoint, inside the horizon, and the
    /// measured availability is consistent with total downtime.
    #[test]
    fn outage_schedule_invariants(seed in any::<u64>(), mtbf_h in 1u64..200, mttr_m in 1u64..120) {
        let model = OutageModel::new(
            SimDuration::from_hours(mtbf_h),
            SimDuration::from_mins(mttr_m),
        );
        let mut rng = SimRng::seed(seed);
        let horizon = SimTime::from_secs(30 * 86_400);
        let sched = model.schedule(&mut rng, horizon);
        let mut prev_end = SimTime::ZERO;
        for &(s, e) in sched.windows() {
            prop_assert!(s < e);
            prop_assert!(s >= prev_end);
            prop_assert!(e <= horizon);
            prev_end = e;
        }
        let down = sched.downtime_within(SimTime::ZERO, horizon);
        let avail = sched.measured_availability();
        let expect = 1.0 - down.as_secs_f64() / horizon.as_secs_f64();
        prop_assert!((avail - expect).abs() < 1e-9);
    }

    /// Replicated stores never lose data while at least one replica site
    /// survives, and always lose everything when all sites burn.
    #[test]
    fn replication_survival_boundary(replicas in 1u32..5, sites in 1u32..5, objects in 1usize..40) {
        let policy = ReplicationPolicy::new(replicas, sites);
        let mut store = ObjectStore::new(policy);
        for _ in 0..objects {
            store.put(Bytes::from_kib(64));
        }
        let spread = replicas.min(sites);
        // Destroy all but one of the sites replicas actually occupy.
        for site in 0..spread.saturating_sub(1) {
            store.destroy_site(site);
        }
        if spread > 0 {
            prop_assert_eq!(store.survival_rate(), 1.0, "lost data with a live replica site");
        }
        // Destroying every site kills everything.
        for site in 0..sites {
            store.destroy_site(site);
        }
        prop_assert_eq!(store.survival_rate(), 0.0);
    }

    /// Bandwidth transfer times scale linearly with size.
    #[test]
    fn bandwidth_linearity(mbps in 1.0f64..10_000.0, kib in 1u64..1_000_000) {
        let bw = Bandwidth::from_mbps(mbps);
        let one = bw.seconds_for(Bytes::from_kib(kib));
        let two = bw.seconds_for(Bytes::from_kib(kib * 2));
        prop_assert!((two - 2.0 * one).abs() < 1e-6 * two.max(1e-12));
    }

    /// percentile() of an exact list brackets every element between the
    /// 0th and 100th percentile.
    #[test]
    fn percentile_brackets(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let lo = stats::percentile(&xs, 0.0);
        let hi = stats::percentile(&xs, 1.0);
        for &x in &xs {
            prop_assert!(x >= lo && x <= hi);
        }
        let med = stats::median(&xs);
        prop_assert!(med >= lo && med <= hi);
    }

    /// SimTime/SimDuration arithmetic round-trips.
    #[test]
    fn time_arithmetic_round_trip(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }
}

proptest! {
    /// Datacenter invariant: under any sequence of provision / decommission
    /// / fail / repair operations, no host is ever over-allocated and the
    /// active-VM count matches the hosts' VM lists.
    #[test]
    fn datacenter_allocation_invariants(ops in prop::collection::vec(0u8..4, 1..120), seed in any::<u64>()) {
        use elearn_cloud::cloud::datacenter::Datacenter;
        use elearn_cloud::cloud::placement::BestFit;
        use elearn_cloud::cloud::resources::{Resources, VmSize};
        use elearn_cloud::cloud::vm::VmState;

        let mut dc = Datacenter::new("prop", BestFit, SimDuration::from_secs(30));
        dc.add_hosts(3, Resources::new(8, 32.0, 200.0));
        let mut rng = SimRng::seed(seed);
        let mut t = SimTime::ZERO;
        let mut live: Vec<elearn_cloud::cloud::vm::VmId> = Vec::new();

        for op in ops {
            t += SimDuration::from_secs(60);
            match op {
                0 => {
                    let size = *rng.pick(&VmSize::ALL).unwrap();
                    if let Ok((vm, _)) = dc.provision(size, t) {
                        live.push(vm);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let idx = rng.next_below(live.len() as u64) as usize;
                        let vm = live.swap_remove(idx);
                        dc.decommission(vm, t);
                    }
                }
                2 => {
                    let host = elearn_cloud::cloud::vm::HostId::new(rng.next_below(3));
                    let victims = dc.fail_host(host, t);
                    live.retain(|v| !victims.contains(v));
                }
                _ => {
                    let host = elearn_cloud::cloud::vm::HostId::new(rng.next_below(3));
                    dc.repair_host(host);
                }
            }
            // Invariants.
            for host in dc.hosts() {
                prop_assert!(
                    host.capacity().fits(&host.allocated()),
                    "host over-allocated"
                );
            }
            let listed: usize = dc.hosts().map(|h| h.vms().len()).sum();
            let active = dc
                .vms()
                .filter(|vm| matches!(vm.state(), VmState::Provisioning { .. } | VmState::Running))
                .count();
            prop_assert_eq!(listed, active, "host lists disagree with VM states");
            prop_assert_eq!(active, live.len(), "tracker disagrees with datacenter");
        }
    }

    /// The autoscaler's desired count is monotone in load and always within
    /// its configured bounds.
    #[test]
    fn autoscaler_desired_is_monotone_and_bounded(
        min in 1u32..5,
        extra in 0u32..50,
        util in 0.05f64..1.0,
        loads in prop::collection::vec(0.0f64..100_000.0, 2..40),
    ) {
        use elearn_cloud::cloud::autoscale::AutoScaler;
        let max = min + extra;
        let s = AutoScaler::new(min, max, util, SimDuration::from_secs(60));
        let mut sorted = loads.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0;
        for (i, &load) in sorted.iter().enumerate() {
            let d = s.desired_count(load, 120.0);
            prop_assert!((min..=max).contains(&d));
            if i > 0 {
                prop_assert!(d >= prev, "desired count not monotone in load");
            }
            prev = d;
        }
    }

    /// Exit cost is monotone in the data volume for every deployment model.
    #[test]
    fn exit_cost_monotone_in_data(gib_a in 1u64..5_000, gib_b in 1u64..5_000) {
        use elearn_cloud::cloud::billing::PriceSheet;
        use elearn_cloud::deploy::migration::exit_plan;
        use elearn_cloud::deploy::model::{Deployment, DeploymentKind};
        use elearn_cloud::net::link::{Link, LinkProfile};

        let (lo, hi) = if gib_a <= gib_b { (gib_a, gib_b) } else { (gib_b, gib_a) };
        let prices = PriceSheet::public_2013();
        let link = Link::from_profile(LinkProfile::InterDatacenter);
        for kind in DeploymentKind::ALL {
            let d = Deployment::canonical(kind);
            let small = exit_plan(&d, Bytes::from_gib(lo), &prices, &link);
            let large = exit_plan(&d, Bytes::from_gib(hi), &prices, &link);
            prop_assert!(large.total_cost >= small.total_cost);
            prop_assert!(large.duration >= small.duration);
        }
    }

    /// The workload rate is non-negative and never exceeds the analytic
    /// peak, at any instant over two years.
    #[test]
    fn workload_rate_bounded_by_peak(students in 1u32..200_000, t_secs in 0u64..63_072_000) {
        use elearn_cloud::elearn::calendar::AcademicCalendar;
        use elearn_cloud::elearn::workload::WorkloadModel;

        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let load = WorkloadModel::standard(students, cal);
        let rate = load.rate_at(SimTime::from_secs(t_secs));
        prop_assert!(rate >= 0.0);
        prop_assert!(rate <= load.peak_rate() + 1e-9, "rate {} > peak {}", rate, load.peak_rate());
    }

    /// Queueing station conservation: completed + in-service + waiting +
    /// rejected equals total arrivals, for any arrival pattern.
    #[test]
    fn station_conserves_jobs(
        gaps in prop::collection::vec(1u64..5_000, 1..200),
        services in prop::collection::vec(1u64..10_000, 1..200),
        servers in 1usize..6,
        cap in prop::option::of(0usize..8),
    ) {
        use elearn_cloud::simcore::queueing::Station;

        let mut st = Station::new(servers, cap);
        let mut t = SimTime::ZERO;
        let n = gaps.len().min(services.len());
        let mut accepted = 0u64;
        for i in 0..n {
            t += SimDuration::from_millis(gaps[i]);
            if st.arrive(t, SimDuration::from_millis(services[i])) {
                accepted += 1;
            }
        }
        let before_drain =
            st.completed().value() + st.in_service() as u64 + st.queue_length() as u64;
        prop_assert_eq!(before_drain, accepted);
        prop_assert_eq!(accepted + st.rejected().value(), n as u64);
        // Drain completely.
        st.advance_to(t + SimDuration::from_secs(10_000));
        prop_assert_eq!(st.completed().value(), accepted);
        prop_assert_eq!(st.queue_length(), 0);
        prop_assert_eq!(st.in_service(), 0);
    }
}
