//! Property-based tests over the core data structures and invariants.
//!
//! Previously written against the `proptest` crate; the build container has
//! no crates.io access, so the file now drives the same properties from a
//! tiny in-file case generator seeded by [`SimRng`]. Inputs are random but
//! fully deterministic: every case derives its generator from the property's
//! fixed seed and the case index, so a failure reproduces exactly.

use elearn_cloud::analysis::stats;
use elearn_cloud::cloud::storage::{ObjectStore, ReplicationPolicy};
use elearn_cloud::net::outage::OutageModel;
use elearn_cloud::net::units::{Bandwidth, Bytes};
use elearn_cloud::simcore::metrics::{Histogram, Summary};
use elearn_cloud::simcore::queue::EventQueue;
use elearn_cloud::simcore::time::{SimDuration, SimTime};
use elearn_cloud::simcore::SimRng;

/// Runs `f` against `n` independently seeded generators.
fn cases(n: u64, seed: u64, mut f: impl FnMut(&mut SimRng)) {
    let root = SimRng::seed(seed).derive("proptest-cases");
    for i in 0..n {
        f(&mut root.derive_u64(i));
    }
}

/// A vector of uniform draws from `[lo, hi]`, with a length in `len`.
fn vec_u64(rng: &mut SimRng, lo: u64, hi: u64, len: std::ops::Range<usize>) -> Vec<u64> {
    let n = rng.range_u64(len.start as u64, len.end as u64 - 1) as usize;
    (0..n).map(|_| rng.range_u64(lo, hi)).collect()
}

/// A vector of uniform draws from `[lo, hi)`, with a length in `len`.
fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, len: std::ops::Range<usize>) -> Vec<f64> {
    let n = rng.range_u64(len.start as u64, len.end as u64 - 1) as usize;
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

/// The event queue is a stable priority queue: output is sorted by time,
/// FIFO among equal times.
#[test]
fn event_queue_pops_sorted_stable() {
    cases(64, 0xE0_01, |rng| {
        let times = vec_u64(rng, 0, 49, 1..200);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated for ties");
            }
        }
    });
}

/// Cancelling any subset never disturbs the order of the survivors.
#[test]
fn event_queue_cancellation_preserves_survivors() {
    cases(64, 0xE0_02, |rng| {
        let times = vec_u64(rng, 0, 19, 1..100);
        let cancel_mask: Vec<bool> = (0..times.len()).map(|_| rng.chance(0.5)).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (q.push(SimTime::from_nanos(t), i), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for ((id, i), &c) in ids.iter().zip(&cancel_mask) {
            if c {
                q.cancel(*id);
                cancelled.insert(*i);
            }
        }
        let mut survivors = Vec::new();
        while let Some((_, i)) = q.pop() {
            assert!(!cancelled.contains(&i), "cancelled event fired");
            survivors.push(i);
        }
        assert_eq!(survivors.len(), times.len() - cancelled.len());
    });
}

/// SimRng stream derivation is position-independent and deterministic.
#[test]
fn rng_derivation_is_stable() {
    cases(64, 0xE0_03, |rng| {
        let seed = rng.next_u64();
        let len = rng.range_u64(1, 12) as usize;
        let label: String = (0..len)
            .map(|_| char::from(b'a' + rng.next_below(26) as u8))
            .collect();
        let skips = rng.next_below(64);
        let mut parent = SimRng::seed(seed);
        let early = parent.derive(&label);
        for _ in 0..skips {
            let _ = parent.next_u64();
        }
        let late = parent.derive(&label);
        assert_eq!(early, late);
    });
}

/// Bounded integers are in range for arbitrary bounds.
#[test]
fn rng_range_respects_bounds() {
    cases(64, 0xE0_04, |rng| {
        let seed = rng.next_u64();
        let lo = rng.next_below(1_000);
        let hi = lo + rng.next_below(1_000);
        let mut inner = SimRng::seed(seed);
        for _ in 0..32 {
            let x = inner.range_u64(lo, hi);
            assert!((lo..=hi).contains(&x));
        }
    });
}

/// Summary::merge equals recording everything into one summary.
#[test]
fn summary_merge_is_concat() {
    cases(64, 0xE0_05, |rng| {
        let xs = vec_f64(rng, -1e6, 1e6, 0..50);
        let ys = vec_f64(rng, -1e6, 1e6, 0..50);
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for &x in &xs {
            a.record(x);
            all.record(x);
        }
        for &y in &ys {
            b.record(y);
            all.record(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-6);
        assert!((a.variance() - all.variance()).abs() < 1e-3);
    });
}

/// Histogram quantiles are monotone in q and bounded by observed extrema.
#[test]
fn histogram_quantiles_monotone() {
    cases(64, 0xE0_06, |rng| {
        let xs = vec_f64(rng, 0.0, 1e9, 1..200);
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let (lo, hi) = h.min_max().unwrap();
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone");
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "quantile out of range");
            prev = v;
        }
    });
}

/// Outage schedules are sorted, disjoint, inside the horizon, and the
/// measured availability is consistent with total downtime.
#[test]
fn outage_schedule_invariants() {
    cases(48, 0xE0_07, |rng| {
        let mtbf_h = rng.range_u64(1, 199);
        let mttr_m = rng.range_u64(1, 119);
        let model = OutageModel::new(
            SimDuration::from_hours(mtbf_h),
            SimDuration::from_mins(mttr_m),
        );
        let mut sched_rng = SimRng::seed(rng.next_u64());
        let horizon = SimTime::from_secs(30 * 86_400);
        let sched = model.schedule(&mut sched_rng, horizon);
        let mut prev_end = SimTime::ZERO;
        for &(s, e) in sched.windows() {
            assert!(s < e);
            assert!(s >= prev_end);
            assert!(e <= horizon);
            prev_end = e;
        }
        let down = sched.downtime_within(SimTime::ZERO, horizon);
        let avail = sched.measured_availability();
        let expect = 1.0 - down.as_secs_f64() / horizon.as_secs_f64();
        assert!((avail - expect).abs() < 1e-9);
    });
}

/// Replicated stores never lose data while at least one replica site
/// survives, and always lose everything when all sites burn.
#[test]
fn replication_survival_boundary() {
    cases(64, 0xE0_08, |rng| {
        let replicas = rng.range_u64(1, 4) as u32;
        let sites = rng.range_u64(1, 4) as u32;
        let objects = rng.range_u64(1, 39);
        let policy = ReplicationPolicy::new(replicas, sites);
        let mut store = ObjectStore::new(policy);
        for _ in 0..objects {
            store.put(Bytes::from_kib(64));
        }
        let spread = replicas.min(sites);
        // Destroy all but one of the sites replicas actually occupy.
        for site in 0..spread.saturating_sub(1) {
            store.destroy_site(site);
        }
        assert_eq!(
            store.survival_rate(),
            1.0,
            "lost data with a live replica site"
        );
        // Destroying every site kills everything.
        for site in 0..sites {
            store.destroy_site(site);
        }
        assert_eq!(store.survival_rate(), 0.0);
    });
}

/// Bandwidth transfer times scale linearly with size.
#[test]
fn bandwidth_linearity() {
    cases(64, 0xE0_09, |rng| {
        let mbps = rng.range_f64(1.0, 10_000.0);
        let kib = rng.range_u64(1, 999_999);
        let bw = Bandwidth::from_mbps(mbps);
        let one = bw.seconds_for(Bytes::from_kib(kib));
        let two = bw.seconds_for(Bytes::from_kib(kib * 2));
        assert!((two - 2.0 * one).abs() < 1e-6 * two.max(1e-12));
    });
}

/// percentile() of an exact list brackets every element between the 0th
/// and 100th percentile.
#[test]
fn percentile_brackets() {
    cases(64, 0xE0_10, |rng| {
        let xs = vec_f64(rng, -1e9, 1e9, 1..100);
        let lo = stats::percentile(&xs, 0.0);
        let hi = stats::percentile(&xs, 1.0);
        for &x in &xs {
            assert!(x >= lo && x <= hi);
        }
        let med = stats::median(&xs);
        assert!(med >= lo && med <= hi);
    });
}

/// SimTime/SimDuration arithmetic round-trips.
#[test]
fn time_arithmetic_round_trip() {
    cases(64, 0xE0_11, |rng| {
        let base = rng.next_below(1_000_000_000);
        let delta = rng.next_below(1_000_000_000);
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).saturating_since(t), d);
    });
}

/// Datacenter invariant: under any sequence of provision / decommission /
/// fail / repair operations, no host is ever over-allocated and the
/// active-VM count matches the hosts' VM lists.
#[test]
fn datacenter_allocation_invariants() {
    use elearn_cloud::cloud::datacenter::Datacenter;
    use elearn_cloud::cloud::placement::BestFit;
    use elearn_cloud::cloud::resources::{Resources, VmSize};
    use elearn_cloud::cloud::vm::VmState;

    cases(32, 0xE0_12, |rng| {
        let ops = vec_u64(rng, 0, 3, 1..120);
        let mut dc = Datacenter::new("prop", BestFit, SimDuration::from_secs(30));
        dc.add_hosts(3, Resources::new(8, 32.0, 200.0));
        let mut t = SimTime::ZERO;
        let mut live: Vec<elearn_cloud::cloud::vm::VmId> = Vec::new();

        for op in ops {
            t += SimDuration::from_secs(60);
            match op {
                0 => {
                    let size = *rng.pick(&VmSize::ALL).unwrap();
                    if let Ok((vm, _)) = dc.provision(size, t) {
                        live.push(vm);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let idx = rng.next_below(live.len() as u64) as usize;
                        let vm = live.swap_remove(idx);
                        dc.decommission(vm, t);
                    }
                }
                2 => {
                    let host = elearn_cloud::cloud::vm::HostId::new(rng.next_below(3));
                    let victims = dc.fail_host(host, t);
                    live.retain(|v| !victims.contains(v));
                }
                _ => {
                    let host = elearn_cloud::cloud::vm::HostId::new(rng.next_below(3));
                    dc.repair_host(host);
                }
            }
            // Invariants.
            for host in dc.hosts() {
                assert!(
                    host.capacity().fits(&host.allocated()),
                    "host over-allocated"
                );
            }
            let listed: usize = dc.hosts().map(|h| h.vms().len()).sum();
            let active = dc
                .vms()
                .filter(|vm| matches!(vm.state(), VmState::Provisioning { .. } | VmState::Running))
                .count();
            assert_eq!(listed, active, "host lists disagree with VM states");
            assert_eq!(active, live.len(), "tracker disagrees with datacenter");
        }
    });
}

/// The autoscaler's desired count is monotone in load and always within
/// its configured bounds.
#[test]
fn autoscaler_desired_is_monotone_and_bounded() {
    use elearn_cloud::cloud::autoscale::AutoScaler;

    cases(64, 0xE0_13, |rng| {
        let min = rng.range_u64(1, 4) as u32;
        let max = min + rng.next_below(50) as u32;
        let util = rng.range_f64(0.05, 1.0);
        let mut loads = vec_f64(rng, 0.0, 100_000.0, 2..40);
        let s = AutoScaler::new(min, max, util, SimDuration::from_secs(60));
        loads.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0;
        for (i, &load) in loads.iter().enumerate() {
            let d = s.desired_count(load, 120.0);
            assert!((min..=max).contains(&d));
            if i > 0 {
                assert!(d >= prev, "desired count not monotone in load");
            }
            prev = d;
        }
    });
}

/// Exit cost is monotone in the data volume for every deployment model.
#[test]
fn exit_cost_monotone_in_data() {
    use elearn_cloud::cloud::billing::PriceSheet;
    use elearn_cloud::deploy::migration::exit_plan;
    use elearn_cloud::deploy::model::{Deployment, DeploymentKind};
    use elearn_cloud::net::link::{Link, LinkProfile};

    cases(48, 0xE0_14, |rng| {
        let gib_a = rng.range_u64(1, 4_999);
        let gib_b = rng.range_u64(1, 4_999);
        let (lo, hi) = if gib_a <= gib_b {
            (gib_a, gib_b)
        } else {
            (gib_b, gib_a)
        };
        let prices = PriceSheet::public_2013();
        let link = Link::from_profile(LinkProfile::InterDatacenter);
        for kind in DeploymentKind::ALL {
            let d = Deployment::canonical(kind);
            let small = exit_plan(&d, Bytes::from_gib(lo), &prices, &link);
            let large = exit_plan(&d, Bytes::from_gib(hi), &prices, &link);
            assert!(large.total_cost >= small.total_cost);
            assert!(large.duration >= small.duration);
        }
    });
}

/// The workload rate is non-negative and never exceeds the analytic peak,
/// at any instant over two years.
#[test]
fn workload_rate_bounded_by_peak() {
    use elearn_cloud::elearn::calendar::AcademicCalendar;
    use elearn_cloud::elearn::workload::WorkloadModel;

    cases(64, 0xE0_15, |rng| {
        let students = rng.range_u64(1, 199_999) as u32;
        let t_secs = rng.next_below(63_072_000);
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let load = WorkloadModel::builder(students, cal).build().unwrap();
        let rate = load.rate_at(SimTime::from_secs(t_secs));
        assert!(rate >= 0.0);
        assert!(
            rate <= load.peak_rate() + 1e-9,
            "rate {} > peak {}",
            rate,
            load.peak_rate()
        );
    });
}

/// Queueing station conservation: completed + in-service + waiting +
/// rejected equals total arrivals, for any arrival pattern.
#[test]
fn station_conserves_jobs() {
    use elearn_cloud::simcore::queueing::Station;

    cases(48, 0xE016, |rng| {
        let gaps = vec_u64(rng, 1, 4_999, 1..200);
        let services = vec_u64(rng, 1, 9_999, 1..200);
        let servers = rng.range_u64(1, 5) as usize;
        let cap = if rng.chance(0.5) {
            Some(rng.next_below(8) as usize)
        } else {
            None
        };
        let mut st = Station::new(servers, cap);
        let mut t = SimTime::ZERO;
        let n = gaps.len().min(services.len());
        let mut accepted = 0u64;
        for i in 0..n {
            t += SimDuration::from_millis(gaps[i]);
            if st.arrive(t, SimDuration::from_millis(services[i])) {
                accepted += 1;
            }
        }
        let before_drain =
            st.completed().value() + st.in_service() as u64 + st.queue_length() as u64;
        assert_eq!(before_drain, accepted);
        assert_eq!(accepted + st.rejected().value(), n as u64);
        // Drain completely.
        st.advance_to(t + SimDuration::from_secs(10_000));
        assert_eq!(st.completed().value(), accepted);
        assert_eq!(st.queue_length(), 0);
        assert_eq!(st.in_service(), 0);
    });
}

/// The fluid queue's backlog is never negative and its mass balance
/// closes after every step: offered = served + shed + backlog.
#[test]
fn fluid_backlog_never_negative_and_mass_is_conserved() {
    use elearn_cloud::fluid::FluidQueue;

    cases(64, 0xE0_18, |rng| {
        let classes = rng.range_u64(1, 3) as usize;
        let capacity = rng.range_f64(10.0, 500.0);
        let limit = rng.range_f64(0.0, 2_000.0);
        let mut q = FluidQueue::new(classes, capacity, limit);
        for _ in 0..40 {
            let rates: Vec<f64> = (0..classes).map(|_| rng.range_f64(0.0, 400.0)).collect();
            let dt = SimDuration::from_secs(rng.range_u64(1, 120));
            let substeps = rng.range_u64(1, 8) as u32;
            let flow = q.step(dt, &rates, substeps);
            assert!(flow.backlog >= 0.0, "tick backlog {}", flow.backlog);
            for c in 0..classes {
                assert!(q.class_backlog(c) >= 0.0, "class {c} went negative");
            }
            let balance = q.served_total() + q.shed_total() + q.backlog();
            let tol = 1e-6 * q.offered_total().max(1.0);
            assert!(
                (q.offered_total() - balance).abs() <= tol,
                "offered {} vs served+shed+backlog {balance}",
                q.offered_total()
            );
        }
    });
}

/// Request mass survives a fluid→event→fluid fidelity round-trip: after
/// materializing the backlog, settling what the event layer handled and
/// absorbing the rest, the balance closes to within the integer rounding
/// materialization is allowed (at most one request per class).
#[test]
fn materialization_boundary_conserves_request_mass() {
    use elearn_cloud::fluid::FluidQueue;

    cases(64, 0xE0_19, |rng| {
        let classes = rng.range_u64(1, 3) as usize;
        let mut q = FluidQueue::new(classes, rng.range_f64(5.0, 50.0), 1e9);
        for _ in 0..10 {
            let rates: Vec<f64> = (0..classes).map(|_| rng.range_f64(0.0, 200.0)).collect();
            q.step(SimDuration::from_secs(rng.range_u64(1, 60)), &rates, 4);
        }
        let counts = q.materialize(rng, 0);
        assert_eq!(q.backlog(), 0.0, "materialize must zero the backlog");
        // The event layer serves and sheds random shares of the
        // materialized requests and hands the rest back.
        let total: u64 = counts.iter().sum();
        let served = rng.range_u64(0, total);
        let shed = rng.range_u64(0, total - served);
        let mut back = vec![0u64; classes];
        back[0] = total - served - shed;
        q.settle_materialized(served, shed);
        q.absorb(&back);
        let balance =
            q.served_total() + q.shed_total() + q.backlog() + q.materialized_outstanding();
        let tol = classes as f64 + 1e-6 * q.offered_total();
        assert!(
            (q.offered_total() - balance).abs() <= tol,
            "offered {} vs balance {balance} (tol {tol})",
            q.offered_total()
        );
        assert!(q.backlog() >= 0.0);
    });
}
