//! Cross-fidelity validation: the fluid fast path must tell the same
//! story as the exact event-level simulator.
//!
//! Experiments that never consult `Scenario::fidelity` must be *exactly*
//! equal across fidelities (the flag is plumbing, not physics for them);
//! the ones that branch on it (E12's surge DES) must agree within pinned
//! tolerances. E18 — the experiment built around the fluid engine — has
//! its own event-vs-fluid agreement tests in `elc-core`.

use elearn_cloud::core::{find, registry, Scenario};
use elearn_cloud::fluid::Fidelity;

/// Absolute tolerance on E12's `rejected (%)` columns (percentage
/// points): the fluid mean flow vs Poisson sampling at 25k students.
const REJECTED_PCT_TOL: f64 = 2.0;

/// Absolute tolerance on E12's `p95 latency (s)` columns; both paths sit
/// on the same saturating load-latency curve, so minute-level p95 moves
/// only with arrival noise near the knee.
const P95_TOL_S: f64 = 1.0;

/// The fleet trajectory is rate-driven at every fidelity, so machine
/// metrics must match to round-off.
const FLEET_TOL: f64 = 1e-9;

#[test]
fn every_experiment_agrees_across_fidelities_at_university_scale() {
    let event_scn = Scenario::university(42);
    let fluid_scn = Scenario::university(42).with_fidelity(Fidelity::Fluid);
    for e in registry() {
        // T1 re-runs the whole suite and E18 pins its own agreement;
        // both would only repeat what this loop already covers.
        if e.id() == "t1" || e.id() == "e18" {
            continue;
        }
        let event = e.run_metrics(&event_scn).to_named_vec();
        let fluid = e.run_metrics(&fluid_scn).to_named_vec();
        assert_eq!(
            event.len(),
            fluid.len(),
            "{}: fidelity changed the metric set shape",
            e.id()
        );
        for ((name, ev), (fname, fv)) in event.iter().zip(&fluid) {
            assert_eq!(name, fname, "{}: metric names diverged", e.id());
            if e.id() != "e12" {
                // No fluid branch: the flag must be invisible.
                assert!(
                    ev.to_bits() == fv.to_bits(),
                    "{}: {name} moved under fluid fidelity: {ev} vs {fv}",
                    e.id()
                );
                continue;
            }
            let tol = if name.starts_with("rejected (%)") {
                REJECTED_PCT_TOL
            } else if name.starts_with("p95 latency (s)") {
                P95_TOL_S
            } else {
                // vm-hours / peak fleet: rate-driven, exact.
                FLEET_TOL
            };
            assert!(
                (ev - fv).abs() <= tol,
                "e12: {name} event {ev} vs fluid {fv} (tol {tol})"
            );
        }
    }
}

#[test]
fn auto_fidelity_equals_fluid_where_only_the_mean_flow_is_modelled() {
    // E12 models fluid fidelity as the tick-level mean flow and treats
    // auto the same way (its autoscaler is rate-driven, so there is no
    // trigger to materialize on); the outputs must be identical.
    let e12 = find("e12").expect("e12 registered");
    let fluid = e12.run_metrics(&Scenario::university(42).with_fidelity(Fidelity::Fluid));
    let auto = e12.run_metrics(&Scenario::university(42).with_fidelity(Fidelity::Auto));
    assert_eq!(fluid, auto);
}

#[test]
fn default_fidelity_is_event() {
    assert_eq!(Scenario::university(42).fidelity(), Fidelity::Event);
    assert_eq!(Scenario::national_5m(42).fidelity(), Fidelity::Auto);
}
