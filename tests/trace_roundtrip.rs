//! Record → replay round-trip: a workload trace teed off a
//! generator-driven run reproduces that run's outputs byte for byte.
//!
//! Three invariants, end to end across crates:
//!
//! * recording is a pure observation — attaching a recorder never
//!   changes the run it captures;
//! * replaying the recorded trace reproduces the generator run's
//!   sections and metrics exactly (E12's Poisson-driven surge and E16's
//!   fluid resilience arms);
//! * replay stays byte-identical at any thread count (runner) and any
//!   shard count (E16's parallel arms), exactly like the generator path.

use std::sync::Arc;

use elearn_cloud::core::experiments::{e12, e16, find};
use elearn_cloud::core::Scenario;
use elearn_cloud::runner::progress::Silent;
use elearn_cloud::runner::{run, RunSpec};
use elearn_cloud::wltrace::{TraceRecorder, WorkloadTrace};

/// Runs `experiment` once with a recorder attached and returns the
/// rendered section plus the captured trace.
fn record(
    scenario: &Scenario,
    experiment: fn(&Scenario) -> String,
) -> (String, Arc<WorkloadTrace>) {
    let recorder = TraceRecorder::new();
    let mut recording = scenario.clone();
    recording.attach_recorder(recorder.clone());
    let section = experiment(&recording);
    let trace = recorder.finish().expect("the run created demand sources");
    (section, trace.into_shared())
}

fn e12_section(scenario: &Scenario) -> String {
    e12::run(scenario).section().to_string()
}

fn e16_section(scenario: &Scenario) -> String {
    e16::run(scenario).section().to_string()
}

#[test]
fn e12_replay_reproduces_the_generator_run_byte_for_byte() {
    let scenario = Scenario::university(42);
    let plain = e12_section(&scenario);
    let (recorded, trace) = record(&scenario, e12_section);
    assert_eq!(recorded, plain, "recording must not perturb the run");

    let replayed = scenario
        .with_workload_trace(Arc::clone(&trace))
        .expect("recorded trace validates");
    assert_eq!(e12_section(&replayed), plain, "replay = generator");
    // A second replay over the same scenario rebinds streams by time.
    assert_eq!(e12_section(&replayed), plain, "replay is repeatable");
}

#[test]
fn e16_replay_is_byte_identical_at_any_shard_count() {
    let scenario = Scenario::small_college(2013);
    let plain = e16_section(&scenario);
    let (recorded, trace) = record(&scenario, e16_section);
    assert_eq!(recorded, plain, "recording must not perturb the run");

    for shards in [1u32, 2, 4] {
        let replayed = scenario
            .with_shards(shards)
            .with_workload_trace(Arc::clone(&trace))
            .expect("recorded trace validates");
        assert_eq!(e16_section(&replayed), plain, "shards={shards}");
    }
}

#[test]
fn replayed_metrics_match_the_generator_metrics_exactly() {
    let scenario = Scenario::small_college(7);
    let plain = e12::run(&scenario).metrics();
    let (_, trace) = record(&scenario, e12_section);
    let replayed = scenario
        .with_workload_trace(trace)
        .expect("recorded trace validates");
    assert_eq!(e12::run(&replayed).metrics(), plain);
}

#[test]
fn runner_replay_is_byte_identical_at_any_thread_count() {
    let scenario = Scenario::small_college(11);
    let (_, trace) = record(&scenario, e12_section);
    let replayed = scenario
        .with_workload_trace(trace)
        .expect("recorded trace validates");
    let experiment = find("e12").expect("e12 is registered");

    // The manifest records wall-clock and thread count, so the invariant
    // covers the aggregate table (the runner's pure output), like the
    // generator path's guarantee.
    let report = |threads: usize| {
        let spec = RunSpec::new(experiment, replayed.clone(), 4).threads(threads);
        run(&spec, &mut Silent).aggregate_section().to_string()
    };
    let base = report(1);
    assert_eq!(report(2), base, "threads=2");
    assert_eq!(report(8), base, "threads=8");
}
