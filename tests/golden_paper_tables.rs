//! Golden-output pin for the paper reproduction.
//!
//! `tests/golden/paper_tables_seed42_<scenario>.txt` holds the full report
//! (E1–E15 and T1) rendered at seed 42 — the same text `paper-tables
//! --seed 42` prints per scenario. The typed-metric refactor moved every
//! experiment
//! from hand-built tables to `MetricTable`, and this test is the proof the
//! rendered output did not move by a byte. If an intentional table change
//! lands, regenerate the files with:
//!
//! ```sh
//! cargo test --test golden_paper_tables -- --ignored regenerate
//! ```

use std::fs;
use std::path::PathBuf;

use elc_core::experiments::{e16, e17, e19, run_all};
use elc_core::scenario::Scenario;

const SEED: u64 = 42;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::small_college(SEED),
        Scenario::rural_learners(SEED),
        Scenario::university(SEED),
        Scenario::national_platform(SEED),
    ]
}

fn golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("paper_tables_seed{SEED}_{}.txt", scenario.name()))
}

fn render(scenario: &Scenario) -> String {
    run_all(scenario).report().to_string()
}

/// E16 renders outside the pinned report (its chaos campaign is a CLI
/// knob), so its paper-table section gets its own golden per scenario.
fn e16_golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!(
            "paper_tables_e16_seed{SEED}_{}.txt",
            scenario.name()
        ))
}

fn render_e16(scenario: &Scenario) -> String {
    e16::run(scenario).section().to_string()
}

/// E17 also stays outside the pinned report: its own golden carries the
/// serverless day table plus the four-column T1F appendix matrix.
fn e17_golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!(
            "paper_tables_e17_seed{SEED}_{}.txt",
            scenario.name()
        ))
}

fn render_e17(scenario: &Scenario) -> String {
    let out = e17::run(scenario);
    let base = run_all(scenario).metrics();
    let column = e17::FaasColumn::derive(scenario, &base, &out);
    format!("{}{}", out.section(), column.section(&base))
}

/// E19 runs the region-loss drill, also behind the `--chaos` knob, so
/// its section is pinned per scenario outside the main report too.
fn e19_golden_path(scenario: &Scenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!(
            "paper_tables_e19_seed{SEED}_{}.txt",
            scenario.name()
        ))
}

fn render_e19(scenario: &Scenario) -> String {
    e19::run(scenario).section().to_string()
}

#[test]
fn report_is_byte_identical_to_the_golden_capture() {
    for scenario in scenarios() {
        let path = golden_path(&scenario);
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let actual = render(&scenario);
        assert_eq!(
            actual,
            expected,
            "report for scenario {} (seed {SEED}) drifted from {}",
            scenario.name(),
            path.display()
        );
    }
}

#[test]
fn e16_section_is_byte_identical_to_the_golden_capture() {
    for scenario in scenarios() {
        let path = e16_golden_path(&scenario);
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let actual = render_e16(&scenario);
        assert_eq!(
            actual,
            expected,
            "E16 section for scenario {} (seed {SEED}) drifted from {}",
            scenario.name(),
            path.display()
        );
    }
}

#[test]
fn e17_section_is_byte_identical_to_the_golden_capture() {
    for scenario in scenarios() {
        let path = e17_golden_path(&scenario);
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let actual = render_e17(&scenario);
        assert_eq!(
            actual,
            expected,
            "E17 section for scenario {} (seed {SEED}) drifted from {}",
            scenario.name(),
            path.display()
        );
    }
}

#[test]
fn e19_section_is_byte_identical_to_the_golden_capture() {
    for scenario in scenarios() {
        let path = e19_golden_path(&scenario);
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let actual = render_e19(&scenario);
        assert_eq!(
            actual,
            expected,
            "E19 section for scenario {} (seed {SEED}) drifted from {}",
            scenario.name(),
            path.display()
        );
    }
}

/// Rewrites the golden files from the current implementation. Run
/// explicitly (`--ignored regenerate`) after an intentional output change.
#[test]
#[ignore = "regenerates the golden files instead of checking them"]
fn regenerate() {
    for scenario in scenarios() {
        let path = golden_path(&scenario);
        fs::write(&path, render(&scenario))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let path = e16_golden_path(&scenario);
        fs::write(&path, render_e16(&scenario))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let path = e17_golden_path(&scenario);
        fs::write(&path, render_e17(&scenario))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let path = e19_golden_path(&scenario);
        fs::write(&path, render_e19(&scenario))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
}
