//! Cross-crate substrate integration: net × cloud × elearn × simcore flows
//! composed the way the experiments compose them.

use elearn_cloud::cloud::autoscale::{AutoScaler, ScaleDecision};
use elearn_cloud::cloud::billing::{PriceSheet, UsageMeter};
use elearn_cloud::cloud::datacenter::Datacenter;
use elearn_cloud::cloud::placement::FirstFit;
use elearn_cloud::cloud::resources::{Resources, VmSize};
use elearn_cloud::elearn::calendar::AcademicCalendar;
use elearn_cloud::elearn::workload::WorkloadModel;
use elearn_cloud::net::link::{Link, LinkProfile};
use elearn_cloud::net::outage::OutageModel;
use elearn_cloud::net::topology::Topology;
use elearn_cloud::net::transfer::{plan_transfer, ResumePolicy};
use elearn_cloud::net::units::Bytes;
use elearn_cloud::simcore::sim::Simulation;
use elearn_cloud::simcore::time::{SimDuration, SimTime};
use elearn_cloud::simcore::SimRng;

#[test]
fn campus_to_cloud_sync_across_outages() {
    // Nightly content sync from the private datacenter to the cloud backup
    // (the hybrid's reliability story) across a realistic outage schedule.
    let mut net = Topology::new();
    let campus = net.add_site("campus");
    let cloud = net.add_site("cloud");
    net.connect_both(
        campus,
        cloud,
        Link::from_profile(LinkProfile::InterDatacenter),
    );
    let link = net.link(campus, cloud).expect("connected");

    let mut rng = SimRng::seed(9).derive("sync");
    let outages = OutageModel::new(SimDuration::from_hours(24), SimDuration::from_mins(10))
        .schedule(&mut rng, SimTime::from_secs(7 * 86_400));

    let nightly = Bytes::from_gib(40);
    let mut completed = 0;
    for night in 0..6u64 {
        let start = SimTime::from_secs(night * 86_400 + 2 * 3_600);
        if let Some(out) = plan_transfer(start, nightly, link, &outages, ResumePolicy::Resumable) {
            completed += 1;
            // A 40 GiB sync at 10 Gbps is minutes of active transfer; even
            // with stalls it must finish the same night.
            assert!(
                out.completed_at < start + SimDuration::from_hours(8),
                "night {night} sync ran past the window: {out:?}"
            );
        }
    }
    assert!(completed >= 5, "only {completed}/6 syncs completed");
}

#[test]
fn autoscaled_datacenter_tracks_workload_in_des() {
    // A small closed loop: workload → autoscaler → datacenter, inside the
    // simulation executive.
    struct World {
        dc: Datacenter,
        scaler: AutoScaler,
        load: WorkloadModel,
        offset: SimTime,
        max_fleet: u32,
    }

    let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
    let load = WorkloadModel::builder(30_000, cal).build().unwrap();
    let offset = cal.exams_start() + SimDuration::from_days(1);

    let mut dc = Datacenter::new("loop", FirstFit, SimDuration::from_secs(60));
    dc.add_hosts(30, Resources::new(32, 128.0, 2_000.0));
    dc.provision(VmSize::Medium, SimTime::ZERO).expect("room");

    let mut sim = Simulation::new(
        17,
        World {
            dc,
            scaler: AutoScaler::new(1, 300, 0.6, SimDuration::from_secs(120)),
            load,
            offset,
            max_fleet: 1,
        },
    );
    sim.schedule_every(SimDuration::ZERO, SimDuration::from_secs(120), |sim| {
        let now = sim.now();
        let w = sim.state_mut();
        let rate = w.load.rate_at(w.offset + (now - SimTime::ZERO));
        let current = w.dc.active_vm_count() as u32;
        match w
            .scaler
            .decide(now, current, rate, VmSize::Medium.requests_per_sec())
        {
            ScaleDecision::ScaleUp(n) => {
                for _ in 0..n {
                    w.dc.provision(VmSize::Medium, now).expect("pool sized");
                }
            }
            ScaleDecision::ScaleDown(n) => {
                let victims = w.dc.serving_vms(now);
                for &vm in victims.iter().rev().take(n as usize) {
                    w.dc.decommission(vm, now);
                }
            }
            ScaleDecision::Hold => {}
        }
        w.max_fleet = w.max_fleet.max(w.dc.active_vm_count() as u32);
        sim.now() < SimTime::ZERO + SimDuration::from_hours(24)
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_hours(24));

    let w = sim.into_state();
    // The exam-evening surge forces a real fleet (tens of Mediums for 30k
    // students), and the overnight trough shrinks it back down.
    assert!(w.max_fleet > 15, "fleet never scaled: max {}", w.max_fleet);
    assert!(
        w.dc.active_vm_count() < w.max_fleet as usize / 2,
        "fleet did not scale back down: {} vs max {}",
        w.dc.active_vm_count(),
        w.max_fleet
    );
}

#[test]
fn vm_usage_flows_into_billing() {
    // Provision VMs, run them for simulated hours, stop them, and invoice
    // the recorded usage.
    let mut dc = Datacenter::new("billing", FirstFit, SimDuration::ZERO);
    dc.add_hosts(4, Resources::new(32, 128.0, 2_000.0));

    let (a, _) = dc.provision(VmSize::Medium, SimTime::ZERO).expect("room");
    let (b, _) = dc.provision(VmSize::Large, SimTime::ZERO).expect("room");
    dc.decommission(a, SimTime::from_secs(10 * 3_600));
    dc.decommission(b, SimTime::from_secs(3 * 3_600 + 60)); // rounds to 4h

    let now = SimTime::from_secs(24 * 3_600);
    let mut meter = UsageMeter::new();
    for vm in dc.vms() {
        meter.record_vm_hours(vm.size(), vm.billable_hours(now));
    }
    let invoice = meter.invoice(&PriceSheet::public_2013());
    let expected = 10.0 * 0.12 + 4.0 * 0.24;
    assert!(
        (invoice.total().amount() - expected).abs() < 1e-9,
        "invoice {} != expected {expected}",
        invoice.total()
    );
}

#[test]
fn workload_mix_shifts_during_exams() {
    // elearn calendar drives the request mix that deploy's cost model and
    // the E12 surge both consume.
    let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
    let load = WorkloadModel::builder(5_000, cal).build().unwrap();
    let teaching_instant = cal.term_start() + SimDuration::from_days(40);
    let exam_instant = cal.exams_start() + SimDuration::from_days(1);
    assert!(
        load.mix_at(exam_instant).mean_service_weight()
            > load.mix_at(teaching_instant).mean_service_weight(),
        "exam mix should be heavier per request"
    );
    assert!(load.rate_at(exam_instant.max(teaching_instant)) > 0.0);
}

#[test]
fn drain_keeps_serving_through_maintenance() {
    use elearn_cloud::cloud::vm::VmState;

    // A maintenance drain under load: every VM survives (re-provisioning
    // through the brownout), the drained host empties, and capacity
    // accounting stays exact.
    let mut dc = Datacenter::new("maint", FirstFit, SimDuration::from_secs(45));
    let h0 = {
        let id = dc.add_host(Resources::new(16, 64.0, 500.0));
        dc.add_host(Resources::new(16, 64.0, 500.0));
        dc.add_host(Resources::new(16, 64.0, 500.0));
        id
    };
    for _ in 0..6 {
        dc.provision(VmSize::Medium, SimTime::ZERO).expect("room");
    }
    let before = dc.active_vm_count();
    let moved = dc
        .drain_host(h0, SimTime::from_secs(1_000))
        .expect("other hosts have room");
    assert!(!moved.is_empty());
    assert_eq!(dc.active_vm_count(), before, "drain lost a VM");
    // Brownout: the moved VMs serve again after the boot delay.
    let after_brownout = SimTime::from_secs(1_000 + 46);
    for vm in dc.vms() {
        if matches!(vm.state(), VmState::Provisioning { .. } | VmState::Running) {
            assert!(vm.is_serving(after_brownout));
        }
    }
    // The drained host is empty and immediately maintainable.
    let drained = dc.hosts().find(|h| h.id() == h0).expect("host exists");
    assert!(drained.vms().is_empty());
    assert_eq!(drained.utilization(), 0.0);
}
