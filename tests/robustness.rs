//! Seed robustness: the qualitative verdicts of every experiment must not
//! depend on the random seed. The stochastic digits move; the shapes the
//! paper asserts do not.

use elearn_cloud::core::experiments::{e12, run_all};
use elearn_cloud::core::Scenario;
use elearn_cloud::deploy::model::DeploymentKind;

const SEEDS: [u64; 3] = [11, 222, 3_333];

#[test]
fn verdicts_are_seed_independent() {
    for seed in SEEDS {
        let out = run_all(&Scenario::small_college(seed));

        // E1: public cheapest at the smallest size, not at the largest.
        assert_eq!(
            out.e01.rows[0].winner(),
            DeploymentKind::Public,
            "seed {seed}: E1 small-scale winner moved"
        );
        assert_ne!(
            out.e01.rows.last().unwrap().winner(),
            DeploymentKind::Public,
            "seed {seed}: E1 large-scale winner moved"
        );

        // E3: SaaS fresher than admin-managed.
        assert!(
            out.e03.saas.mean_staleness < out.e03.onprem.mean_staleness,
            "seed {seed}: E3 ordering moved"
        );

        // E4: loss ordering public < hybrid < private at the 3y horizon.
        let loss = |k: DeploymentKind| out.e04.row(k).loss_probability[1];
        assert!(
            loss(DeploymentKind::Public) < loss(DeploymentKind::Hybrid)
                && loss(DeploymentKind::Hybrid) < loss(DeploymentKind::Private),
            "seed {seed}: E4 ordering moved"
        );

        // E6: private strictly more private than public on every seed's
        // simulated campaign (analytic rates are seed-free; check the MC).
        assert!(
            out.e06.row(DeploymentKind::Private).campaign.breaches
                <= out.e06.row(DeploymentKind::Public).campaign.breaches,
            "seed {seed}: E6 campaign ordering moved"
        );

        // E12: the teaching-sized fixed fleet always saturates badly
        // relative to elastic on exam day (at university scale this is
        // ~50% vs <1%; at college scale both can be near zero, so compare
        // with a tolerance).
        let fixed = out.e12.row(e12::Strategy::FixedTeaching).rejected_fraction;
        let elastic = out.e12.row(e12::Strategy::Elastic).rejected_fraction;
        // At college scale both can sit at noise level (~0.05%), so allow
        // a percentage-point of sampling slack between independent runs.
        assert!(
            fixed >= elastic - 0.01,
            "seed {seed}: elastic rejected materially more than a fixed fleet ({elastic} vs {fixed})"
        );

        // T1: no model dominates.
        let wins = out.metrics().matrix().win_counts();
        assert!(
            wins.iter().all(|&w| w > 0),
            "seed {seed}: a model dominated: {wins:?}"
        );
    }
}

#[test]
fn university_scale_surge_verdict_is_stable() {
    for seed in SEEDS {
        let out = e12::run(&Scenario::university(seed));
        let fixed = out.row(e12::Strategy::FixedTeaching).rejected_fraction;
        let elastic = out.row(e12::Strategy::Elastic).rejected_fraction;
        assert!(
            fixed > 0.3 && elastic < 0.05,
            "seed {seed}: surge verdict moved (fixed {fixed}, elastic {elastic})"
        );
    }
}
