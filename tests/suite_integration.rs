//! End-to-end integration: the full experiment suite reproduces every
//! qualitative shape the paper asserts, across crates.

use elearn_cloud::analysis::matrix::Rating;
use elearn_cloud::core::experiments::run_all;
use elearn_cloud::core::{advise, Requirements, Scenario};
use elearn_cloud::deploy::model::DeploymentKind;

#[test]
fn full_suite_reproduces_the_papers_shapes() {
    let scenario = Scenario::small_college(2024);
    let out = run_all(&scenario);

    // §IV.A — public is the quickest entry (E9) …
    let e09 = &out.e09;
    assert!(
        e09.row(DeploymentKind::Public).schedule.time_to_service()
            < e09.row(DeploymentKind::Private).schedule.time_to_service()
    );
    // … and the cheapest at small scale (E1).
    assert_eq!(out.e01.rows[0].winner(), DeploymentKind::Public);

    // §IV.B — private is most exposed to site loss (E4) but least exposed
    // to unauthorized access (E6).
    assert!(
        out.e04.row(DeploymentKind::Private).loss_probability[1]
            > out.e04.row(DeploymentKind::Public).loss_probability[1]
    );
    assert!(
        out.e06.row(DeploymentKind::Private).incident_rate
            < out.e06.row(DeploymentKind::Public).incident_rate
    );

    // §IV.C — hybrid protects confidential assets like private (E6),
    // exits cheaper than public (E8), but pays the largest governance
    // overhead (E11).
    assert_eq!(
        out.e06.row(DeploymentKind::Hybrid).confidential_rate,
        out.e06.row(DeploymentKind::Private).confidential_rate
    );
    assert!(
        out.e08.row(DeploymentKind::Hybrid).plan.total_cost
            < out.e08.row(DeploymentKind::Public).plan.total_cost
    );
    assert!(out.e11.model_fte[2] > out.e11.model_fte[0]);
    assert!(out.e11.model_fte[2] > out.e11.model_fte[1]);
}

#[test]
fn comparison_matrix_has_no_dominating_model() {
    let out = run_all(&Scenario::small_college(7));
    let matrix = out.metrics().matrix();
    let wins = matrix.win_counts();
    assert!(
        wins.iter().all(|&w| w > 0),
        "a model dominated the matrix: {wins:?}"
    );
    // And no model is rated Poor on everything.
    for i in 0..3 {
        let all_poor = matrix
            .criteria()
            .iter()
            .all(|c| c.ratings()[i] == Rating::Poor);
        assert!(!all_poor, "model {i} lost every criterion");
    }
}

#[test]
fn advisor_matches_the_papers_customer_archetypes() {
    let out = run_all(&Scenario::university(11));
    let metrics = out.metrics();

    // §IV.A's customer: quickest and lowest cost → public.
    assert_eq!(
        advise(&Requirements::startup_program(), &metrics).best(),
        DeploymentKind::Public
    );
    // §IV.B's customer: security and privacy enforce private.
    assert_eq!(
        advise(&Requirements::exam_authority(), &metrics).best(),
        DeploymentKind::Private
    );
}

#[test]
fn report_is_complete_and_printable() {
    let out = run_all(&Scenario::small_college(3));
    let report = out.report();
    assert_eq!(report.sections().len(), 16);
    let text = report.to_string();
    for needle in [
        "== E1:", "== E7:", "== E12:", "== T1:", "public", "private", "hybrid",
    ] {
        assert!(text.contains(needle), "report missing {needle}");
    }
}

#[test]
fn suite_is_deterministic_per_seed() {
    let a = run_all(&Scenario::small_college(55));
    let b = run_all(&Scenario::small_college(55));
    assert_eq!(a.report().to_string(), b.report().to_string());

    // A different seed moves the stochastic numbers …
    let c = run_all(&Scenario::small_college(56));
    assert_ne!(a.e06, c.e06, "campaign results should vary with the seed");
    // … but not the qualitative winners.
    assert_eq!(
        a.e01.rows[0].winner(),
        c.e01.rows[0].winner(),
        "cost winner must not depend on the seed"
    );
}
