//! A whole institution in one test: registrar, content, forums, exams and
//! workload composed for one semester, with cross-layer invariants.

use elearn_cloud::elearn::assessment::Assessments;
use elearn_cloud::elearn::calendar::AcademicCalendar;
use elearn_cloud::elearn::content::{Catalog, ContentKind, Sensitivity};
use elearn_cloud::elearn::forum::Forum;
use elearn_cloud::elearn::model::{Lms, Role};
use elearn_cloud::elearn::workload::WorkloadModel;
use elearn_cloud::simcore::time::{SimDuration, SimTime};
use elearn_cloud::simcore::SimRng;

#[test]
fn a_semester_at_a_small_college() {
    let rng = SimRng::seed(4242).derive("institution");
    let cal = AcademicCalendar::standard_semester(SimTime::ZERO);

    // ---- Registrar: 12 courses, 40 students each, one instructor each.
    let mut lms = Lms::new();
    let mut catalog = Catalog::new();
    let mut forums = Vec::new();
    let mut assessments = Assessments::new();
    let mut exams = Vec::new();

    for c in 0..12u32 {
        let prof = lms.add_user(Role::Instructor);
        let course = lms
            .add_course(format!("course-{c}"), prof)
            .expect("instructor role checked");
        let students = lms.add_students(40);
        for &s in &students {
            lms.enroll(s, course).expect("fresh student");
        }

        // Content for 14 teaching weeks.
        let mut course_rng = rng.derive_u64(u64::from(c));
        catalog.populate_course(&mut course_rng, course, 14, students.len());

        // A term of forum activity.
        let mut forum = Forum::new(course);
        forum.simulate_term(&mut course_rng, &students, 14, 4.0, 3.0);
        forums.push(forum);

        // A final exam in the exam period.
        let exam = assessments.schedule(
            course,
            cal.exams_start() + SimDuration::from_days(u64::from(c % 10)),
            SimDuration::from_hours(2),
            25,
        );
        exams.push((exam, students));
    }

    // ---- Registrar invariants.
    assert_eq!(lms.course_count(), 12);
    assert_eq!(lms.count_by_role(Role::Student), 480);
    assert_eq!(lms.enrollment_count(), 480);

    // ---- Content invariants: every course contributed; confidential
    // bytes exist but are a small share.
    assert_eq!(catalog.count_of(ContentKind::QuestionBank), 12);
    assert_eq!(catalog.count_of(ContentKind::LectureVideo), 12 * 14);
    let confidential = catalog.bytes_at_least(Sensitivity::Confidential);
    assert!(confidential.as_u64() > 0);
    assert!(confidential.as_u64() * 10 < catalog.total_bytes().as_u64());

    // ---- Forum invariants: real participation in every course.
    for forum in &forums {
        let stats = forum.interactivity(40);
        assert!(stats.threads > 10, "quiet forum: {stats:?}");
        assert!(stats.participation > 0.3, "low participation: {stats:?}");
    }

    // ---- Exams: everyone submits inside the window; completion is full.
    let mut exam_rng = rng.derive("exams");
    for (exam, students) in &exams {
        let window = assessments.exam(*exam).expect("scheduled");
        let opens = window.opens_at();
        for &s in students {
            let offset = SimDuration::from_secs(exam_rng.range_u64(60, 7_000));
            let score = exam_rng.range_f64(35.0, 100.0);
            assessments
                .submit(*exam, s, opens + offset, score, 25)
                .expect("inside the window");
        }
        assert_eq!(assessments.completion_rate(*exam, students.len()), 1.0);
        let mean = assessments.mean_score(*exam).expect("submissions exist");
        assert!((35.0..=100.0).contains(&mean));
    }

    // ---- Workload: the institution's calendar shows up in its traffic.
    let load = WorkloadModel::builder(480, cal).build().unwrap();
    let teaching_noon = cal.term_start() + SimDuration::from_days(30);
    let exam_noon = cal.exams_start() + SimDuration::from_days(1);
    assert!(load.rate_at(exam_noon) > 2.0 * load.rate_at(teaching_noon));
}
