//! End-to-end tests of the `elc` command-line interface.

use std::process::Command;

fn elc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elc"))
}

#[test]
fn scenarios_lists_all_presets() {
    let out = elc().arg("scenarios").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    for name in [
        "small-college",
        "rural-learners",
        "university",
        "national-platform",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn experiment_prints_a_table() {
    let out = elc()
        .args(["experiment", "e9"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E9"));
    assert!(text.contains("| public"));
}

#[test]
fn experiment_accepts_scenario_and_seed() {
    let out = elc()
        .args(["experiment", "e13", "university", "--seed", "7"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E13"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = elc()
        .args(["experiment", "e99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("unknown experiment"));
}

#[test]
fn unknown_scenario_fails() {
    let out = elc()
        .args(["report", "atlantis-academy"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn no_arguments_prints_usage() {
    let out = elc().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("usage:"));
}

#[test]
fn advise_with_custom_weights() {
    let out = elc()
        .args([
            "advise",
            "small-college",
            "--profile",
            "startup",
            "--security",
            "0.1",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("recommendation: public"), "{text}");
}

#[test]
fn advise_rejects_out_of_range_weight() {
    let out = elc()
        .args(["advise", "--cost", "2.5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("invalid requirements"));
}
