//! End-to-end tests of the `elc` and `elc-run` command-line interfaces.

use std::process::Command;

fn elc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elc"))
}

fn elc_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elc-run"))
}

#[test]
fn scenarios_lists_all_presets() {
    let out = elc().arg("scenarios").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    for name in [
        "small-college",
        "rural-learners",
        "university",
        "national-platform",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn experiment_prints_a_table() {
    let out = elc()
        .args(["experiment", "e9"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E9"));
    assert!(text.contains("| public"));
}

#[test]
fn experiment_accepts_scenario_and_seed() {
    let out = elc()
        .args(["experiment", "e13", "university", "--seed", "7"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E13"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = elc()
        .args(["experiment", "e99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("unknown experiment"));
}

#[test]
fn unknown_scenario_fails() {
    let out = elc()
        .args(["report", "atlantis-academy"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn no_arguments_prints_usage() {
    let out = elc().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("usage:"));
}

#[test]
fn advise_with_custom_weights() {
    let out = elc()
        .args([
            "advise",
            "small-college",
            "--profile",
            "startup",
            "--security",
            "0.1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("recommendation: public"), "{text}");
}

#[test]
fn advise_rejects_out_of_range_weight() {
    let out = elc()
        .args(["advise", "--cost", "2.5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("invalid requirements"));
}

#[test]
fn experiments_lists_the_registry() {
    let out = elc().arg("experiments").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    for id in ["e01", "e15", "e16", "t1"] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }
}

#[test]
fn experiment_e15_is_reachable() {
    // The pre-registry CLI silently lacked e15; the registry closed that.
    let out = elc()
        .args(["experiment", "e15"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E15"));
}

#[test]
fn experiment_e16_accepts_a_chaos_campaign() {
    let out = elc()
        .args(["experiment", "e16", "--chaos", "disaster@0.5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E16"), "{text}");
    assert!(text.contains("chaos campaign: disaster@0.5"), "{text}");
    assert!(text.contains("| hybrid"), "{text}");
}

#[test]
fn experiment_e19_accepts_a_region_loss_drill() {
    let out = elc()
        .args([
            "experiment",
            "e19",
            "--chaos",
            "regionloss@0.5:region=0,mins=45",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== E19"), "{text}");
    assert!(
        text.contains("chaos campaign: regionloss@0.5:region=0,mins=45"),
        "{text}"
    );
    assert!(text.contains("| faas"), "{text}");
}

#[test]
fn elc_rejects_a_malformed_chaos_spec() {
    let out = elc()
        .args(["experiment", "e16", "--chaos", "meteor@0.5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("--chaos:"), "{err}");
}

#[test]
fn elc_run_lists_experiments() {
    let out = elc_run().arg("--list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("e01"));
    assert!(text.contains("t1"));
}

#[test]
fn elc_run_requires_an_experiment() {
    let out = elc_run().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("usage:"));
}

#[test]
fn elc_run_rejects_unknown_experiment() {
    let out = elc_run()
        .args(["--experiment", "e99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("unknown experiment"));
}

/// The acceptance property from the issue: the aggregate table is
/// byte-identical when the same run executes on different thread counts.
#[test]
fn elc_run_aggregates_are_thread_count_invariant() {
    let run = |threads: &str| {
        let out = elc_run()
            .args([
                "--experiment",
                "e09",
                "--replications",
                "6",
                "--seed",
                "42",
                "--quiet",
                "--threads",
                threads,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).expect("utf8");
        // Everything before the manifest (which carries wall-clock) must
        // be reproducible.
        let aggregate = text
            .split("run manifest:")
            .next()
            .expect("has aggregate part")
            .to_string();
        assert!(aggregate.contains("ci95"), "{aggregate}");
        assert!(aggregate.contains("6 replications"), "{aggregate}");
        aggregate
    };
    let serial = run("1");
    assert_eq!(serial, run("4"));
}
