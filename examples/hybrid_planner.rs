//! Hybrid unit-distribution planner for a national e-learning platform.
//!
//! §IV.C: "distribution of units between these models is significant to
//! address the requirements of the organization." This example sweeps all
//! 64 component placements for a 150k-learner platform, prints the Pareto
//! frontier and picks placements for two different mandates.
//!
//! ```sh
//! cargo run --release --example hybrid_planner
//! ```

use elearn_cloud::analysis::table::{fmt_f64, Table};
use elearn_cloud::core::experiments::e10;
use elearn_cloud::core::Scenario;
use elearn_cloud::deploy::model::Site;

fn main() {
    let scenario = Scenario::national_platform(5);
    println!(
        "sweeping 2^6 component placements for {} ({} learners)…\n",
        scenario.name(),
        scenario.students()
    );

    let out = e10::run(&scenario);
    println!("{}", out.section());
    println!();

    // Pick from the frontier under two mandates.
    let cheapest = out
        .frontier
        .iter()
        .min_by(|a, b| a.total_cost.partial_cmp(&b.total_cost).expect("finite"))
        .expect("frontier is never empty");
    let most_secure_cheapest = out
        .frontier
        .iter()
        .filter(|p| !p.deployment.confidential_exposed())
        .min_by(|a, b| a.total_cost.partial_cmp(&b.total_cost).expect("finite"))
        .expect("a non-exposed placement is always on the frontier");

    let mut t = Table::new([
        "mandate",
        "placement (public components)",
        "TCO ($)",
        "conf. incidents/yr",
    ]);
    for (mandate, p) in [
        ("minimize cost", cheapest),
        ("protect exams, then cost", most_secure_cheapest),
    ] {
        let comps: Vec<String> = p
            .deployment
            .components_on(Site::PublicCloud)
            .iter()
            .map(ToString::to_string)
            .collect();
        t.row([
            mandate.to_string(),
            if comps.is_empty() {
                "(none — all private)".into()
            } else {
                comps.join("+")
            },
            fmt_f64(p.total_cost.amount()),
            fmt_f64(p.confidential_incident_rate),
        ]);
    }
    println!("{t}");
}
