//! Quickstart: run the full experiment suite for one institution and get a
//! deployment recommendation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elearn_cloud::core::{advise, run_all, Requirements, Scenario};

fn main() {
    // A 2 000-student college, deterministic under seed 42.
    let scenario = Scenario::small_college(42);
    println!(
        "scenario: {} ({} students, seed {})\n",
        scenario.name(),
        scenario.students(),
        scenario.seed()
    );

    // Every experiment from DESIGN.md (E1–E12) plus the measured
    // comparison matrix (T1).
    let outputs = run_all(&scenario);
    println!("{}", outputs.report());

    // Codified §IV guidance: score the three models against a
    // requirements profile.
    println!();
    for (label, reqs) in [
        ("startup program", Requirements::startup_program()),
        ("exam authority", Requirements::exam_authority()),
        ("balanced university", Requirements::balanced_university()),
    ] {
        let rec = advise(&reqs, &outputs.metrics());
        println!("[{label}] {rec}");
    }
}
