//! Replicated sweep: run one experiment over many derived seeds in
//! parallel and compare the confidence intervals across scenarios.
//!
//! ```sh
//! cargo run --release --example replicated_sweep
//! ```
//!
//! Demonstrates the `elc-runner` engine as a library: the same
//! experiment is fanned out over 16 replications per scenario on a
//! worker pool, and the aggregate table (mean / p50 / p95 / 95% CI per
//! metric) is byte-identical no matter how many threads execute it.

use elearn_cloud::core::experiments::find;
use elearn_cloud::core::Scenario;
use elearn_cloud::runner::progress::Silent;
use elearn_cloud::runner::{run, RunSpec};

fn main() {
    const BASE_SEED: u64 = 42;
    const REPLICATIONS: u32 = 16;

    // E7 (connection loss) is stochastic, so replication genuinely
    // tightens the estimate — unlike the closed-form cost experiments.
    let experiment = find("e07").expect("e07 is registered");

    let scenarios = [
        Scenario::small_college(BASE_SEED),
        Scenario::rural_learners(BASE_SEED),
        Scenario::university(BASE_SEED),
        Scenario::national_platform(BASE_SEED),
    ];

    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for scenario in scenarios {
        let spec = RunSpec::new(experiment, scenario, REPLICATIONS).threads(workers);
        let outcome = run(&spec, &mut Silent);
        println!("{}", outcome.aggregate_section());

        // The manifest carries the non-deterministic part: wall-clock
        // per task and the realized parallel speedup.
        println!(
            "  ({} tasks, speedup {:.2}x over serial)\n",
            outcome.manifest.tasks.len(),
            outcome.manifest.speedup()
        );
    }

    // Parallel/serial equivalence, shown rather than told: one thread
    // and eight threads render the same aggregate bytes.
    let serial = run(
        &RunSpec::new(experiment, Scenario::university(BASE_SEED), REPLICATIONS).threads(1),
        &mut Silent,
    );
    let parallel = run(
        &RunSpec::new(experiment, Scenario::university(BASE_SEED), REPLICATIONS).threads(8),
        &mut Silent,
    );
    assert_eq!(
        serial.aggregate_section().to_string(),
        parallel.aggregate_section().to_string()
    );
    println!("aggregates at 1 and 8 threads are byte-identical ✓");
}
