//! Pricing the way out: vendor lock-in as a function of accumulated data.
//!
//! The paper warns that "bringing that system back in-house will be
//! relatively difficult and expensive" (§IV.A). This example prices the
//! exit from each deployment model as the institution's content archive
//! grows, then shows how the advisor's recommendation flips once
//! portability is weighted.
//!
//! ```sh
//! cargo run --release --example migration_decision
//! ```

use elearn_cloud::analysis::table::{fmt_f64, Table};
use elearn_cloud::cloud::billing::PriceSheet;
use elearn_cloud::core::{advise, run_all, Requirements, Scenario};
use elearn_cloud::deploy::migration::exit_plan;
use elearn_cloud::deploy::model::Deployment;
use elearn_cloud::net::link::{Link, LinkProfile};
use elearn_cloud::net::units::Bytes;

fn main() {
    let prices = PriceSheet::public_2013();
    let link = Link::from_profile(LinkProfile::InterDatacenter);

    println!("exit cost vs accumulated content (USD, days)\n");
    let mut t = Table::new([
        "archive",
        "public exit ($)",
        "public exit (days)",
        "hybrid exit ($)",
        "hybrid exit (days)",
    ]);
    for gib in [500u64, 2_000, 10_000, 50_000] {
        let data = Bytes::from_gib(gib);
        let public = exit_plan(&Deployment::public(), data, &prices, &link);
        let hybrid = exit_plan(&Deployment::hybrid_default(), data, &prices, &link);
        t.row([
            format!("{data}"),
            fmt_f64(public.total_cost.amount()),
            fmt_f64(public.duration.as_secs_f64() / 86_400.0),
            fmt_f64(hybrid.total_cost.amount()),
            fmt_f64(hybrid.duration.as_secs_f64() / 86_400.0),
        ]);
    }
    println!("{t}");
    println!("(private deployments exit free: no provider egress, no proprietary APIs)\n");

    // How the recommendation responds to portability weight.
    let scenario = Scenario::university(21);
    println!("running the experiment suite for {} …\n", scenario.name());
    let outputs = run_all(&scenario);
    let metrics = outputs.metrics();

    let mut indifferent = Requirements::balanced_university();
    indifferent.portability_concern = 0.0;
    let mut locked = Requirements::balanced_university();
    locked.portability_concern = 1.0;

    println!(
        "portability weight 0.0 → {}",
        advise(&indifferent, &metrics).best()
    );
    println!(
        "portability weight 1.0 → {}",
        advise(&locked, &metrics).best()
    );
    println!();
    println!("{}", advise(&locked, &metrics));
}
