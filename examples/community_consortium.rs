//! Community cloud: should ten universities build one datacenter together?
//!
//! §IV.C of the paper imagines the hybrid as a path to "a national private
//! cloud system"; NIST (the paper's [3]) names that fourth model the
//! community cloud. This example sweeps consortium size for 10k-student
//! members and compares against going private alone and going public.
//!
//! ```sh
//! cargo run --release --example community_consortium
//! ```

use elearn_cloud::analysis::table::{fmt_f64, Table};
use elearn_cloud::core::experiments::e13;
use elearn_cloud::core::Scenario;
use elearn_cloud::deploy::community::CommunityCloud;
use elearn_cloud::deploy::cost::CostInputs;

fn main() {
    let scenario = Scenario::rural_learners(3).with_students(10_000);
    println!(
        "consortium economics for {}-student member institutions\n",
        scenario.students()
    );

    let out = e13::run(&scenario);
    println!("{}", out.section());
    println!();

    match out.breakeven_members() {
        Some(m) => println!(
            "-> a consortium pays for itself from {m} members (vs ${} going private alone)",
            fmt_f64(out.private_baseline.amount())
        ),
        None => println!("-> no consortium size beats going it alone at this member profile"),
    }

    // Zoom in: where do the savings come from at 8 members?
    let inputs = CostInputs::standard(scenario.workload_model());
    let solo = CommunityCloud::new(1, inputs.clone()).assess();
    let eight = CommunityCloud::new(8, inputs).assess();
    let mut t = Table::new(["quantity", "solo", "8-member consortium"]);
    t.row([
        "shared servers".to_string(),
        solo.servers.to_string(),
        eight.servers.to_string(),
    ]);
    t.row([
        "servers per member".to_string(),
        fmt_f64(f64::from(solo.servers)),
        fmt_f64(f64::from(eight.servers) / 8.0),
    ]);
    t.row([
        "staffing (FTE, total)".to_string(),
        fmt_f64(solo.total_fte),
        fmt_f64(eight.total_fte),
    ]);
    t.row([
        "per-member TCO ($)".to_string(),
        fmt_f64(solo.per_member_tco.amount()),
        fmt_f64(eight.per_member_tco.amount()),
    ]);
    println!("\nwhere the sharing gains come from:\n{t}");
}
