//! Rural learners: the paper's closing motivation, stress-tested.
//!
//! §V hopes cloud e-learning will "help the students … who live in rural
//! parts of the world". This example measures what degraded rural
//! connectivity does to the cloud experience — lecture downloads across
//! outages, client startup, and lost quiz work — and what autosave buys.
//!
//! ```sh
//! cargo run --release --example rural_deployment
//! ```

use elearn_cloud::analysis::table::{fmt_f64, Table};
use elearn_cloud::core::experiments::{e02, e07};
use elearn_cloud::core::Scenario;
use elearn_cloud::net::link::{Link, LinkProfile};
use elearn_cloud::net::transfer::{plan_transfer, ResumePolicy};
use elearn_cloud::net::units::Bytes;
use elearn_cloud::simcore::{SimRng, SimTime};

fn main() {
    let scenario = Scenario::rural_learners(77);
    let mut rng = SimRng::seed(scenario.seed()).derive("rural-example");

    // 1. A 300 MiB lecture video over a rural link with real outages.
    let horizon = SimTime::from_secs(86_400);
    let schedule = scenario.outages().schedule(&mut rng, horizon);
    println!(
        "rural connectivity: availability {:.2}%, {} outages today\n",
        schedule.measured_availability() * 100.0,
        schedule.count()
    );

    let link = Link::from_profile(LinkProfile::RuralInternet);
    let video = Bytes::from_mib(300);
    let mut t = Table::new([
        "policy",
        "elapsed (min)",
        "stalled (min)",
        "interruptions",
        "wasted",
    ]);
    for (name, policy) in [
        ("resumable", ResumePolicy::Resumable),
        ("restart-from-zero", ResumePolicy::RestartFromZero),
    ] {
        match plan_transfer(SimTime::ZERO, video, &link, &schedule, policy) {
            Some(out) => {
                t.row([
                    name.to_string(),
                    fmt_f64(out.elapsed.as_secs_f64() / 60.0),
                    fmt_f64(out.stalled.as_secs_f64() / 60.0),
                    out.interruptions.to_string(),
                    format!("{}", out.wasted),
                ]);
            }
            None => {
                t.row([
                    name.to_string(),
                    "gave up".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!(
        "downloading a {video} lecture over {}:",
        LinkProfile::RuralInternet
    );
    println!("{t}");

    // 2. Client startup on the rural link (E2).
    println!("{}", e02::run(&scenario).section());
    println!();

    // 3. Quiz sessions vs outages (E7): what autosave is worth out here.
    println!("{}", e07::run(&scenario).section());
}
