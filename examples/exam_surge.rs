//! Exam-day surge, hour by hour: drive the simulation substrate directly.
//!
//! Builds a datacenter, wires a target-tracking autoscaler to the exam-week
//! workload and prints an hourly log of offered load, fleet size and
//! rejected traffic — the mechanics behind experiment E12.
//!
//! ```sh
//! cargo run --release --example exam_surge
//! ```

use elearn_cloud::cloud::autoscale::{AutoScaler, ScaleDecision};
use elearn_cloud::cloud::datacenter::Datacenter;
use elearn_cloud::cloud::placement::BestFit;
use elearn_cloud::cloud::resources::{Resources, VmSize};
use elearn_cloud::core::Scenario;
use elearn_cloud::simcore::dist::{Distribution, Poisson};
use elearn_cloud::simcore::sim::Simulation;
use elearn_cloud::simcore::time::{SimDuration, SimTime};
use elearn_cloud::simcore::SimRng;

const UNIT: VmSize = VmSize::Medium;

struct World {
    dc: Datacenter,
    scaler: AutoScaler,
    scenario: Scenario,
    day_start: SimTime,
    rng: SimRng,
    hourly_offered: u64,
    hourly_rejected: u64,
}

fn minute_tick(sim: &mut Simulation<World>) {
    let now = sim.now();
    let w = sim.state_mut();
    let rate = w
        .scenario
        .workload()
        .rate_at(w.day_start + (now - SimTime::ZERO));
    let arrivals = Poisson::new(rate * 60.0)
        .expect("finite rate")
        .sample(&mut w.rng);
    let capacity = w.dc.serving_capacity_rps(now) * 60.0;
    w.hourly_offered += arrivals;
    w.hourly_rejected += (arrivals as f64 - capacity).max(0.0) as u64;
}

fn scale_tick(sim: &mut Simulation<World>) {
    let now = sim.now();
    let w = sim.state_mut();
    let rate = w
        .scenario
        .workload()
        .rate_at(w.day_start + (now - SimTime::ZERO));
    let current = w.dc.active_vm_count() as u32;
    match w.scaler.decide(now, current, rate, UNIT.requests_per_sec()) {
        ScaleDecision::ScaleUp(n) => {
            for _ in 0..n {
                w.dc.provision(UNIT, now).expect("host pool is generous");
            }
        }
        ScaleDecision::ScaleDown(n) => {
            let victims: Vec<_> =
                w.dc.serving_vms(now)
                    .into_iter()
                    .rev()
                    .take(n as usize)
                    .collect();
            for vm in victims {
                w.dc.decommission(vm, now);
            }
        }
        ScaleDecision::Hold => {}
    }
}

fn hourly_report(sim: &mut Simulation<World>) {
    let hour = sim.now().as_secs_f64() / 3_600.0;
    let w = sim.state_mut();
    let fleet = w.dc.active_vm_count();
    let offered = w.hourly_offered;
    let rejected = w.hourly_rejected;
    w.hourly_offered = 0;
    w.hourly_rejected = 0;
    println!(
        "hour {hour:>4.0} | fleet {fleet:>3} VMs | offered {offered:>8} req | rejected {rejected:>6}",
    );
}

fn main() {
    let scenario = Scenario::university(7);
    let cal = scenario.calendar();
    let day_start = cal.exams_start() + SimDuration::from_days(1);

    let mut dc = Datacenter::new("exam-region", BestFit, SimDuration::from_secs(120));
    dc.add_hosts(40, Resources::new(32, 128.0, 2_000.0));
    for _ in 0..2 {
        dc.provision(UNIT, SimTime::ZERO).expect("empty datacenter");
    }

    let world = World {
        dc,
        scaler: AutoScaler::new(2, 400, 0.6, SimDuration::from_secs(240)),
        rng: SimRng::seed(scenario.seed()).derive("exam-surge"),
        scenario,
        day_start,
        hourly_offered: 0,
        hourly_rejected: 0,
    };

    println!("exam-day autoscaling, 25k-student university, Medium instances\n");
    let mut sim = Simulation::new(7, world);
    sim.schedule_every(SimDuration::ZERO, SimDuration::from_secs(60), |sim| {
        minute_tick(sim);
        true
    });
    sim.schedule_every(
        SimDuration::from_secs(30),
        SimDuration::from_secs(120),
        |sim| {
            scale_tick(sim);
            true
        },
    );
    sim.schedule_every(
        SimDuration::from_hours(1),
        SimDuration::from_hours(1),
        |sim| {
            hourly_report(sim);
            true
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_hours(24));

    let stats = sim.state();
    println!(
        "\nfinal fleet: {} VMs; events executed: {}",
        stats.dc.active_vm_count(),
        sim.executed()
    );
}
