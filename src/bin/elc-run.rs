//! `elc-run` — replicated, parallel experiment execution front end.
//!
//! Fans one experiment out over N derived seeds on a worker pool and
//! prints per-metric mean / p50 / p95 with 95% confidence intervals plus
//! the run manifest (seeds, per-task wall-clock, parallel speedup).
//!
//! ```text
//! elc-run --list
//! elc-run --experiment e01 [--scenario NAME] [--replications N]
//!         [--threads T] [--seed S] [--quiet]
//! ```
//!
//! The aggregate table is a pure function of `(experiment, scenario,
//! seed, replications)` — re-running with a different `--threads` value
//! reproduces it byte for byte.

use std::io::Write;
use std::process::ExitCode;

use elearn_cloud::core::experiments::{find, registry};
use elearn_cloud::core::Scenario;
use elearn_cloud::runner::progress::{Silent, Stderr};
use elearn_cloud::runner::{run, Progress, RunSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  elc-run --list\n  \
         elc-run --experiment <ID> [--scenario NAME] [--replications N] \
         [--threads T] [--seed S] [--quiet]\n\
         experiments: e1..e15, t1\n\
         scenarios: small-college (default) | rural-learners | university | national-platform\n\
         defaults: --replications 8, --seed 2013, --threads <available cores>"
    );
    ExitCode::from(2)
}

fn scenario_by_name(name: &str, seed: u64) -> Option<Scenario> {
    Some(match name {
        "small-college" => Scenario::small_college(seed),
        "rural-learners" => Scenario::rural_learners(seed),
        "university" => Scenario::university(seed),
        "national-platform" => Scenario::national_platform(seed),
        _ => return None,
    })
}

/// Pulls `--flag [value]` pairs out of the argument list; boolean flags
/// (`--list`, `--quiet`) get an empty value.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {a:?}"));
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => String::new(),
        };
        flags.push((name.to_string(), value));
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_or<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };

    if flag(&flags, "list").is_some() {
        let mut out = std::io::stdout().lock();
        for e in registry() {
            // Ignore EPIPE so `elc-run --list | head` exits cleanly.
            let _ = writeln!(out, "{:<4} {}", e.id(), e.name());
        }
        return ExitCode::SUCCESS;
    }

    let Some(id) = flag(&flags, "experiment") else {
        return usage();
    };
    let Some(experiment) = find(id) else {
        eprintln!("unknown experiment {id:?} (try --list)");
        return usage();
    };

    let parsed = (|| -> Result<(u64, u32, usize), String> {
        Ok((
            parse_or(&flags, "seed", 2013u64)?,
            parse_or(&flags, "replications", 8u32)?,
            parse_or(&flags, "threads", default_threads())?,
        ))
    })();
    let (seed, replications, threads) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if replications == 0 || threads == 0 {
        eprintln!("--replications and --threads must be positive");
        return usage();
    }

    let scenario_name = flag(&flags, "scenario").unwrap_or("small-college");
    let Some(scenario) = scenario_by_name(scenario_name, seed) else {
        eprintln!("unknown scenario {scenario_name:?}");
        return usage();
    };

    let spec = RunSpec::new(experiment, scenario, replications).threads(threads);
    let mut silent = Silent;
    let mut stderr = Stderr;
    let progress: &mut dyn Progress = if flag(&flags, "quiet").is_some() {
        &mut silent
    } else {
        &mut stderr
    };

    let outcome = run(&spec, progress);
    // Ignore EPIPE so `elc-run ... | head` exits cleanly.
    let _ = writeln!(std::io::stdout().lock(), "{}", outcome.report());
    ExitCode::SUCCESS
}
