//! `elc-run` — replicated, parallel experiment execution front end.
//!
//! Fans one experiment out over N derived seeds on a worker pool and
//! prints per-metric mean / p50 / p95 with 95% confidence intervals plus
//! the run manifest (seeds, per-task wall-clock, parallel speedup).
//!
//! ```text
//! elc-run --list
//! elc-run --experiment e01 [--scenario NAME] [--replications N]
//!         [--threads T] [--seed S] [--quiet]
//!         [--trace PATH.jsonl] [--trace-filter SPEC]
//!         [--chaos SPEC] [--shards N] [--fidelity event|fluid|auto]
//!         [--workload trace:PATH] [--morph SPEC]
//!         [--record-trace PATH]   (requires --replications 1 --shards 1)
//! ```
//!
//! The aggregate table is a pure function of `(experiment, scenario,
//! seed, replications)` — re-running with a different `--threads` value
//! reproduces it byte for byte. So is the trace: `--trace run.jsonl`
//! writes one JSONL event stream (each line labelled with its
//! replication index) that is byte-identical at any thread count, plus a
//! per-target summary table on stdout.

use std::io::Write;
use std::process::ExitCode;

use elearn_cloud::analysis::table::Table;
use elearn_cloud::core::cli_args::{
    chaos_from_flags, check_fidelity_feasible, experiment_list, fidelity_from_flags, flag,
    parse_or, scenario_by_name, shards_from_flags, split_args, unknown_experiment,
    unknown_scenario, with_shards_override, TraceOptions, WorkloadOptions, SCENARIO_USAGE,
};
use elearn_cloud::core::experiments::find;
use elearn_cloud::runner::progress::{Silent, Stderr};
use elearn_cloud::runner::{run, Progress, RunOutcome, RunSpec};
use elearn_cloud::trace::export::{merge_summaries, total_dropped, write_jsonl};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  elc-run --list\n  \
         elc-run --experiment <ID> [--scenario NAME] [--replications N] \
         [--threads T] [--seed S] [--quiet] [--trace PATH.jsonl] [--trace-filter SPEC] \
         [--chaos SPEC] [--shards N] [--fidelity event|fluid|auto] \
         [--workload trace:PATH] [--morph SPEC] \
         [--record-trace PATH]\n\
         experiments: e1..e19, t1\n\
         {SCENARIO_USAGE}\n\
         defaults: --scenario small-college, --replications 8, --seed 2013, \
         --threads <available cores>, --shards <scenario preset>\n\
         trace filter: LEVEL or LEVEL,target=LEVEL,... (e.g. warn,cloud=trace,net=off)\n\
         chaos spec (e16/e17): off | campaigns joined with ';' \
         (e.g. storm@0.3:n=4,mins=6;cascade@0.55:n=3;disaster@0.79)"
    );
    ExitCode::from(2)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Writes the labelled JSONL trace and returns the per-target summary
/// table plus a one-line accounting note.
fn export_trace(outcome: &RunOutcome, opts: &TraceOptions) -> std::io::Result<(Table, String)> {
    let file = std::fs::File::create(&opts.path)?;
    let mut out = std::io::BufWriter::new(file);
    for (index, tracer) in outcome.traces.iter().enumerate() {
        write_jsonl(&mut out, tracer, &[("rep", &index.to_string())])?;
    }
    out.flush()?;

    let mut table = Table::new([
        "target", "events", "spans", "error", "warn", "info", "debug", "trace",
    ]);
    let mut total = 0u64;
    for s in merge_summaries(outcome.traces.iter()) {
        total += s.events;
        table.row([
            s.target.to_string(),
            s.events.to_string(),
            s.spans.to_string(),
            s.by_level[0].to_string(),
            s.by_level[1].to_string(),
            s.by_level[2].to_string(),
            s.by_level[3].to_string(),
            s.by_level[4].to_string(),
        ]);
    }
    let dropped = total_dropped(outcome.traces.iter());
    let note = format!(
        "trace: {total} events across {} replications written to {} ({dropped} dropped by ring capacity)",
        outcome.traces.len(),
        opts.path.display(),
    );
    Ok((table, note))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, flags) = split_args(&args);
    if let Some(p) = positional.first() {
        eprintln!("unexpected positional argument {p:?}");
        return usage();
    }

    if flag(&flags, "list").is_some() {
        // Ignore EPIPE so `elc-run --list | head` exits cleanly.
        let _ = write!(std::io::stdout().lock(), "{}", experiment_list());
        return ExitCode::SUCCESS;
    }

    let Some(id) = flag(&flags, "experiment") else {
        return usage();
    };
    let Some(experiment) = find(id) else {
        eprintln!("{}", unknown_experiment(id));
        return usage();
    };

    let parsed = (|| -> Result<(u64, u32, usize), String> {
        Ok((
            parse_or(&flags, "seed", 2013u64)?,
            parse_or(&flags, "replications", 8u32)?,
            parse_or(&flags, "threads", default_threads())?,
        ))
    })();
    let (seed, replications, threads) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if replications == 0 || threads == 0 {
        eprintln!("--replications and --threads must be positive");
        return usage();
    }

    let trace_opts = match TraceOptions::from_flags(&flags) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };

    let chaos = match chaos_from_flags(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let shards = match shards_from_flags(&flags) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };

    let workload = match WorkloadOptions::from_flags(&flags) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let scenario_name = flag(&flags, "scenario").unwrap_or("small-college");
    let Some(mut scenario) = scenario_by_name(scenario_name, seed) else {
        eprintln!("{}", unknown_scenario(scenario_name));
        return usage();
    };
    if let Some(spec) = chaos {
        scenario = scenario.with_chaos(spec);
    }
    let mut scenario = match workload.apply(with_shards_override(scenario, shards)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    match fidelity_from_flags(&flags) {
        Ok(Some(f)) => scenario = scenario.with_fidelity(f),
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    }
    if workload.record.is_some() && (replications != 1 || scenario.shards() != 1) {
        eprintln!(
            "--record-trace requires --replications 1 --shards 1 \
             (stream order follows source creation within one run)"
        );
        return usage();
    }
    // Refuse event-fidelity runs whose estimated event count no machine
    // can turn around (E18 at national scale).
    if let Err(e) = check_fidelity_feasible(experiment.id(), &scenario) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let recorder = workload.start_recording(&mut scenario);

    let mut spec = RunSpec::new(experiment, scenario, replications).threads(threads);
    if let Some(opts) = &trace_opts {
        spec = spec.trace(opts.filter.clone());
    }
    let mut silent = Silent;
    let mut stderr = Stderr;
    let progress: &mut dyn Progress = if flag(&flags, "quiet").is_some() {
        &mut silent
    } else {
        &mut stderr
    };

    let outcome = run(&spec, progress);
    // Ignore EPIPE so `elc-run ... | head` exits cleanly.
    let _ = writeln!(std::io::stdout().lock(), "{}", outcome.report());

    if let Some(opts) = &trace_opts {
        match export_trace(&outcome, opts) {
            Ok((table, note)) => {
                let _ = writeln!(std::io::stdout().lock(), "{table}\n{note}");
            }
            Err(e) => {
                eprintln!("cannot write trace {}: {e}", opts.path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(recorder) = &recorder {
        match workload.finish_recording(recorder) {
            Ok(line) => eprintln!("{line}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
