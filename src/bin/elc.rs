//! `elc` — command-line front end for the elearn-cloud evaluation suite.
//!
//! ```text
//! elc scenarios                              list scenario presets
//! elc experiments                            list experiment registry ids
//! elc report [SCENARIO] [--seed N]           run the full suite, print all tables
//! elc experiment <ID> [SCENARIO] [--seed N]  run one experiment (e1..e15, t1)
//! elc advise [SCENARIO] [--seed N]
//!     [--profile startup|exam|balanced]      advisor with a preset profile
//!     [--cost W --security W --elasticity W
//!      --portability W --time W --ops W]     ... or custom weights in [0,1]
//! ```
//!
//! Scenarios: `small-college` (default), `rural-learners`, `university`,
//! `national-platform`.

use std::process::ExitCode;

use elearn_cloud::core::experiments::{find, registry, run_all};
use elearn_cloud::core::{advise, Requirements, Scenario};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  elc scenarios\n  elc experiments\n  elc report [SCENARIO] [--seed N]\n  \
         elc experiment <ID> [SCENARIO] [--seed N]\n  \
         elc advise [SCENARIO] [--seed N] [--profile startup|exam|balanced] \
         [--cost W --security W --elasticity W --portability W --time W --ops W]\n\
         scenarios: small-college | rural-learners | university | national-platform"
    );
    ExitCode::from(2)
}

fn scenario_by_name(name: &str, seed: u64) -> Option<Scenario> {
    Some(match name {
        "small-college" => Scenario::small_college(seed),
        "rural-learners" => Scenario::rural_learners(seed),
        "university" => Scenario::university(seed),
        "national-platform" => Scenario::national_platform(seed),
        _ => return None,
    })
}

/// Pulls `--flag value` pairs out of the argument list, returning the
/// remaining positional arguments.
fn split_flags(args: &[String]) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match it.next() {
                Some(v) => flags.push((name.to_string(), v.clone())),
                None => flags.push((name.to_string(), String::new())),
            }
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_weight(flags: &[(String, String)], name: &str, default: f64) -> Result<f64, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn run_experiment(id: &str, scenario: &Scenario) -> Option<String> {
    // The registry accepts e1/e01/E1 spellings and covers the whole suite,
    // so the CLI never falls out of date when an experiment is added.
    find(id).map(|e| e.run(scenario).section.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    let (positional, flags) = split_flags(&args[1..]);

    let seed = match flag(&flags, "seed").map(str::parse::<u64>) {
        None => 2013,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("--seed expects an unsigned integer");
            return usage();
        }
    };

    match command.as_str() {
        "scenarios" => {
            for name in [
                "small-college",
                "rural-learners",
                "university",
                "national-platform",
            ] {
                let s = scenario_by_name(name, seed).expect("preset exists");
                println!(
                    "{name:<18} {:>7} students, link {}, availability {:.3}%",
                    s.students(),
                    s.link(),
                    s.outages().availability() * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        "experiments" => {
            for e in registry() {
                println!("{:<4} {}", e.id(), e.name());
            }
            ExitCode::SUCCESS
        }
        "report" => {
            let name = positional.first().map_or("small-college", String::as_str);
            let Some(scenario) = scenario_by_name(name, seed) else {
                eprintln!("unknown scenario {name:?}");
                return usage();
            };
            let outputs = run_all(&scenario);
            println!("{}", outputs.report());
            ExitCode::SUCCESS
        }
        "experiment" => {
            let Some(id) = positional.first() else {
                return usage();
            };
            let name = positional.get(1).map_or("small-college", String::as_str);
            let Some(scenario) = scenario_by_name(name, seed) else {
                eprintln!("unknown scenario {name:?}");
                return usage();
            };
            match run_experiment(&id.to_lowercase(), &scenario) {
                Some(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment {id:?} (e1..e15, t1)");
                    usage()
                }
            }
        }
        "advise" => {
            let name = positional.first().map_or("small-college", String::as_str);
            let Some(scenario) = scenario_by_name(name, seed) else {
                eprintln!("unknown scenario {name:?}");
                return usage();
            };
            let base = match flag(&flags, "profile") {
                None | Some("balanced") => Requirements::balanced_university(),
                Some("startup") => Requirements::startup_program(),
                Some("exam") => Requirements::exam_authority(),
                Some(other) => {
                    eprintln!("unknown profile {other:?}");
                    return usage();
                }
            };
            let reqs = (|| -> Result<Requirements, String> {
                Ok(Requirements {
                    cost_sensitivity: parse_weight(&flags, "cost", base.cost_sensitivity)?,
                    security_sensitivity: parse_weight(
                        &flags,
                        "security",
                        base.security_sensitivity,
                    )?,
                    elasticity_need: parse_weight(&flags, "elasticity", base.elasticity_need)?,
                    portability_concern: parse_weight(
                        &flags,
                        "portability",
                        base.portability_concern,
                    )?,
                    time_pressure: parse_weight(&flags, "time", base.time_pressure)?,
                    ops_capacity: parse_weight(&flags, "ops", base.ops_capacity)?,
                })
            })();
            let reqs = match reqs {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Err(field) = reqs.validate() {
                eprintln!("invalid requirements: {field} must be in [0, 1]");
                return usage();
            }
            eprintln!("running the experiment suite for {} …", scenario.name());
            let outputs = run_all(&scenario);
            println!("{}", advise(&reqs, &outputs.metrics()));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
