//! `elc` — command-line front end for the elearn-cloud evaluation suite.
//!
//! ```text
//! elc scenarios                              list scenario presets
//! elc experiments                            list experiment registry ids
//! elc report [SCENARIO] [--seed N]           run the full suite, print all tables
//! elc experiment <ID> [SCENARIO] [--seed N]  run one experiment (e1..e19, t1)
//!     [--chaos SPEC]                         fault campaign for e16/e17
//!                                            (e.g. storm@0.3:n=4,mins=6;disaster@0.79, or off)
//!     [--shards N]                           shard-parallel execution (output is
//!                                            byte-identical at any shard count)
//!     [--fidelity event|fluid|auto]          simulation fidelity: exact per-request
//!                                            events, fluid flow integration, or
//!                                            automatic switching (default: event)
//!     [--workload trace:PATH]                replay a recorded workload trace
//!                                            (.csv parses as interchange CSV)
//!     [--morph SPEC]                         reshape the replayed trace, e.g.
//!                                            stretch=2,scale=0.5,clip=48..96
//!     [--record-trace PATH]                  tee the generator-driven run into
//!                                            a trace file (requires --shards 1)
//! elc advise [SCENARIO] [--seed N]
//!     [--profile startup|exam|balanced]      advisor with a preset profile
//!     [--cost W --security W --elasticity W
//!      --portability W --time W --ops W]     ... or custom weights in [0,1]
//! ```
//!
//! Scenarios: `small-college` (default), `rural-learners`, `university`,
//! `national-platform`, `national-5m` (5M students; needs `--fidelity
//! fluid` or `auto` for E18).

use std::process::ExitCode;

use elearn_cloud::core::cli_args::{
    chaos_from_flags, check_fidelity_feasible, fidelity_from_flags, flag, parse_or,
    scenario_by_name, scenario_list, shards_from_flags, split_args, unknown_experiment,
    unknown_scenario, with_shards_override, WorkloadOptions, SCENARIO_USAGE,
};
use elearn_cloud::core::experiments::{find, run_all};
use elearn_cloud::core::{advise, Requirements, Scenario};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  elc scenarios\n  elc experiments\n  elc report [SCENARIO] [--seed N]\n  \
         elc experiment <ID> [SCENARIO] [--seed N] [--chaos SPEC] [--shards N]\n    \
         [--fidelity event|fluid|auto] [--workload trace:PATH] [--morph SPEC] \
         [--record-trace PATH]\n  \
         elc advise [SCENARIO] [--seed N] [--profile startup|exam|balanced] \
         [--cost W --security W --elasticity W --portability W --time W --ops W]\n\
         {SCENARIO_USAGE}"
    );
    ExitCode::from(2)
}

fn run_experiment(id: &str, scenario: &Scenario) -> Option<String> {
    // The registry accepts e1/e01/E1 spellings and covers the whole suite,
    // so the CLI never falls out of date when an experiment is added.
    find(id).map(|e| e.run(scenario).section.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    let (positional, flags) = split_args(&args[1..]);

    let seed = match parse_or(&flags, "seed", 2013u64) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let chaos = match chaos_from_flags(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let shards = match shards_from_flags(&flags) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let workload = match WorkloadOptions::from_flags(&flags) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let fidelity = match fidelity_from_flags(&flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    match command.as_str() {
        "scenarios" => {
            print!("{}", scenario_list(seed));
            ExitCode::SUCCESS
        }
        "experiments" => {
            print!("{}", elearn_cloud::core::cli_args::experiment_list());
            ExitCode::SUCCESS
        }
        "report" => {
            let name = positional.first().map_or("small-college", String::as_str);
            let Some(scenario) = scenario_by_name(name, seed) else {
                eprintln!("{}", unknown_scenario(name));
                return usage();
            };
            let mut scenario = match workload.apply(with_shards_override(scenario, shards)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Some(f) = fidelity {
                scenario = scenario.with_fidelity(f);
            }
            if workload.record.is_some() && scenario.shards() != 1 {
                eprintln!(
                    "--record-trace requires --shards 1 (stream order follows source creation)"
                );
                return usage();
            }
            let recorder = workload.start_recording(&mut scenario);
            let outputs = run_all(&scenario);
            println!("{}", outputs.report());
            if let Some(recorder) = &recorder {
                match workload.finish_recording(recorder) {
                    Ok(line) => eprintln!("{line}"),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "experiment" => {
            let Some(id) = positional.first() else {
                return usage();
            };
            let name = positional.get(1).map_or("small-college", String::as_str);
            let Some(mut scenario) = scenario_by_name(name, seed) else {
                eprintln!("{}", unknown_scenario(name));
                return usage();
            };
            if let Some(spec) = &chaos {
                scenario = scenario.with_chaos(spec.clone());
            }
            let mut scenario = match workload.apply(with_shards_override(scenario, shards)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Some(f) = fidelity {
                scenario = scenario.with_fidelity(f);
            }
            if workload.record.is_some() && scenario.shards() != 1 {
                eprintln!(
                    "--record-trace requires --shards 1 (stream order follows source creation)"
                );
                return usage();
            }
            // Refuse event-fidelity runs whose estimated event count no
            // machine can turn around (E18 at national scale).
            if let Err(e) = check_fidelity_feasible(id, &scenario) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            let recorder = workload.start_recording(&mut scenario);
            match run_experiment(&id.to_lowercase(), &scenario) {
                Some(text) => {
                    println!("{text}");
                    if let Some(recorder) = &recorder {
                        match workload.finish_recording(recorder) {
                            Ok(line) => eprintln!("{line}"),
                            Err(e) => {
                                eprintln!("{e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("{}", unknown_experiment(id));
                    usage()
                }
            }
        }
        "advise" => {
            let name = positional.first().map_or("small-college", String::as_str);
            let Some(scenario) = scenario_by_name(name, seed) else {
                eprintln!("{}", unknown_scenario(name));
                return usage();
            };
            let base = match flag(&flags, "profile") {
                None | Some("balanced") => Requirements::balanced_university(),
                Some("startup") => Requirements::startup_program(),
                Some("exam") => Requirements::exam_authority(),
                Some(other) => {
                    eprintln!("unknown profile {other:?}");
                    return usage();
                }
            };
            let reqs = (|| -> Result<Requirements, String> {
                Ok(Requirements {
                    cost_sensitivity: parse_or(&flags, "cost", base.cost_sensitivity)?,
                    security_sensitivity: parse_or(&flags, "security", base.security_sensitivity)?,
                    elasticity_need: parse_or(&flags, "elasticity", base.elasticity_need)?,
                    portability_concern: parse_or(&flags, "portability", base.portability_concern)?,
                    time_pressure: parse_or(&flags, "time", base.time_pressure)?,
                    ops_capacity: parse_or(&flags, "ops", base.ops_capacity)?,
                })
            })();
            let reqs = match reqs {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Err(field) = reqs.validate() {
                eprintln!("invalid requirements: {field} must be in [0, 1]");
                return usage();
            }
            eprintln!("running the experiment suite for {} …", scenario.name());
            let outputs = run_all(&scenario);
            println!("{}", advise(&reqs, &outputs.metrics()));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
