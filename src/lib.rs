//! # elearn-cloud — an experimental environment for cloud deployment models
//! in e-learning systems
//!
//! This umbrella crate re-exports the whole workspace (see `DESIGN.md` for
//! the architecture and the paper-claim → experiment index):
//!
//! * [`trace`] — deterministic sim-time structured event tracing,
//! * [`simcore`] — deterministic discrete-event simulation kernel,
//! * [`net`] — links, topology, outages, transfers,
//! * [`cloud`] — datacenters, VMs, autoscaling, storage, failures, billing,
//! * [`elearn`] — the LMS model and its workload,
//! * [`wltrace`] — workload trace record, replay and morphing behind the
//!   [`WorkloadSource`](elc_elearn::source::WorkloadSource) API,
//! * [`faas`] — the serverless platform model: container lifecycle,
//!   keepalive policies, invocation buffering and GB-s billing,
//! * [`fluid`] — the fluid/mean-field fast path: per-class flow
//!   integration, fidelity switching and backlog materialization for
//!   million-student scale,
//! * [`deploy`] — public / private / hybrid / FaaS deployment models and
//!   their cost, security, portability, update, reliability and governance
//!   behaviour,
//! * [`analysis`] — statistics, tables, the comparison matrix,
//! * [`core`] — the experiment suite (E1–E18, T1), the uniform experiment
//!   registry and the deployment advisor,
//! * [`runner`] — the deterministic parallel multi-seed execution engine
//!   (replications, worker pool, aggregate statistics, run manifests).
//!
//! # Quickstart
//!
//! ```no_run
//! use elearn_cloud::core::{advise, run_all, Requirements, Scenario};
//!
//! let scenario = Scenario::university(42);
//! let outputs = run_all(&scenario);
//! println!("{}", outputs.report());
//! let rec = advise(&Requirements::balanced_university(), &outputs.metrics());
//! println!("{rec}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use elc_analysis as analysis;
pub use elc_cloud as cloud;
pub use elc_core as core;
pub use elc_deploy as deploy;
pub use elc_elearn as elearn;
pub use elc_faas as faas;
pub use elc_fluid as fluid;
pub use elc_net as net;
pub use elc_runner as runner;
pub use elc_simcore as simcore;
pub use elc_trace as trace;
pub use elc_wltrace as wltrace;
