//! Proof that the event hot path is allocation-free at steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; once the
//! simulation has warmed up (slab arena, heap vector and free list at
//! capacity) the gate is flipped on and a schedule/execute/cancel loop —
//! including batch scheduling from a reused offsets buffer — must perform
//! **zero** heap allocations for the default (inline) model event mix.
//!
//! This file holds exactly one `#[test]` so no sibling test can allocate
//! concurrently while the gate is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use elc_simcore::time::SimDuration;
use elc_simcore::Simulation;

/// Counts allocations (alloc/alloc_zeroed/realloc) while armed. Frees are
/// never counted: releasing warm-up storage is not a hot-path allocation.
struct CountingAlloc;

// Armed per-thread: the libtest harness's main thread blocks on a channel
// while the test thread runs, and setting up its parker can allocate at
// an arbitrary moment inside the measured window. Only the thread driving
// the simulation is the hot path under proof. Const-initialized and
// Drop-free, so reading it inside `alloc` itself never allocates.
thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn armed() -> bool {
    ARMED.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Capture-less tick: the smallest possible inline payload (ZST).
fn tick(_sim: &mut Simulation<u64>) {}

/// Model-style handler with a small capture (ids and indices, not cloned
/// structs), still comfortably inline.
fn schedule_captured(sim: &mut Simulation<u64>, delay: SimDuration) -> elc_simcore::queue::EventId {
    let vm: u32 = 17;
    let host: u32 = 3;
    sim.schedule_in(delay, move |s| {
        *s.state_mut() += u64::from(vm) + u64::from(host);
    })
}

/// One steady-state round: schedule a burst (batch + singles), cancel one,
/// then drain. Identical during warm-up and measurement.
fn round(sim: &mut Simulation<u64>, offsets: &[SimDuration]) {
    sim.schedule_batch(offsets, tick);
    let victim = schedule_captured(sim, SimDuration::from_millis(7));
    schedule_captured(sim, SimDuration::from_millis(9));
    sim.schedule_in(SimDuration::from_millis(11), tick);
    assert!(sim.cancel(victim));
    while sim.step() {}
}

#[test]
fn steady_state_event_loop_allocates_nothing() {
    let mut sim = Simulation::new(42, 0u64);
    let offsets: Vec<SimDuration> = (0..32).map(SimDuration::from_millis).collect();

    // Warm up: grow the slab arena, heap vector and free list to the
    // working-set size the measured loop needs.
    for _ in 0..16 {
        round(&mut sim, &offsets);
    }

    // Measure: the same loop must now be allocation-free.
    let executed_before = sim.executed();
    ARMED.with(|a| a.set(true));
    for _ in 0..256 {
        round(&mut sim, &offsets);
    }
    ARMED.with(|a| a.set(false));

    let events = sim.executed() - executed_before;
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert!(
        events >= 256 * 34,
        "loop did not execute the expected events"
    );
    assert_eq!(
        allocs, 0,
        "steady-state hot path allocated {allocs} times over {events} events"
    );
    // The whole mix stayed inline — nothing spilled to a Box.
    assert_eq!(sim.spilled_scheduled(), 0);
    assert!(*sim.state() > 0);
}
