//! Arena slot recycling under a mixed inline/spilled event workload.
//!
//! The slab arena reuses slots; each slot now owns a fixed-size inline
//! payload buffer (`elc_simcore::event`) whose occupant may be stored in
//! place or spilled to a `Box`. These tests drive slots through many
//! generations with payloads straddling the inline threshold and check the
//! two properties that matter:
//!
//! * **no slot aliasing** — a stale `EventId` from an earlier generation
//!   never cancels (or observes) the event currently occupying the slot;
//! * **exactly-once `Drop`** — a cancelled spilled event releases its
//!   captures once: no leak, no double-drop.

use std::sync::Arc;
use std::sync::Mutex;

use elc_simcore::event::INLINE_EVENT_BYTES;
use elc_simcore::queue::EventId;
use elc_simcore::time::{SimDuration, SimTime};
use elc_simcore::Simulation;

/// Spills: one byte over the inline payload threshold.
const SPILL_PAD: usize = INLINE_EVENT_BYTES + 1;

fn slot_of(id: EventId) -> u32 {
    (id.as_u64() & 0xffff_ffff) as u32
}

fn generation_of(id: EventId) -> u32 {
    (id.as_u64() >> 32) as u32
}

#[test]
fn stale_ids_never_cancel_recycled_slots() {
    let mut sim = Simulation::new(7, 0u64);

    // Drive one slot through many generations, alternating the payload
    // across the inline threshold each time. Every retired id must stay
    // dead even though the slot index is being reused.
    let mut stale: Vec<EventId> = Vec::new();
    for round in 0..32u32 {
        let id = if round % 2 == 0 {
            let small = round; // 4 bytes: inline
            sim.schedule_in(SimDuration::from_secs(1), move |s: &mut Simulation<u64>| {
                *s.state_mut() += u64::from(small);
            })
        } else {
            let pad = [round as u8; SPILL_PAD]; // over threshold: spilled
            sim.schedule_in(SimDuration::from_secs(1), move |s: &mut Simulation<u64>| {
                *s.state_mut() += u64::from(std::hint::black_box(pad)[0]);
            })
        };

        if let Some(&prev) = stale.last() {
            // The freed slot is recycled LIFO, so consecutive rounds share
            // a slot index but never a generation.
            assert_eq!(
                slot_of(prev),
                slot_of(id),
                "round {round}: slot not recycled"
            );
            assert_ne!(
                generation_of(prev),
                generation_of(id),
                "round {round}: generation did not advance"
            );
        }

        // Every stale id must refuse to cancel the new occupant.
        for &old in &stale {
            assert!(!sim.cancel(old), "stale id {old:?} aliased a live slot");
        }
        assert!(sim.cancel(id), "fresh id must cancel its own event");
        assert!(!sim.cancel(id), "double-cancel must be a no-op");
        stale.push(id);
    }

    // Nothing should ever have fired.
    let stats = sim.run();
    assert_eq!(stats.executed, 0);
    assert_eq!(*sim.state(), 0);
    // 16 inline + 16 spilled were scheduled (then cancelled).
    assert_eq!(sim.inline_scheduled(), 16);
    assert_eq!(sim.spilled_scheduled(), 16);
}

#[test]
fn mixed_generations_fire_with_correct_payloads() {
    // Interleave inline and spilled events, cancel a third of them, and
    // check the survivors fire with exactly their own captures — a slot
    // that held a spilled payload in one generation and an inline payload
    // in the next must not mix them up.
    let fired: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(11, ());

    let mut expected: Vec<u32> = Vec::new();
    let mut pending: Vec<(u32, EventId)> = Vec::new();
    for wave in 0..8u32 {
        for k in 0..12u32 {
            let tag = wave * 100 + k;
            let at = SimTime::from_secs(u64::from(wave) + 1);
            let log = Arc::clone(&fired);
            let id = if k % 2 == 0 {
                sim.schedule_at(at, move |_s: &mut Simulation<()>| {
                    log.lock().unwrap().push(tag);
                })
            } else {
                let pad = [0u8; SPILL_PAD];
                sim.schedule_at(at, move |_s: &mut Simulation<()>| {
                    std::hint::black_box(&pad);
                    log.lock().unwrap().push(tag);
                })
            };
            pending.push((tag, id));
        }
        // Cancel every third event of the wave; recycled slots are refilled
        // by the next wave's mix.
        let mut idx = 0;
        pending.retain(|&(_, id)| {
            let keep = idx % 3 != 2;
            idx += 1;
            if !keep {
                assert!(sim.cancel(id));
            }
            keep
        });
        expected.extend(pending.drain(..).map(|(tag, _)| tag));
    }

    let stats = sim.run();
    assert_eq!(stats.executed as usize, expected.len());
    // Events at the same instant fire in schedule order, so the log is
    // exactly the per-wave survivor order.
    assert_eq!(*fired.lock().unwrap(), expected);
}

#[test]
fn cancelled_spilled_events_drop_captures_exactly_once() {
    let token = Arc::new(());
    let mut sim = Simulation::new(3, ());

    // One spilled and one inline event, both capturing the token.
    let keep = Arc::clone(&token);
    let pad = [0u8; SPILL_PAD];
    let spilled_id = sim.schedule_in(SimDuration::from_secs(1), move |_s| {
        std::hint::black_box(&pad);
        drop(keep);
    });
    let keep = Arc::clone(&token);
    let inline_id = sim.schedule_in(SimDuration::from_secs(1), move |_s| {
        drop(keep);
    });
    assert_eq!(sim.spilled_scheduled(), 1);
    assert_eq!(sim.inline_scheduled(), 1);
    assert_eq!(Arc::strong_count(&token), 3);

    // Cancelling the spilled event must free its Box and run the capture's
    // Drop exactly once.
    assert!(sim.cancel(spilled_id));
    assert_eq!(
        Arc::strong_count(&token),
        2,
        "cancel leaked the spilled capture"
    );
    assert!(!sim.cancel(spilled_id), "stale id must not double-drop");
    assert_eq!(Arc::strong_count(&token), 2);

    assert!(sim.cancel(inline_id));
    assert_eq!(
        Arc::strong_count(&token),
        1,
        "cancel leaked the inline capture"
    );

    // Refill the recycled slots with firing events: captures are released
    // by the call itself, again exactly once.
    let keep = Arc::clone(&token);
    let pad = [0u8; SPILL_PAD];
    sim.schedule_in(SimDuration::from_secs(1), move |_s| {
        std::hint::black_box(&pad);
        drop(keep);
    });
    let stats = sim.run();
    assert_eq!(stats.executed, 1);
    assert_eq!(
        Arc::strong_count(&token),
        1,
        "firing leaked or double-freed"
    );
}

#[test]
fn dropping_the_simulation_releases_pending_mixed_payloads() {
    let token = Arc::new(());
    {
        let mut sim = Simulation::new(5, ());
        for i in 0..10 {
            let keep = Arc::clone(&token);
            if i % 2 == 0 {
                sim.schedule_in(SimDuration::from_secs(1), move |_s| drop(keep));
            } else {
                let pad = [0u8; SPILL_PAD];
                sim.schedule_in(SimDuration::from_secs(1), move |_s| {
                    std::hint::black_box(&pad);
                    drop(keep);
                });
            }
        }
        assert_eq!(Arc::strong_count(&token), 11);
        // `sim` dropped here with all ten events still pending.
    }
    assert_eq!(
        Arc::strong_count(&token),
        1,
        "dropping the queue must release every pending capture exactly once"
    );
}
