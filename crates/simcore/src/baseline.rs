//! Naive pending-event set used as an ablation baseline.
//!
//! [`NaiveQueue`] stores events in an unsorted `Vec` and scans for the
//! minimum on every pop — O(n) per operation. It exists only so the kernel
//! ablation bench (`a1_kernel`) can quantify what the binary-heap queue in
//! [`crate::queue`] buys; models should never use it.

use crate::time::SimTime;

/// An unsorted-vector event set with O(n) pop. Ablation baseline only.
///
/// Semantics match [`crate::queue::EventQueue`]: earliest time first, ties in
/// FIFO order.
#[derive(Debug)]
pub struct NaiveQueue<E> {
    entries: Vec<(SimTime, u64, E)>,
    next_seq: u64,
}

impl<E> NaiveQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        NaiveQueue {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.entries.push((time, self.next_seq, payload));
        self.next_seq += 1;
    }

    /// Removes and returns the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.entries.len() {
            let (t, s, _) = &self.entries[i];
            let (bt, bs, _) = &self.entries[best];
            if (*t, *s) < (*bt, *bs) {
                best = i;
            }
        }
        let (time, _, payload) = self.entries.swap_remove(best);
        Some((time, payload))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<E> Default for NaiveQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = NaiveQueue::new();
        q.push(SimTime::from_secs(2), 'b');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(3), 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_fifo() {
        let mut q = NaiveQueue::new();
        for i in 0..5 {
            q.push(SimTime::ZERO, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn agrees_with_heap_queue_on_random_input() {
        let mut rng = SimRng::seed(42);
        let mut naive = NaiveQueue::new();
        let mut heap = EventQueue::new();
        for i in 0..500u32 {
            let t = SimTime::from_nanos(rng.next_below(100));
            naive.push(t, i);
            heap.push(t, i);
        }
        loop {
            match (naive.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: NaiveQueue<()> = NaiveQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
