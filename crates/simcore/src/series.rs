//! Time-indexed measurements.
//!
//! [`TimeWeighted`] tracks a piecewise-constant signal (VM count, queue
//! depth, utilization) and integrates it over virtual time, which is the
//! correct way to average such signals — sampling them at event times would
//! over-weight busy periods.
//!
//! [`TimeSeries`] stores explicit `(time, value)` samples for plotting and
//! table generation.

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant signal integrated over virtual time.
///
/// # Examples
///
/// ```
/// use elc_simcore::series::TimeWeighted;
/// use elc_simcore::time::SimTime;
///
/// let mut vms = TimeWeighted::new(SimTime::ZERO, 2.0);
/// vms.set(SimTime::from_secs(10), 4.0); // scale up at t=10
/// let avg = vms.time_average(SimTime::from_secs(20));
/// assert_eq!(avg, 3.0); // 2 for 10s, 4 for 10s
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    start: SimTime,
    integral: f64,
    max: f64,
    min: f64,
}

impl TimeWeighted {
    /// Starts tracking a signal with the given initial value.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            start,
            integral: 0.0,
            max: initial,
            min: initial,
        }
    }

    /// Updates the signal to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous update — the signal is recorded
    /// in event order.
    pub fn set(&mut self, t: SimTime, value: f64) {
        assert!(
            t >= self.last_time,
            "time-weighted updates must be monotone: last={}, got={}",
            self.last_time,
            t
        );
        self.integral += self.last_value * (t - self.last_time).as_secs_f64();
        self.last_time = t;
        self.last_value = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Adds `delta` to the current value at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(t, v);
    }

    /// The current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The largest value the signal has taken.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The smallest value the signal has taken.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Integral of the signal from the start through time `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last update.
    #[must_use]
    pub fn integral(&self, end: SimTime) -> f64 {
        assert!(end >= self.last_time, "integral end precedes last update");
        self.integral + self.last_value * (end - self.last_time).as_secs_f64()
    }

    /// Time-weighted average of the signal from the start through `end`.
    ///
    /// Returns the current value if no time has elapsed.
    #[must_use]
    pub fn time_average(&self, end: SimTime) -> f64 {
        let span = (end - self.start).as_secs_f64();
        if span == 0.0 {
            self.last_value
        } else {
            self.integral(end) / span
        }
    }
}

/// An explicit series of `(time, value)` samples.
///
/// # Examples
///
/// ```
/// use elc_simcore::series::TimeSeries;
/// use elc_simcore::time::SimTime;
///
/// let mut s = TimeSeries::new("latency_ms");
/// s.push(SimTime::from_secs(1), 12.0);
/// s.push(SimTime::from_secs(2), 15.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last(), Some((SimTime::from_secs(2), 15.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "series samples must be time-ordered");
        }
        self.samples.push((t, value));
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Buckets samples into fixed windows and returns per-window means —
    /// useful for rendering long runs as short tables.
    ///
    /// Windows with no samples are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn downsample(&self, window: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!window.is_zero(), "window must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut bucket_start: Option<SimTime> = None;
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.samples {
            let w = SimTime::from_nanos(t.as_nanos() / window.as_nanos() * window.as_nanos());
            match bucket_start {
                Some(b) if b == w => {
                    sum += v;
                    n += 1;
                }
                Some(b) => {
                    out.push((b, sum / n as f64));
                    bucket_start = Some(w);
                    sum = v;
                    n = 1;
                    let _ = b;
                }
                None => {
                    bucket_start = Some(w);
                    sum = v;
                    n = 1;
                }
            }
        }
        if let Some(b) = bucket_start {
            out.push((b, sum / n as f64));
        }
        out
    }

    /// Largest sample value, `None` when empty.
    #[must_use]
    pub fn max_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_average() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 1.0);
        s.set(SimTime::from_secs(5), 3.0);
        s.set(SimTime::from_secs(10), 0.0);
        // 1*5 + 3*5 + 0*10 over 20s = 20/20 = 1.0
        assert_eq!(s.time_average(SimTime::from_secs(20)), 1.0);
    }

    #[test]
    fn time_weighted_tracks_extremes() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 2.0);
        s.set(SimTime::from_secs(1), 7.0);
        s.set(SimTime::from_secs(2), -1.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.current(), -1.0);
    }

    #[test]
    fn time_weighted_add_is_relative() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 10.0);
        s.add(SimTime::from_secs(1), 5.0);
        s.add(SimTime::from_secs(2), -3.0);
        assert_eq!(s.current(), 12.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let s = TimeWeighted::new(SimTime::from_secs(5), 4.0);
        assert_eq!(s.time_average(SimTime::from_secs(5)), 4.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_backwards_time() {
        let mut s = TimeWeighted::new(SimTime::from_secs(10), 0.0);
        s.set(SimTime::from_secs(5), 1.0);
    }

    #[test]
    fn integral_extends_to_end() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 2.0);
        s.set(SimTime::from_secs(10), 4.0);
        assert_eq!(s.integral(SimTime::from_secs(15)), 2.0 * 10.0 + 4.0 * 5.0);
    }

    #[test]
    fn series_push_and_iterate() {
        let mut s = TimeSeries::new("x");
        assert!(s.is_empty());
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 20.0);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(s.name(), "x");
        assert_eq!(s.max_value(), Some(20.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn series_rejects_out_of_order() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(2), 1.0);
        s.push(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn series_downsample_means() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        let ds = s.downsample(SimDuration::from_secs(5));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0], (SimTime::ZERO, 2.0)); // mean of 0..=4
        assert_eq!(ds[1], (SimTime::from_secs(5), 7.0)); // mean of 5..=9
    }

    #[test]
    fn series_downsample_empty() {
        let s = TimeSeries::new("x");
        assert!(s.downsample(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn series_last() {
        let mut s = TimeSeries::new("x");
        assert_eq!(s.last(), None);
        s.push(SimTime::from_secs(3), 9.0);
        assert_eq!(s.last(), Some((SimTime::from_secs(3), 9.0)));
    }
}
