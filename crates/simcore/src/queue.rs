//! The pending-event set.
//!
//! A classic discrete-event simulator is a loop around a priority queue of
//! timestamped events. Two properties matter for reproducibility:
//!
//! 1. **Deterministic tie-breaking** — events scheduled for the same instant
//!    fire in scheduling order (FIFO), enforced with a sequence number.
//! 2. **Cancellation** — models cancel timers (e.g. an autoscaler probe after
//!    shutdown) without scanning the heap; cancelled ids are tombstoned and
//!    skipped on pop.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifies a scheduled event, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events with O(log n) push/pop and O(1)
/// cancellation.
///
/// # Examples
///
/// ```
/// use elc_simcore::queue::EventQueue;
/// use elc_simcore::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time` and returns a handle for cancellation.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event returns `false` and is harmless.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event.
    ///
    /// Skips cancelled events. Ties fire in scheduling (FIFO) order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled tombstones from the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("issued", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "cancel me");
        q.push(SimTime::from_secs(2), "keep me");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "keep me");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::ZERO, ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "x");
        q.push(SimTime::from_secs(5), "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
