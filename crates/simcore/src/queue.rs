//! The pending-event set: a slab-backed event arena.
//!
//! A classic discrete-event simulator is a loop around a priority queue of
//! timestamped events. Two properties matter for reproducibility:
//!
//! 1. **Deterministic tie-breaking** — events scheduled for the same instant
//!    fire in scheduling order (FIFO), enforced with a monotone sequence
//!    number in the heap key `(SimTime, seq)`.
//! 2. **Cancellation** — models cancel timers (e.g. an autoscaler probe after
//!    shutdown) without scanning the heap.
//!
//! The implementation is built for the hot path (see DESIGN.md):
//!
//! * **Slab slots** — every pending event lives in a slot of one flat
//!   `Vec<Slot<E>>`. Fired and cancelled slots go on a free list and are
//!   reused, so a steady-state simulation performs no per-event heap
//!   allocation after warm-up.
//! * **Generation tags** — each slot carries a generation counter bumped on
//!   every release. An [`EventId`] is `(slot, generation)`, so a stale handle
//!   (the event already fired or was cancelled, even if the slot was reused)
//!   can never cancel the wrong event — `cancel` on it is a `false` no-op.
//! * **Indexed four-ary min-heap** — the heap stores slot indices and every
//!   slot remembers its heap position, so cancellation removes the entry in
//!   O(log n) with no tombstone `HashSet` and no skip loop on pop. Four-ary
//!   keeps the heap a level shallower than binary and sifts through
//!   cache-adjacent children.

use crate::time::SimTime;

/// Branching factor of the heap. Four children per node halves the depth of
/// a binary heap and keeps all children of a node in one or two cache lines.
const ARITY: usize = 4;

/// Identifies a scheduled event, for cancellation.
///
/// The id pairs the slot index with the slot's generation at scheduling
/// time, so ids stay unambiguous when slots are reused: once the event
/// fires or is cancelled the generation advances and the old id goes stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

impl EventId {
    /// The id packed into one integer (generation in the high half), for
    /// logging and map keys.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        ((self.generation as u64) << 32) | self.slot as u64
    }
}

/// One arena slot. `payload` is `Some` while the event is pending; `time`,
/// `seq` and `heap_pos` are only meaningful then.
struct Slot<E> {
    generation: u32,
    heap_pos: u32,
    seq: u64,
    time: SimTime,
    payload: Option<E>,
}

/// A time-ordered queue of pending events with O(log n) push, pop and
/// cancellation, backed by a slab of reusable slots.
///
/// # Examples
///
/// ```
/// use elc_simcore::queue::EventQueue;
/// use elc_simcore::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    /// The slab: one slot per event that has ever been pending, reused via
    /// `free`.
    slots: Vec<Slot<E>>,
    /// Indices of released slots, ready for reuse (LIFO keeps hot slots hot).
    free: Vec<u32>,
    /// Four-ary min-heap of occupied slot indices, ordered by `(time, seq)`.
    heap: Vec<u32>,
    /// Next FIFO tie-break sequence number.
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events before
    /// any slab growth.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            heap: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time` and returns a handle for cancellation.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len() as u32;
        // Fill the slot in one borrow: `heap_pos` is written and
        // `generation` read while the slot is already in hand, so the hot
        // loop touches `slots` exactly once per push.
        let (slot, generation) = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.time = time;
                s.seq = seq;
                s.heap_pos = pos;
                s.payload = Some(payload);
                (i, s.generation)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("more than u32::MAX pending events");
                self.slots.push(Slot {
                    generation: 0,
                    heap_pos: pos,
                    seq,
                    time,
                    payload: Some(payload),
                });
                (i, 0)
            }
        };
        self.heap.push(slot);
        self.sift_up(pos as usize);
        EventId { slot, generation }
    }

    /// Schedules a batch of events in one call.
    ///
    /// Equivalent to pushing each `(time, payload)` in iteration order (so
    /// FIFO tie-breaking follows the iterator), but reserves heap and slab
    /// space up front — the entry point bursty arrival models use via
    /// `Simulation::schedule_batch`.
    pub fn push_batch<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let items = items.into_iter();
        let (lower, _) = items.size_hint();
        let growth = lower.saturating_sub(self.free.len());
        self.slots.reserve(growth);
        self.heap.reserve(lower);
        for (time, payload) in items {
            let _ = self.push(time, payload);
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event — even one whose slot has since been
    /// reused by a newer event — returns `false` and is harmless.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get(id.slot as usize) {
            Some(s) if s.generation == id.generation && s.payload.is_some() => {
                let pos = s.heap_pos as usize;
                let slot = self.detach_at(pos);
                // Drop the payload in place — a cancelled event's handler
                // is never moved out of the arena.
                self.slots[slot as usize].payload = None;
                true
            }
            _ => false,
        }
    }

    /// True if the event behind `id` is still pending — not yet fired and
    /// not cancelled. A stale id (the slot was reused by a newer event)
    /// reports `false`, same as [`EventQueue::cancel`] on it would.
    #[must_use]
    pub fn contains(&self, id: EventId) -> bool {
        matches!(
            self.slots.get(id.slot as usize),
            Some(s) if s.generation == id.generation && s.payload.is_some()
        )
    }

    /// Removes and returns the earliest pending event.
    ///
    /// Ties fire in scheduling (FIFO) order.
    #[inline(always)]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            None
        } else {
            let slot = self.detach_at(0);
            // The payload moves slot → caller here, in inlined code with no
            // intervening call site, so it is copied exactly once.
            let s = &mut self.slots[slot as usize];
            let payload = s.payload.take().expect("pending slot holds a payload");
            Some((s.time, payload))
        }
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .first()
            .map(|&slot| self.slots[slot as usize].time)
    }

    /// Removes and returns the earliest pending event if it fires strictly
    /// before `horizon`; otherwise leaves the queue untouched and returns
    /// `None`.
    ///
    /// The drain-until-horizon primitive of the sharded executor
    /// ([`crate::shard`]): a conservative time window `[t, t+L)` executes
    /// exactly the events below its end, so the check and the pop must be
    /// one operation — peeking and popping separately would read the heap
    /// root twice.
    #[inline]
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let &slot = self.heap.first()?;
        if self.slots[slot as usize].time >= horizon {
            return None;
        }
        let slot = self.detach_at(0);
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take().expect("pending slot holds a payload");
        Some((s.time, payload))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Detaches the heap entry at `pos`: removes it from the heap, bumps
    /// the slot generation and releases the slot index to the free list.
    /// Returns the slot; the *payload is left in the slot* for the caller
    /// to move out ([`EventQueue::pop`]) or drop in place
    /// ([`EventQueue::cancel`]). Keeping the payload out of this function
    /// means its one potentially allocating call (`free.push`) never has a
    /// live payload on the stack across it — the compiler then moves the
    /// payload slot → caller in a single copy. The caller guarantees `pos`
    /// is in bounds and must clear `payload` before the next push reuses
    /// the slot.
    #[inline(always)]
    fn detach_at(&mut self, pos: usize) -> u32 {
        let slot = self.heap[pos];
        let last = self.heap.pop().expect("heap entry exists at pos");
        if last != slot {
            // Move the former last element into the hole, then restore the
            // heap invariant around it.
            self.heap[pos] = last;
            self.slots[last as usize].heap_pos = pos as u32;
            if !self.sift_up(pos) {
                self.sift_down(pos);
            }
        }
        self.free.push(slot);
        self.slots[slot as usize].generation = self.slots[slot as usize].generation.wrapping_add(1);
        slot
    }

    /// True when the event in `slots[a]` fires before the one in `slots[b]`.
    #[inline]
    fn fires_before(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (&self.slots[a as usize], &self.slots[b as usize]);
        (sa.time, sa.seq) < (sb.time, sb.seq)
    }

    /// Moves the element at `pos` up while it beats its parent. Returns
    /// whether it moved.
    #[inline]
    fn sift_up(&mut self, mut pos: usize) -> bool {
        let mut moved = false;
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if !self.fires_before(self.heap[pos], self.heap[parent]) {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos] as usize].heap_pos = pos as u32;
            self.slots[self.heap[parent] as usize].heap_pos = parent as u32;
            pos = parent;
            moved = true;
        }
        moved
    }

    /// Moves the element at `pos` down while any child beats it.
    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first = ARITY * pos + 1;
            if first >= self.heap.len() {
                break;
            }
            let mut best = first;
            for child in first + 1..(first + ARITY).min(self.heap.len()) {
                if self.fires_before(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if !self.fires_before(self.heap[best], self.heap[pos]) {
                break;
            }
            self.heap.swap(pos, best);
            self.slots[self.heap[pos] as usize].heap_pos = pos as u32;
            self.slots[self.heap[best] as usize].heap_pos = best as u32;
            pos = best;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("slots", &self.slots.len())
            .field("issued", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn contains_reflects_pending_fired_and_reused_slots() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "first");
        assert!(q.contains(id));
        let _ = q.pop();
        assert!(!q.contains(id), "fired event is gone");
        // The slot is reused with a bumped generation: the old id must
        // not match the new occupant.
        let id2 = q.push(SimTime::from_secs(2), "second");
        assert!(!q.contains(id));
        assert!(q.contains(id2));
        assert!(q.cancel(id2));
        assert!(!q.contains(id2));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "cancel me");
        q.push(SimTime::from_secs(2), "keep me");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "keep me");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::ZERO, ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::ZERO, ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(id), "fired events cannot be cancelled");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut donor = EventQueue::new();
        let foreign = donor.push(SimTime::from_secs(99), ());
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(foreign));
    }

    #[test]
    fn stale_id_does_not_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let old = q.push(SimTime::from_secs(1), "first");
        assert!(q.cancel(old));
        // The slot is reused by a new event with a bumped generation.
        let new = q.push(SimTime::from_secs(2), "second");
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(old), "stale id must be a no-op");
        assert_eq!(q.pop().unwrap().1, "second");
        assert!(!q.cancel(new));
    }

    #[test]
    fn event_ids_stay_unique_across_reuse() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, 1);
        q.pop();
        let b = q.push(SimTime::ZERO, 2);
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), b.as_u64());
    }

    #[test]
    fn peek_time_tracks_cancellations() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "x");
        q.push(SimTime::from_secs(5), "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop_before(SimTime::from_secs(1)), None);
    }

    #[test]
    fn pop_before_respects_the_horizon_exclusively() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.push(SimTime::from_secs(3), 'c');
        // The horizon itself is excluded: an event at t=2 stays pending
        // when the window ends at t=2.
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 'a');
        assert_eq!(q.pop_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 2, "excluded events stay pending");
        assert_eq!(q.pop_before(SimTime::from_secs(10)).unwrap().1, 'b');
        assert_eq!(q.pop_before(SimTime::from_secs(10)).unwrap().1, 'c');
        assert_eq!(q.pop_before(SimTime::from_secs(10)), None);
    }

    #[test]
    fn pop_before_keeps_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..5 {
            q.push(t, i);
        }
        let horizon = SimTime::from_secs(2);
        let order: Vec<i32> =
            std::iter::from_fn(|| q.pop_before(horizon).map(|(_, e)| e)).collect();
        assert_eq!(order, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn push_batch_keeps_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 0);
        q.push_batch((1..5).map(|i| (t, i)));
        q.push(t, 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn slab_reuses_slots_instead_of_growing() {
        let mut q = EventQueue::new();
        for round in 0..100u32 {
            q.push(SimTime::from_secs(u64::from(round)), round);
            q.pop();
        }
        assert_eq!(q.slots.len(), 1, "steady-state churn must reuse one slot");
    }

    /// Randomised schedule/cancel interleavings against a naive reference
    /// model: every drain must come out in exact `(time, seq)` order with the
    /// cancelled events absent, and stale ids must never cancel anything.
    #[test]
    fn cancellation_stress_matches_reference() {
        let mut rng = SimRng::seed(0xE1C2);
        for round in 0..50 {
            let mut q = EventQueue::new();
            let mut live: Vec<(EventId, u64, u32)> = Vec::new(); // (id, time_s, tag)
            let mut stale: Vec<EventId> = Vec::new();
            let mut expected: Vec<(u64, u32)> = Vec::new();
            let mut tag = 0u32;

            for _ in 0..200 {
                match rng.next_below(4) {
                    // Schedule (heavier weight): random time in a small
                    // window so ties are common.
                    0 | 1 => {
                        let t = rng.next_below(16);
                        let id = q.push(SimTime::from_secs(t), tag);
                        live.push((id, t, tag));
                        tag += 1;
                    }
                    // Cancel a random live event.
                    2 if !live.is_empty() => {
                        let at = rng.next_below(live.len() as u64) as usize;
                        let (id, _, _) = live.swap_remove(at);
                        assert!(q.cancel(id), "round {round}: live cancel must hit");
                        stale.push(id);
                    }
                    // Replay a stale id: must be a no-op.
                    _ => {
                        if let Some(&id) = stale.last() {
                            let before = q.len();
                            assert!(!q.cancel(id), "round {round}: stale cancel must miss");
                            assert_eq!(q.len(), before);
                        }
                    }
                }
                assert_eq!(q.len(), live.len(), "round {round}: length drifted");
            }

            // Scheduling order within equal times == FIFO == tag order,
            // because tags increase monotonically with seq.
            live.sort_by_key(|&(_, t, tg)| (t, tg));
            expected.extend(live.iter().map(|&(_, t, tg)| (t, tg)));
            let mut drained = Vec::new();
            while let Some((t, tg)) = q.pop() {
                drained.push((t.as_nanos() / 1_000_000_000, tg));
            }
            assert_eq!(drained, expected, "round {round}: drain order diverged");

            // After a full drain every stale id is dead.
            for id in live.iter().map(|&(id, ..)| id).chain(stale) {
                assert!(!q.cancel(id), "round {round}: id survived drain");
            }
        }
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        assert!(q.slots.capacity() >= 64);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
