//! # elc-simcore — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the `elearn-cloud` experimental
//! environment (see the workspace `DESIGN.md`). It provides:
//!
//! * a virtual clock with integer-nanosecond precision ([`time`]),
//! * a pending-event set with deterministic tie-breaking and O(1)
//!   cancellation ([`queue`]) plus a naive baseline for ablation
//!   ([`baseline`]),
//! * a multi-server FIFO queueing station validated against M/M/c theory
//!   ([`queueing`]),
//! * the simulation executive ([`sim::Simulation`]),
//! * a splittable, platform-independent PRNG ([`rng::SimRng`]) and a set of
//!   validated probability distributions ([`dist`]),
//! * measurement primitives ([`metrics`], [`series`]) and typed entity ids
//!   ([`id`]),
//! * a conservative time-window executor that partitions one scenario
//!   across site shards without changing its output ([`shard`]).
//!
//! Each simulation executive is single-threaded and allocation-light; a
//! run is a pure function of `(configuration, seed)`, byte-identical at
//! any shard or worker count.
//!
//! # Examples
//!
//! A Poisson arrival process:
//!
//! ```
//! use elc_simcore::dist::{Distribution, Exp};
//! use elc_simcore::metrics::Counter;
//! use elc_simcore::sim::Simulation;
//! use elc_simcore::time::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), elc_simcore::dist::DistError> {
//! struct World {
//!     arrivals: Counter,
//!     inter: Exp,
//!     rng: elc_simcore::SimRng,
//! }
//!
//! fn arrive(sim: &mut Simulation<World>) {
//!     sim.state_mut().arrivals.incr();
//!     let gap = {
//!         let w = sim.state_mut();
//!         let inter = w.inter;
//!         inter.sample(&mut w.rng)
//!     };
//!     if sim.now() < SimTime::from_secs(60) {
//!         sim.schedule_in(SimDuration::from_secs_f64(gap), arrive);
//!     }
//! }
//!
//! let mut sim = Simulation::new(42, World {
//!     arrivals: Counter::new(),
//!     inter: Exp::new(1.0)?,
//!     rng: elc_simcore::SimRng::seed(42).derive("arrivals"),
//! });
//! sim.schedule_in(SimDuration::ZERO, arrive);
//! sim.run();
//! assert!(sim.state().arrivals.value() > 0);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)] // `event` opts in locally for the inline-payload buffer
#![warn(missing_docs)]

pub mod baseline;
pub mod dist;
pub mod event;
pub mod id;
pub mod metrics;
pub mod queue;
pub mod queueing;
pub mod rng;
pub mod series;
pub mod shard;
pub mod sim;
pub mod time;

pub use dist::Distribution;
pub use rng::SimRng;
pub use sim::Simulation;
pub use time::{SimDuration, SimTime};
