//! The simulation executive.
//!
//! [`Simulation<S>`] owns the model state `S`, the virtual clock, the
//! pending-event set (a slab-backed arena, see [`crate::queue`]) and the
//! root RNG. Events are `FnOnce` closures that receive
//! `&mut Simulation<S>`, so a handler can read the clock, mutate state, draw
//! randomness and schedule further events. Handlers are stored **inline**
//! in the arena slot whenever they fit [`crate::event::INLINE_EVENT_BYTES`]
//! (the small-closure optimization in [`crate::event`]); only oversized
//! captures spill to a heap allocation, and both cases are counted per run
//! ([`RunStats::inline_scheduled`] / [`RunStats::spilled_scheduled`]), so
//! with the arena reusing its slots the steady-state event loop performs
//! zero allocations per event — pinned by `tests/zero_alloc.rs`.
//!
//! One executive is single-threaded by design: determinism is a hard
//! requirement (see DESIGN.md §4) and a single shard's event loop stays an
//! ordinary sequential pop-execute cycle. Parallelism lives one layer up:
//! [`crate::shard`] partitions a scenario's sites over several executives
//! and synchronizes them with a conservative time-window protocol, keeping
//! output byte-identical at any shard count. The window hooks on this type
//! ([`Simulation::next_event_time`], [`Simulation::step_before`],
//! [`Simulation::advance_to`]) exist for that executor.

use std::fmt;

use elc_trace::{Field, Level};

use crate::event::EventFn;
use crate::queue::{EventId, EventQueue};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Trace target for kernel events.
const TRACE_TARGET: &str = "simcore";

/// Queue-depth sample cadence (in executed events) when tracing at debug.
/// Power of two so the hot-path modulo folds to a mask.
const QUEUE_SAMPLE_EVERY: u64 = 1024;

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of events executed.
    pub executed: u64,
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// Events still pending when the run stopped (nonzero when a horizon cut
    /// the run short).
    pub pending: usize,
    /// Events whose handler was stored inline in the arena slot (no heap
    /// allocation on schedule).
    pub inline_scheduled: u64,
    /// Events whose handler exceeded the inline payload buffer and spilled
    /// to a heap allocation. A nonzero steady-state value here is a perf
    /// regression in whichever model grew its captures.
    pub spilled_scheduled: u64,
}

/// Handle on a scheduled deadline event, from
/// [`Simulation::schedule_deadline`]. Disarm it when the guarded work
/// finishes in time; otherwise the handler fires and the handle goes
/// stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    id: EventId,
}

impl Deadline {
    /// The underlying event id.
    #[must_use]
    pub fn id(&self) -> EventId {
        self.id
    }

    /// True if the deadline has neither fired nor been disarmed.
    #[must_use]
    pub fn is_armed<S>(&self, sim: &Simulation<S>) -> bool {
        sim.is_pending(self.id)
    }

    /// Disarms the deadline: the handler will not fire. Returns `true` if
    /// it was still armed, `false` if it already fired (the guarded work
    /// was too late) or was disarmed before.
    pub fn disarm<S>(self, sim: &mut Simulation<S>) -> bool {
        sim.cancel(self.id)
    }
}

/// A discrete-event simulation over model state `S`.
///
/// # Examples
///
/// Count arrivals over ten seconds of virtual time:
///
/// ```
/// use elc_simcore::sim::Simulation;
/// use elc_simcore::time::{SimDuration, SimTime};
///
/// #[derive(Default)]
/// struct Counter {
///     arrivals: u32,
/// }
///
/// fn arrive(sim: &mut Simulation<Counter>) {
///     sim.state_mut().arrivals += 1;
///     if sim.now() < SimTime::from_secs(10) {
///         sim.schedule_in(SimDuration::from_secs(1), arrive);
///     }
/// }
///
/// let mut sim = Simulation::new(7, Counter::default());
/// sim.schedule_in(SimDuration::from_secs(1), arrive);
/// sim.run();
/// assert_eq!(sim.state().arrivals, 10);
/// ```
pub struct Simulation<S> {
    now: SimTime,
    queue: EventQueue<EventFn<S>>,
    state: S,
    rng: SimRng,
    executed: u64,
    inline_scheduled: u64,
    spilled_scheduled: u64,
}

impl<S> Simulation<S> {
    /// Creates a simulation at time zero with the given seed and state.
    pub fn new(seed: u64, state: S) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            state,
            rng: SimRng::seed(seed),
            executed: 0,
            inline_scheduled: 0,
            spilled_scheduled: 0,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the model state.
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the model state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// The root random stream.
    ///
    /// Prefer [`Simulation::derive_rng`] for per-entity streams so draws stay
    /// independent as models grow.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Derives an independent random stream for a named subsystem.
    #[must_use]
    pub fn derive_rng(&self, label: &str) -> SimRng {
        self.rng.derive(label)
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events scheduled so far whose handler was stored inline (no heap
    /// allocation).
    #[must_use]
    pub fn inline_scheduled(&self) -> u64 {
        self.inline_scheduled
    }

    /// Events scheduled so far whose handler spilled to a `Box`.
    #[must_use]
    pub fn spilled_scheduled(&self) -> u64 {
        self.spilled_scheduled
    }

    /// Wraps `handler` for the arena, bumping the inline/spilled counter.
    /// Which counter is a property of the closure *type*, so the branch
    /// folds away at monomorphization time.
    #[inline]
    fn wrap<F>(&mut self, handler: F) -> EventFn<S>
    where
        F: FnOnce(&mut Simulation<S>) + Send + 'static,
    {
        if const { EventFn::<S>::stores_inline::<F>() } {
            self.inline_scheduled += 1;
        } else {
            self.spilled_scheduled += 1;
        }
        EventFn::new(handler)
    }

    /// Schedules `handler` to run after `delay`.
    #[inline]
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Simulation<S>) + Send + 'static,
    ) -> EventId {
        let ev = self.wrap(handler);
        self.queue.push(self.now + delay, ev)
    }

    /// Schedules `handler` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — scheduling into the past would make
    /// the clock non-monotonic.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        handler: impl FnOnce(&mut Simulation<S>) + Send + 'static,
    ) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        let ev = self.wrap(handler);
        self.queue.push(time, ev)
    }

    /// Schedules one run of `handler` at each offset in `offsets`, relative
    /// to the current clock.
    ///
    /// The batch entry point for bursty arrival models (e.g.
    /// `elc-elearn`'s workload sampling a whole slot of Poisson arrivals at
    /// once): the pending-event set reserves space for the entire batch up
    /// front, and with a `handler` at or under the inline payload threshold
    /// the per-event clone is allocation-free. Events fire in offset order;
    /// equal offsets keep the slice's FIFO order.
    pub fn schedule_batch<F>(&mut self, offsets: &[SimDuration], handler: F)
    where
        F: Fn(&mut Simulation<S>) + Clone + Send + 'static,
    {
        // Inline-vs-spill is a property of `F`, so one check covers the
        // whole batch.
        let n = offsets.len() as u64;
        if EventFn::<S>::stores_inline::<F>() {
            self.inline_scheduled += n;
        } else {
            self.spilled_scheduled += n;
        }
        let now = self.now;
        self.queue.push_batch(
            offsets
                .iter()
                .map(|&delay| (now + delay, EventFn::new(handler.clone()))),
        );
    }

    /// Schedules `handler` to run every `interval`, starting after `start`.
    ///
    /// The handler returns `true` to keep ticking or `false` to stop.
    pub fn schedule_every(
        &mut self,
        start: SimDuration,
        interval: SimDuration,
        handler: impl FnMut(&mut Simulation<S>) -> bool + Send + 'static,
    ) -> EventId {
        fn tick<S, F>(sim: &mut Simulation<S>, mut f: F, interval: SimDuration)
        where
            F: FnMut(&mut Simulation<S>) -> bool + Send + 'static,
        {
            if f(sim) {
                sim.schedule_in(interval, move |sim| tick(sim, f, interval));
            }
        }
        let f = handler;
        self.schedule_in(start, move |sim| tick(sim, f, interval))
    }

    /// Schedules `handler` as a *deadline*: it fires after `after` unless
    /// the returned [`Deadline`] is disarmed first. Sugar over
    /// [`Simulation::schedule_in`]/[`Simulation::cancel`] for the
    /// timeout-then-maybe-cancel shape resilience policies use — the
    /// deadline lives in the same arena as every other event, so nothing
    /// new touches the pop spine.
    pub fn schedule_deadline(
        &mut self,
        after: SimDuration,
        handler: impl FnOnce(&mut Simulation<S>) + Send + 'static,
    ) -> Deadline {
        Deadline {
            id: self.schedule_in(after, handler),
        }
    }

    /// True if the event behind `id` has neither fired nor been cancelled.
    #[must_use]
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.contains(id)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.queue.cancel(id);
        if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
            elc_trace::instant(
                self.now.as_nanos(),
                TRACE_TARGET,
                "event.cancel",
                Level::Debug,
                &[
                    Field::bool("hit", hit),
                    Field::u64("pending", self.queue.len() as u64),
                ],
            );
        }
        hit
    }

    /// Executes the next pending event, if any. Returns `false` when the
    /// queue is empty.
    #[inline]
    pub fn step(&mut self) -> bool {
        // Read the trace gate (a thread-local byte load + compare) *before*
        // taking the payload out of the arena, and keep the whole traced
        // variant out of line: on the untraced path there is then no call
        // site between the pop and the handler dispatch, so the popped
        // `EventFn` never needs to survive an unwind edge and the compiler
        // moves it slot → stack → call in a single copy.
        if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
            return self.step_traced();
        }
        match self.queue.pop() {
            Some((time, handler)) => {
                debug_assert!(time >= self.now, "event queue returned a past event");
                self.now = time;
                self.executed += 1;
                handler.call(self);
                true
            }
            None => false,
        }
    }

    /// [`Simulation::step`] with kernel-event emission; only reached when a
    /// tracer whose filter passes `Level::Debug` is installed.
    #[cold]
    fn step_traced(&mut self) -> bool {
        match self.queue.pop() {
            Some((time, handler)) => {
                debug_assert!(time >= self.now, "event queue returned a past event");
                self.now = time;
                self.executed += 1;
                self.trace_step(time);
                handler.call(self);
                true
            }
            None => false,
        }
    }

    /// Kernel-event emission, out of line to keep `step` lean.
    #[cold]
    fn trace_step(&self, time: SimTime) {
        if self.executed.is_multiple_of(QUEUE_SAMPLE_EVERY) {
            elc_trace::instant(
                time.as_nanos(),
                TRACE_TARGET,
                "queue.depth",
                Level::Debug,
                &[
                    Field::u64("executed", self.executed),
                    Field::u64("pending", self.queue.len() as u64),
                ],
            );
        }
        if elc_trace::enabled(TRACE_TARGET, Level::Trace) {
            elc_trace::instant(
                time.as_nanos(),
                TRACE_TARGET,
                "event.exec",
                Level::Trace,
                &[
                    Field::u64("seq", self.executed),
                    Field::u64("pending", self.queue.len() as u64),
                ],
            );
        }
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// The sharded executor's window scheduler reads this to pick the next
    /// global window start without popping anything.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Executes the next pending event if it fires strictly before
    /// `horizon`. Returns `false` — leaving the event pending — otherwise.
    ///
    /// The per-window drain step of the sharded executor: a conservative
    /// window `[t, t+L)` owns exactly the events below its end.
    #[inline]
    pub fn step_before(&mut self, horizon: SimTime) -> bool {
        if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
            return match self.queue.peek_time() {
                Some(t) if t < horizon => self.step_traced(),
                _ => false,
            };
        }
        match self.queue.pop_before(horizon) {
            Some((time, handler)) => {
                debug_assert!(time >= self.now, "event queue returned a past event");
                self.now = time;
                self.executed += 1;
                handler.call(self);
                true
            }
            None => false,
        }
    }

    /// Advances the clock to `t` without executing anything.
    ///
    /// Used by the sharded executor to position the clock at a cross-shard
    /// delivery's arrival instant before applying it, so handlers the
    /// delivery schedules see the correct `now`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or beyond the next pending event —
    /// jumping over a pending event would execute it at a later clock than
    /// its timestamp.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot advance the clock backwards: now={}, requested={}",
            self.now,
            t
        );
        if let Some(next) = self.queue.peek_time() {
            assert!(
                t <= next,
                "cannot advance past a pending event at {next}: requested={t}"
            );
        }
        self.now = t;
    }

    /// Runs until no events remain.
    pub fn run(&mut self) -> RunStats {
        while self.step() {}
        self.stats()
    }

    /// Runs until the clock would pass `horizon` or no events remain.
    ///
    /// Events scheduled exactly at `horizon` are executed; later events stay
    /// pending and the clock is advanced to `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.stats()
    }

    /// Runs for `span` of virtual time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunStats {
        let horizon = self.now + span;
        self.run_until(horizon)
    }

    /// Consumes the simulation and returns the final model state.
    #[must_use]
    pub fn into_state(self) -> S {
        self.state
    }

    fn stats(&self) -> RunStats {
        if elc_trace::enabled(TRACE_TARGET, Level::Info) {
            elc_trace::instant(
                self.now.as_nanos(),
                TRACE_TARGET,
                "run.complete",
                Level::Info,
                &[
                    Field::u64("executed", self.executed),
                    Field::u64("pending", self.queue.len() as u64),
                    Field::u64("inline", self.inline_scheduled),
                    Field::u64("spilled", self.spilled_scheduled),
                ],
            );
        }
        RunStats {
            executed: self.executed,
            end_time: self.now,
            pending: self.queue.len(),
            inline_scheduled: self.inline_scheduled,
            spilled_scheduled: self.spilled_scheduled,
        }
    }
}

impl<S: fmt::Debug> fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("executed", &self.executed)
            .field("pending", &self.queue.len())
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_order_and_advance_clock() {
        let mut sim = Simulation::new(1, Vec::<(u64, &str)>::new());
        sim.schedule_in(SimDuration::from_secs(2), |s| {
            let t = s.now().as_nanos();
            s.state_mut().push((t, "b"));
        });
        sim.schedule_in(SimDuration::from_secs(1), |s| {
            let t = s.now().as_nanos();
            s.state_mut().push((t, "a"));
        });
        let stats = sim.run();
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.end_time, SimTime::from_secs(2));
        assert_eq!(
            *sim.state(),
            vec![
                (SimDuration::from_secs(1).as_nanos(), "a"),
                (SimDuration::from_secs(2).as_nanos(), "b"),
            ]
        );
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Simulation::new(1, 0u32);
        fn chain(sim: &mut Simulation<u32>) {
            *sim.state_mut() += 1;
            if *sim.state() < 5 {
                sim.schedule_in(SimDuration::from_secs(1), chain);
            }
        }
        sim.schedule_in(SimDuration::from_secs(1), chain);
        sim.run();
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn step_before_stops_at_the_exclusive_horizon() {
        let mut sim = Simulation::new(1, 0u32);
        for i in 1..=4 {
            sim.schedule_at(SimTime::from_secs(i), |s| *s.state_mut() += 1);
        }
        while sim.step_before(SimTime::from_secs(3)) {}
        assert_eq!(*sim.state(), 2, "events at or past the horizon stay put");
        assert_eq!(sim.pending(), 2);
        assert_eq!(
            sim.now(),
            SimTime::from_secs(2),
            "clock stops at the last executed event"
        );
        while sim.step_before(SimTime::from_secs(100)) {}
        assert_eq!(*sim.state(), 4);
    }

    #[test]
    fn advance_to_moves_the_clock_between_events() {
        let mut sim = Simulation::new(1, ());
        sim.schedule_at(SimTime::from_secs(10), |_| {});
        sim.advance_to(SimTime::from_secs(4));
        assert_eq!(sim.now(), SimTime::from_secs(4));
        // Idempotent at the same instant.
        sim.advance_to(SimTime::from_secs(4));
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(10)));
    }

    #[test]
    #[should_panic(expected = "cannot advance past a pending event")]
    fn advance_to_rejects_jumping_over_events() {
        let mut sim = Simulation::new(1, ());
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        sim.advance_to(SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "cannot advance the clock backwards")]
    fn advance_to_rejects_the_past() {
        let mut sim = Simulation::new(1, ());
        sim.run_until(SimTime::from_secs(9));
        sim.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(1, 0u32);
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_secs(i), |s| *s.state_mut() += 1);
        }
        let stats = sim.run_until(SimTime::from_secs(4));
        assert_eq!(*sim.state(), 4);
        assert_eq!(stats.pending, 6);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        // Resume to completion.
        sim.run();
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn run_until_includes_horizon_instant() {
        let mut sim = Simulation::new(1, false);
        sim.schedule_at(SimTime::from_secs(5), |s| *s.state_mut() = true);
        sim.run_until(SimTime::from_secs(5));
        assert!(*sim.state());
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim = Simulation::new(1, ());
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulation::new(1, ());
        sim.run_for(SimDuration::from_secs(10));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn schedule_at_past_panics() {
        let mut sim = Simulation::new(1, ());
        sim.schedule_at(SimTime::from_secs(5), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulation::new(1, 0u32);
        let id = sim.schedule_in(SimDuration::from_secs(1), |s| *s.state_mut() += 1);
        sim.schedule_in(SimDuration::from_secs(2), |s| *s.state_mut() += 10);
        assert!(sim.cancel(id));
        sim.run();
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn is_pending_tracks_fire_and_cancel() {
        let mut sim = Simulation::new(1, 0u32);
        let id = sim.schedule_in(SimDuration::from_secs(1), |s| *s.state_mut() += 1);
        assert!(sim.is_pending(id));
        sim.run();
        assert!(!sim.is_pending(id), "fired events are no longer pending");
        let id2 = sim.schedule_in(SimDuration::from_secs(1), |_| {});
        assert!(sim.cancel(id2));
        assert!(!sim.is_pending(id2));
        assert!(!sim.is_pending(id), "stale id stays stale after slot reuse");
    }

    #[test]
    fn deadline_fires_unless_disarmed() {
        let mut sim = Simulation::new(1, 0u32);
        // This deadline is disarmed in time: no penalty.
        let d = sim.schedule_deadline(SimDuration::from_secs(5), |s| *s.state_mut() += 100);
        sim.schedule_in(SimDuration::from_secs(2), move |s| {
            assert!(d.is_armed(s));
            assert!(d.disarm(s));
        });
        // This one is not: the handler runs at t=8.
        sim.schedule_deadline(SimDuration::from_secs(8), |s| *s.state_mut() += 1);
        sim.run();
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(8));
    }

    #[test]
    fn disarming_a_fired_deadline_reports_false() {
        let mut sim = Simulation::new(1, 0u32);
        let d = sim.schedule_deadline(SimDuration::from_secs(1), |s| *s.state_mut() += 1);
        sim.run();
        assert!(!d.disarm(&mut sim));
        assert_eq!(*sim.state(), 1);
    }

    #[test]
    fn schedule_batch_fires_in_offset_order() {
        let mut sim = Simulation::new(1, Vec::<u64>::new());
        sim.run_for(SimDuration::from_secs(100)); // batch offsets are relative to "now"
        let offsets = [
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
        ];
        sim.schedule_batch(&offsets, |s| {
            let t = s.now().as_nanos() / 1_000_000_000;
            s.state_mut().push(t);
        });
        assert_eq!(sim.pending(), 3);
        sim.run();
        assert_eq!(*sim.state(), vec![101, 102, 103]);
    }

    #[test]
    fn schedule_every_ticks_until_stopped() {
        let mut sim = Simulation::new(1, 0u32);
        sim.schedule_every(SimDuration::from_secs(1), SimDuration::from_secs(2), |s| {
            *s.state_mut() += 1;
            *s.state() < 4
        });
        sim.run();
        assert_eq!(*sim.state(), 4);
        // Ticks at t = 1, 3, 5, 7.
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn deterministic_given_seed() {
        fn run_once(seed: u64) -> Vec<u64> {
            let mut sim = Simulation::new(seed, Vec::new());
            sim.schedule_every(SimDuration::from_secs(1), SimDuration::from_secs(1), |s| {
                let x = s.rng().next_u64();
                s.state_mut().push(x);
                s.state().len() < 20
            });
            sim.run();
            sim.into_state()
        }
        assert_eq!(run_once(99), run_once(99));
        assert_ne!(run_once(99), run_once(100));
    }

    #[test]
    fn derive_rng_does_not_disturb_root() {
        let mut a = Simulation::new(5, ());
        let mut b = Simulation::new(5, ());
        let _side = a.derive_rng("side-channel");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn stats_report_counts() {
        let mut sim = Simulation::new(1, ());
        sim.schedule_in(SimDuration::from_secs(1), |_| {});
        sim.schedule_in(SimDuration::from_secs(9), |_| {});
        let stats = sim.run_until(SimTime::from_secs(5));
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.pending, 1);
    }

    #[test]
    fn stats_count_inline_and_spilled_payloads() {
        use crate::event::INLINE_EVENT_BYTES;
        let mut sim = Simulation::new(1, 0u64);
        // Small capture: inline.
        let x = 7u64;
        sim.schedule_in(SimDuration::from_secs(1), move |s| *s.state_mut() += x);
        // Oversized capture: spills.
        let big = [0u8; INLINE_EVENT_BYTES + 1];
        sim.schedule_in(SimDuration::from_secs(2), move |s| {
            *s.state_mut() += u64::from(big[0]);
        });
        // Batch of ZST handlers: inline, counted once per offset.
        let offsets = [SimDuration::from_secs(3), SimDuration::from_secs(4)];
        sim.schedule_batch(&offsets, |s| *s.state_mut() += 1);
        assert_eq!(sim.inline_scheduled(), 3);
        assert_eq!(sim.spilled_scheduled(), 1);
        let stats = sim.run();
        assert_eq!(stats.inline_scheduled, 3);
        assert_eq!(stats.spilled_scheduled, 1);
        assert_eq!(*sim.state(), 9);
    }

    #[test]
    fn model_style_handlers_never_spill() {
        // The shapes the model crates schedule: fn items, capture-less
        // closures, and `schedule_every` ticks over small user closures.
        // If any of these spill, the allocation-free claim is gone.
        let mut sim = Simulation::new(1, 0u32);
        fn item(s: &mut Simulation<u32>) {
            *s.state_mut() += 1;
        }
        sim.schedule_in(SimDuration::from_secs(1), item);
        sim.schedule_every(SimDuration::from_secs(2), SimDuration::from_secs(1), |s| {
            *s.state_mut() += 1;
            *s.state() < 5
        });
        sim.run();
        assert_eq!(
            sim.spilled_scheduled(),
            0,
            "model event mix must stay inline"
        );
        assert_eq!(sim.inline_scheduled(), sim.executed());
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut sim = Simulation::new(1, String::new());
        sim.schedule_in(SimDuration::from_secs(1), |s| {
            s.state_mut().push_str("done");
        });
        sim.run();
        assert_eq!(sim.into_state(), "done");
    }

    #[test]
    fn debug_impl_renders() {
        let sim = Simulation::new(1, 42u32);
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("Simulation") && dbg.contains("42"));
    }

    #[test]
    fn tracing_captures_kernel_events() {
        use elc_trace::{TraceFilter, Tracer};
        let (result, tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Trace)), || {
                let mut sim = Simulation::new(1, 0u32);
                let id = sim.schedule_in(SimDuration::from_secs(1), |_| {});
                sim.schedule_in(SimDuration::from_secs(2), |s| *s.state_mut() += 1);
                sim.cancel(id);
                sim.run();
                *sim.state()
            });
        assert_eq!(result, 1);
        let names: Vec<&str> = tracer.events().map(|e| tracer.resolve(e.name)).collect();
        assert!(names.contains(&"event.cancel"));
        assert!(names.contains(&"event.exec"));
        assert!(names.contains(&"run.complete"));
        // Kernel events stamp sim time, not wall time.
        let exec = tracer
            .events()
            .find(|e| tracer.resolve(e.name) == "event.exec")
            .unwrap();
        assert_eq!(exec.time_ns, SimTime::from_secs(2).as_nanos());
    }

    #[test]
    fn tracing_disabled_leaves_run_unchanged() {
        // No tracer installed: the instrumented path must not observe one.
        assert!(!elc_trace::installed());
        let mut sim = Simulation::new(1, 0u32);
        sim.schedule_in(SimDuration::from_secs(1), |s| *s.state_mut() += 1);
        let stats = sim.run();
        assert_eq!(stats.executed, 1);
    }
}
