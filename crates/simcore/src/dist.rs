//! Probability distributions over the kernel RNG.
//!
//! Workload generators and failure models draw inter-arrival times, service
//! times and sizes from these distributions. All of them are pure value
//! types; sampling takes `&mut SimRng` so a distribution can be shared.
//!
//! Construction validates parameters eagerly ([`DistError`]) so that a typo'd
//! configuration fails at build time rather than producing NaNs mid-run.

use std::error::Error;
use std::fmt;

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Error returned when distribution parameters are invalid.
#[derive(Debug, Clone, PartialEq)]
pub struct DistError {
    what: String,
}

impl DistError {
    fn new(what: impl Into<String>) -> Self {
        DistError { what: what.into() }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl Error for DistError {}

/// A distribution producing values of type `T`.
///
/// # Examples
///
/// ```
/// use elc_simcore::dist::{Distribution, Exp};
/// use elc_simcore::rng::SimRng;
///
/// # fn main() -> Result<(), elc_simcore::dist::DistError> {
/// let arrivals = Exp::new(2.0)?; // rate 2 per unit time
/// let mut rng = SimRng::seed(1);
/// let gap = arrivals.sample(&mut rng);
/// assert!(gap >= 0.0);
/// # Ok(())
/// # }
/// ```
pub trait Distribution<T> {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> T;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bounds are not finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(DistError::new("uniform bounds must be finite"));
        }
        if lo > hi {
            return Err(DistError::new(format!("uniform lo {lo} > hi {hi}")));
        }
        Ok(Uniform { lo, hi })
    }
}

impl Distribution<f64> for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns an error unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DistError::new(format!("exp rate must be > 0, got {rate}")));
        }
        Ok(Exp { rate })
    }

    /// The configured rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution<f64> for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.rate
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `std_dev` is finite and non-negative and
    /// `mean` is finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() {
            return Err(DistError::new("normal mean must be finite"));
        }
        if !(std_dev.is_finite() && std_dev >= 0.0) {
            return Err(DistError::new(format!(
                "normal std dev must be >= 0, got {std_dev}"
            )));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box–Muller transform (stateless variant: we use one of the pair).
        let u1 = 1.0 - rng.next_f64(); // (0, 1]
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
///
/// Heavy-tailed sizes (content uploads, page weights) use this shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with the given log-space parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying normal parameters are invalid.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(LogNormal {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal with a target *linear-space* mean and a
    /// multiplicative spread `sigma` (log-space standard deviation).
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean > 0` and `sigma >= 0`.
    pub fn with_mean(mean: f64, sigma: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::new(format!(
                "log-normal mean must be > 0, got {mean}"
            )));
        }
        let mu = mean.ln() - sigma * sigma / 2.0;
        LogNormal::new(mu, sigma)
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Pareto distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, DistError> {
        if !(x_min.is_finite() && x_min > 0.0) {
            return Err(DistError::new("pareto x_min must be > 0"));
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DistError::new("pareto alpha must be > 0"));
        }
        Ok(Pareto { x_min, alpha })
    }
}

impl Distribution<f64> for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.next_f64(); // (0, 1]
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `p` is within `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::new(format!("bernoulli p out of [0,1]: {p}")));
        }
        Ok(Bernoulli { p })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }
}

/// Poisson distribution with mean `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lambda` is finite and non-negative.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(DistError::new(format!(
                "poisson lambda must be >= 0, got {lambda}"
            )));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<u64> for Poisson {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction — adequate for
            // the workload-intensity use cases in this project.
            let n = Normal::new(self.lambda, self.lambda.sqrt())
                .expect("lambda validated at construction");
            n.sample(rng).round().max(0.0) as u64
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Models popularity skew: a few courses/assets receive most accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `n >= 1` and `s` is finite and non-negative.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::new("zipf needs at least one rank"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(DistError::new(format!("zipf exponent must be >= 0: {s}")));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is exactly one rank (degenerate).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // A Zipf always has >= 1 rank; kept for API symmetry with len().
        false
    }
}

impl Distribution<usize> for Zipf {
    /// Samples a 0-based rank (0 is the most popular).
    fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Discrete distribution over arbitrary items with given weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Weighted<T> {
    items: Vec<T>,
    cdf: Vec<f64>,
}

impl<T> Weighted<T> {
    /// Creates a weighted distribution from `(item, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(pairs: impl IntoIterator<Item = (T, f64)>) -> Result<Self, DistError> {
        let mut items = Vec::new();
        let mut cdf = Vec::new();
        let mut acc = 0.0;
        for (item, w) in pairs {
            if !(w.is_finite() && w >= 0.0) {
                return Err(DistError::new(format!("weight must be >= 0, got {w}")));
            }
            acc += w;
            items.push(item);
            cdf.push(acc);
        }
        if items.is_empty() {
            return Err(DistError::new("weighted distribution needs items"));
        }
        if acc <= 0.0 {
            return Err(DistError::new("weights sum to zero"));
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Ok(Weighted { items, cdf })
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if there are no items (cannot occur after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Draws the index of a weighted item without touching the item itself.
    ///
    /// This is the clone-free primitive behind [`Distribution::sample`]; use
    /// it (or [`Weighted::sample_ref`]) on the hot path when the item is
    /// `Copy` or cheap to dereference.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.items.len() - 1),
        }
    }

    /// Draws a weighted item by reference, without cloning.
    pub fn sample_ref(&self, rng: &mut SimRng) -> &T {
        &self.items[self.sample_index(rng)]
    }
}

impl<T: Clone> Distribution<T> for Weighted<T> {
    fn sample(&self, rng: &mut SimRng) -> T {
        self.items[self.sample_index(rng)].clone()
    }
}

/// Extension helpers for sampling durations from scalar distributions.
pub trait DurationSample {
    /// Draws a duration by interpreting the sampled scalar as seconds,
    /// clamping negatives to zero.
    fn sample_secs(&self, rng: &mut SimRng) -> SimDuration;
}

impl<D: Distribution<f64>> DurationSample for D {
    fn sample_secs(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl Distribution<f64>, rng: &mut SimRng, n: usize) -> f64 {
        (0..n).map(|_| d.sample(rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = SimRng::seed(1);
        let d = Uniform::new(2.0, 6.0).unwrap();
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let m = mean_of(&d, &mut rng, 50_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(Uniform::new(5.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SimRng::seed(2);
        let d = Exp::new(4.0).unwrap();
        let m = mean_of(&d, &mut rng, 100_000);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn exp_rejects_bad_rate() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed(3);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = SimRng::seed(4);
        let d = Normal::new(3.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let mut rng = SimRng::seed(5);
        let d = LogNormal::with_mean(100.0, 0.5).unwrap();
        let m = mean_of(&d, &mut rng, 200_000);
        assert!((m - 100.0).abs() / 100.0 < 0.03, "mean {m}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::seed(6);
        let d = LogNormal::new(0.0, 2.0).unwrap();
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed(7);
        let d = Pareto::new(3.0, 2.5).unwrap();
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn pareto_mean_for_alpha_gt_one() {
        // mean = alpha * x_min / (alpha - 1) = 2.5 * 3 / 1.5 = 5
        let mut rng = SimRng::seed(8);
        let d = Pareto::new(3.0, 2.5).unwrap();
        let m = mean_of(&d, &mut rng, 300_000);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::seed(9);
        let d = Bernoulli::new(0.7).unwrap();
        let hits = (0..100_000).filter(|_| d.sample(&mut rng)).count();
        assert!((hits as f64 / 100_000.0 - 0.7).abs() < 0.01);
    }

    #[test]
    fn bernoulli_rejects_bad_p() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = SimRng::seed(10);
        let d = Poisson::new(3.5).unwrap();
        let n = 100_000;
        let m = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((m - 3.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = SimRng::seed(11);
        let d = Poisson::new(200.0).unwrap();
        let n = 50_000;
        let m = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((m - 200.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = SimRng::seed(12);
        let d = Poisson::new(0.0).unwrap();
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let mut rng = SimRng::seed(13);
        let d = Zipf::new(100, 1.0).unwrap();
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[99]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = SimRng::seed(14);
        let d = Zipf::new(4, 0.0).unwrap();
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn zipf_rejects_zero_ranks() {
        assert!(Zipf::new(0, 1.0).is_err());
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = SimRng::seed(15);
        let d = Weighted::new([("a", 3.0), ("b", 1.0)]).unwrap();
        let hits_a = (0..40_000).filter(|_| d.sample(&mut rng) == "a").count();
        let freq = hits_a as f64 / 40_000.0;
        assert!((freq - 0.75).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn weighted_zero_weight_item_never_drawn() {
        let mut rng = SimRng::seed(16);
        let d = Weighted::new([("never", 0.0), ("always", 1.0)]).unwrap();
        for _ in 0..1_000 {
            assert_eq!(d.sample(&mut rng), "always");
        }
    }

    #[test]
    fn weighted_sample_ref_matches_sample() {
        // The clone-free path consumes the same randomness and picks the
        // same item as the cloning `Distribution::sample`.
        let d = Weighted::new([("a", 3.0), ("b", 1.0), ("c", 2.0)]).unwrap();
        let mut by_clone = SimRng::seed(18);
        let mut by_ref = SimRng::seed(18);
        for _ in 0..1_000 {
            let cloned: &str = d.sample(&mut by_clone);
            assert_eq!(*d.sample_ref(&mut by_ref), cloned);
        }
    }

    #[test]
    fn weighted_works_without_clone() {
        // `sample_index`/`sample_ref` are available for non-`Clone` items.
        struct NotClone(u8);
        let d = Weighted::new([(NotClone(1), 1.0), (NotClone(2), 1.0)]).unwrap();
        let mut rng = SimRng::seed(19);
        assert_eq!(d.len(), 2);
        let i = d.sample_index(&mut rng);
        assert!(i < 2);
        assert!(matches!(d.sample_ref(&mut rng), NotClone(1 | 2)));
    }

    #[test]
    fn weighted_rejects_degenerate() {
        assert!(Weighted::<&str>::new([]).is_err());
        assert!(Weighted::new([("a", 0.0)]).is_err());
        assert!(Weighted::new([("a", -1.0)]).is_err());
    }

    #[test]
    fn duration_sampling_clamps_negative() {
        let mut rng = SimRng::seed(17);
        let d = Normal::new(-5.0, 0.1).unwrap();
        assert_eq!(d.sample_secs(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn dist_error_displays() {
        let err = Exp::new(0.0).unwrap_err();
        assert!(err.to_string().contains("invalid distribution parameter"));
    }
}
