//! Run-time measurement primitives.
//!
//! Models record what happens ([`Counter`], [`Summary`], [`Histogram`]) and
//! the analysis layer turns the recordings into tables. All primitives are
//! plain values — no globals, no interior mutability — so a model's metric
//! state is part of the simulation state and replays deterministically.

use std::fmt;

use crate::time::SimDuration;

/// A monotonically increasing event count.
///
/// # Examples
///
/// ```
/// use elc_simcore::metrics::Counter;
///
/// let mut served = Counter::new();
/// served.incr();
/// served.add(4);
/// assert_eq!(served.value(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online summary statistics (Welford's algorithm): count, mean, variance,
/// min, max — O(1) memory regardless of sample count.
///
/// # Examples
///
/// ```
/// use elc_simcore::metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — a NaN observation would silently poison every
    /// downstream statistic.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Records `n` identical observations of `x` in O(1) — the batch form
    /// used by fluid models where one tick stands for many requests.
    ///
    /// Equivalent to calling [`Summary::record`] `n` times (up to float
    /// round-off in the variance accumulator).
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record_n(&mut self, x: f64, n: u64) {
        assert!(!x.is_nan(), "cannot record NaN");
        if n == 0 {
            return;
        }
        // Merge with a virtual summary of n identical observations
        // (mean = x, m2 = 0), using the pairwise-merge update.
        let n1 = self.count as f64;
        let n2 = n as f64;
        let total = n1 + n2;
        let delta = x - self.mean;
        self.mean += delta * n2 / total;
        self.m2 += delta * delta * n1 * n2 / total;
        self.count += n;
        self.sum += x * n2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0.0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
                self.count,
                self.mean(),
                self.std_dev(),
                self.min,
                self.max
            )
        }
    }
}

/// Number of sub-buckets per power of two.
const SUBS: i32 = 16;
/// Smallest representable magnitude (2^MIN_EXP); values below land in the
/// zero bucket.
const MIN_EXP: i32 = -31; // ~4.7e-10: below one simulated nanosecond in secs
/// Largest representable magnitude exponent.
const MAX_EXP: i32 = 41; // ~2.2e12

/// A log-bucketed histogram of non-negative values with ~4% relative error
/// on quantiles.
///
/// The bucket layout is HDR-style: every power of two is split into
/// 16 geometric sub-buckets, covering ~5e-10 to ~2e12 — enough for
/// latencies in seconds and costs in currency units alike. Values outside
/// the range clamp to the end buckets (exact min/max are tracked
/// separately).
///
/// # Examples
///
/// ```
/// use elc_simcore::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    zero_count: u64,
    summary: Summary,
}

const BUCKET_COUNT: usize = ((MAX_EXP - MIN_EXP) * SUBS) as usize;

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKET_COUNT],
            zero_count: 0,
            summary: Summary::new(),
        }
    }

    /// Creates an empty histogram that reuses `buckets` as storage — the
    /// scratch-reuse constructor for replication loops. The vector is
    /// cleared and resized to the fixed bucket count; its capacity is
    /// retained, so round-tripping through [`Histogram::into_buckets`]
    /// makes back-to-back replications allocation-free.
    #[must_use]
    pub fn from_buckets(mut buckets: Vec<u64>) -> Self {
        buckets.clear();
        buckets.resize(BUCKET_COUNT, 0);
        Histogram {
            buckets,
            zero_count: 0,
            summary: Summary::new(),
        }
    }

    /// Consumes the histogram, returning its bucket storage for reuse via
    /// [`Histogram::from_buckets`].
    #[must_use]
    pub fn into_buckets(self) -> Vec<u64> {
        self.buckets
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or NaN.
    pub fn record(&mut self, x: f64) {
        assert!(
            x >= 0.0 && !x.is_nan(),
            "histogram values must be >= 0, got {x}"
        );
        self.summary.record(x);
        if x == 0.0 {
            self.zero_count += 1;
            return;
        }
        self.buckets[Self::index_of(x)] += 1;
    }

    /// Records a duration, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Records `n` identical observations of `x` in O(1) — the batch form
    /// used by fluid models where one tick stands for many requests.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or NaN.
    pub fn record_n(&mut self, x: f64, n: u64) {
        assert!(
            x >= 0.0 && !x.is_nan(),
            "histogram values must be >= 0, got {x}"
        );
        if n == 0 {
            return;
        }
        self.summary.record_n(x, n);
        if x == 0.0 {
            self.zero_count += n;
            return;
        }
        self.buckets[Self::index_of(x)] += n;
    }

    fn index_of(x: f64) -> usize {
        let idx = (x.log2() * SUBS as f64).floor() as i64 - (MIN_EXP * SUBS) as i64;
        idx.clamp(0, BUCKET_COUNT as i64 - 1) as usize
    }

    /// Geometric midpoint of bucket `i`.
    fn value_of(i: usize) -> f64 {
        let exp = (i as f64 + 0.5) / SUBS as f64 + MIN_EXP as f64;
        exp.exp2()
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Mean of observations (exact, not bucketed).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Exact minimum and maximum observed values.
    #[must_use]
    pub fn min_max(&self) -> Option<(f64, f64)> {
        Some((self.summary.min()?, self.summary.max()?))
    }

    /// The underlying exact summary statistics.
    #[must_use]
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate quantile `q` of the recorded values.
    ///
    /// Returns 0.0 when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        // Rank among all observations, 1-based; clamp to [1, n].
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank <= self.zero_count {
            return 0.0;
        }
        let mut seen = self.zero_count;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket midpoint by the exact extrema so that
                // small-sample quantiles never exceed the observed range.
                let (lo, hi) = self.min_max().expect("count > 0");
                return Self::value_of(i).clamp(lo, hi);
            }
        }
        self.min_max().map(|(_, hi)| hi).unwrap_or(0.0)
    }

    /// Approximate quantiles for several `q`s in **one bucket scan**.
    ///
    /// Returns one value per requested quantile, in the order given (the
    /// `qs` themselves may be in any order). Each result equals what
    /// [`Histogram::quantile`] returns for that `q`; use this where several
    /// quantiles of one histogram are read, since `quantile` re-scans all
    /// buckets per call.
    ///
    /// # Panics
    ///
    /// Panics unless every `q` is within `[0, 1]`.
    #[must_use]
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        for &q in qs {
            assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        }
        let n = self.count();
        let mut out = vec![0.0; qs.len()];
        if n == 0 {
            return out;
        }
        let (lo, hi) = self.min_max().expect("count > 0");
        // Visit the requested ranks in ascending order so one cumulative
        // sweep over the buckets answers all of them.
        let mut order: Vec<usize> = (0..qs.len()).collect();
        let rank_of = |q: f64| ((q * n as f64).ceil() as u64).clamp(1, n);
        order.sort_by_key(|&i| rank_of(qs[i]));
        let mut pending = order.into_iter().peekable();

        while let Some(&i) = pending.peek() {
            if rank_of(qs[i]) <= self.zero_count {
                // out[i] is already 0.0, matching `quantile`.
                pending.next();
            } else {
                break;
            }
        }
        let mut seen = self.zero_count;
        'buckets: for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            while let Some(&i) = pending.peek() {
                if seen >= rank_of(qs[i]) {
                    out[i] = Self::value_of(b).clamp(lo, hi);
                    pending.next();
                } else {
                    continue 'buckets;
                }
            }
            break;
        }
        // Ranks past the last bucket fall back to the exact maximum.
        for i in pending {
            out[i] = hi;
        }
        out
    }

    /// Convenience: the median.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Convenience: the 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.zero_count += other.zero_count;
        self.summary.merge(&other.summary);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() == 0 {
            write!(f, "empty histogram")
        } else {
            let qs = self.quantiles(&[0.50, 0.95, 0.99]);
            write!(
                f,
                "n={} mean={:.4} p50={:.4} p95={:.4} p99={:.4}",
                self.count(),
                self.mean(),
                qs[0],
                qs[1],
                qs[2]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_record_n_matches_repeated_record() {
        let mut batched = Summary::new();
        let mut looped = Summary::new();
        for (x, n) in [(2.0, 3u64), (5.0, 1), (0.5, 4), (9.0, 0)] {
            batched.record_n(x, n);
            for _ in 0..n {
                looped.record(x);
            }
        }
        assert_eq!(batched.count(), looped.count());
        assert!((batched.mean() - looped.mean()).abs() < 1e-12);
        assert!((batched.variance() - looped.variance()).abs() < 1e-12);
        assert_eq!(batched.min(), looped.min());
        assert_eq!(batched.max(), looped.max());
    }

    #[test]
    fn histogram_record_n_matches_repeated_record() {
        let mut batched = Histogram::new();
        let mut looped = Histogram::new();
        for (x, n) in [(0.0, 2u64), (0.12, 40), (1.7, 7), (3.0, 0)] {
            batched.record_n(x, n);
            for _ in 0..n {
                looped.record(x);
            }
        }
        assert_eq!(batched.count(), looped.count());
        assert_eq!(batched.p50(), looped.p50());
        assert_eq!(batched.p95(), looped.p95());
        assert_eq!(batched.min_max(), looped.min_max());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn summary_merge_matches_combined() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for x in [1.0, 5.0, 2.5] {
            a.record(x);
            all.record(x);
        }
        for x in [9.0, -3.0] {
            b.record(x);
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(2.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), 2.0);
    }

    #[test]
    fn histogram_quantiles_on_uniform() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q}: got {got}, want ~{expect}");
        }
    }

    #[test]
    fn histogram_quantiles_single_pass_matches_quantile() {
        // Mixed zeros, duplicates, wide dynamic range — and unordered qs.
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(0.0);
        }
        for i in 1..=1_000 {
            h.record(f64::from(i) * 0.25);
        }
        h.record(1e9);
        let qs = [0.99, 0.0, 0.5, 1.0, 0.95, 0.001];
        let batch = h.quantiles(&qs);
        for (&q, &got) in qs.iter().zip(&batch) {
            assert_eq!(got, h.quantile(q), "q={q}");
        }
        // Empty histogram: all zeros, like `quantile`.
        assert_eq!(Histogram::new().quantiles(&qs), vec![0.0; qs.len()]);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_quantiles_rejects_bad_q() {
        let _ = Histogram::new().quantiles(&[0.5, 1.5]);
    }

    #[test]
    fn histogram_zero_values() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(0.0);
        }
        h.record(100.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.to_string(), "empty histogram");
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(42.0);
        for q in [0.0, 0.5, 1.0] {
            let got = h.quantile(q);
            assert!((got - 42.0).abs() / 42.0 < 0.05, "q={q}: {got}");
        }
    }

    #[test]
    fn histogram_quantile_within_observed_range() {
        let mut h = Histogram::new();
        h.record(10.0);
        h.record(20.0);
        let p99 = h.quantile(0.99);
        assert!((10.0..=20.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn histogram_rejects_negative() {
        Histogram::new().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_rejects_bad_quantile() {
        let _ = Histogram::new().quantile(1.5);
    }

    #[test]
    fn histogram_extreme_values_clamp() {
        let mut h = Histogram::new();
        h.record(1e-15); // below range: clamps to lowest bucket
        h.record(1e15); // above range: clamps to highest bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= h.quantile(0.0));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=100 {
            a.record(i as f64);
        }
        for i in 101..=200 {
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p50 = a.quantile(0.5);
        assert!((p50 - 100.0).abs() / 100.0 < 0.08, "p50 {p50}");
    }

    #[test]
    fn histogram_duration_recording() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(250));
        assert!((h.mean() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn relative_error_bound_holds() {
        // Bucket width is 2^(1/16) ≈ 4.4% — check the quantile of a point
        // mass lands within that of the true value across magnitudes.
        for &v in &[0.001, 0.5, 3.0, 1e4, 1e9] {
            let mut h = Histogram::new();
            for _ in 0..100 {
                h.record(v);
            }
            let got = h.quantile(0.5);
            assert!((got - v).abs() / v < 0.05, "value {v}: got {got}");
        }
    }
}
