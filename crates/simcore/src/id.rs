//! Typed entity identifiers.
//!
//! Every simulated entity (host, VM, student, session, …) is addressed by a
//! small integer id. Wrapping the integer in a per-entity newtype prevents
//! accidentally indexing the VM table with a student id (C-NEWTYPE).
//!
//! The [`define_id!`](crate::define_id) macro generates the newtype plus the standard trait
//! surface; [`IdGen`] hands out fresh ids deterministically.

use std::marker::PhantomData;

/// Declares a newtype id with the standard trait surface.
///
/// The generated type wraps a `u64`, implements the common traits
/// (`Copy`, `Ord`, `Hash`, `Debug`, `Display`, …), exposes
/// `new(u64)`/`as_u64()`, and converts from/to `u64` via `From`.
///
/// # Examples
///
/// ```
/// elc_simcore::define_id!(
///     /// Identifies a widget.
///     pub struct WidgetId("widget")
/// );
///
/// let w = WidgetId::new(7);
/// assert_eq!(w.as_u64(), 7);
/// assert_eq!(w.to_string(), "widget-7");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* pub struct $name:ident($tag:literal)) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[must_use]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// The raw index as a `usize`, for table indexing.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}-{}", $tag, self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}-{}", $tag, self.0)
            }
        }
    };
}

/// A deterministic generator of sequential ids of type `T`.
///
/// # Examples
///
/// ```
/// use elc_simcore::id::IdGen;
///
/// elc_simcore::define_id!(pub struct NodeId("node"));
///
/// let mut gen: IdGen<NodeId> = IdGen::new();
/// assert_eq!(gen.next_id(), NodeId::new(0));
/// assert_eq!(gen.next_id(), NodeId::new(1));
/// assert_eq!(gen.issued(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IdGen<T> {
    next: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T: From<u64>> IdGen<T> {
    /// Creates a generator starting at id 0.
    #[must_use]
    pub fn new() -> Self {
        IdGen {
            next: 0,
            _marker: PhantomData,
        }
    }

    /// Issues the next id.
    pub fn next_id(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// How many ids have been issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next
    }
}

impl<T: From<u64>> Default for IdGen<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_id!(
        /// Test id.
        pub struct TestId("test")
    );
    define_id!(pub struct OtherId("other"));

    #[test]
    fn ids_are_sequential() {
        let mut gen: IdGen<TestId> = IdGen::new();
        let a = gen.next_id();
        let b = gen.next_id();
        assert_eq!(a, TestId::new(0));
        assert_eq!(b, TestId::new(1));
        assert!(a < b);
    }

    #[test]
    fn display_uses_tag() {
        assert_eq!(TestId::new(42).to_string(), "test-42");
        assert_eq!(format!("{:?}", OtherId::new(3)), "other-3");
    }

    #[test]
    fn conversions_round_trip() {
        let id = TestId::from(9);
        let raw: u64 = id.into();
        assert_eq!(raw, 9);
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // This is a compile-time property; we just confirm both exist side by
        // side with the same raw value and stay distinct types.
        let t = TestId::new(1);
        let o = OtherId::new(1);
        assert_eq!(t.as_u64(), o.as_u64());
    }

    #[test]
    fn default_generator_starts_at_zero() {
        let mut gen: IdGen<TestId> = IdGen::default();
        assert_eq!(gen.issued(), 0);
        let _ = gen.next_id();
        assert_eq!(gen.issued(), 1);
    }
}
