//! Simulated time.
//!
//! The kernel measures time in whole nanoseconds since the start of the
//! simulation. Using an integer representation keeps event ordering exact and
//! replayable across platforms — there is no floating-point drift between two
//! runs with the same seed.
//!
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span between two
//! instants. The two are distinct types so that adding two instants (a bug)
//! fails to compile, per the newtype guidance (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An absolute instant on the simulation clock.
///
/// `SimTime::ZERO` is the start of the simulation. Instants are totally
/// ordered and cheap to copy.
///
/// # Examples
///
/// ```
/// use elc_simcore::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(5);
/// assert_eq!(t.as_secs_f64(), 5.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, always non-negative.
///
/// # Examples
///
/// ```
/// use elc_simcore::time::SimDuration;
///
/// let d = SimDuration::from_millis(1_500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Nanoseconds since the simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation start, as a float (lossy for very large
    /// values; fine for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is later than `self`
    /// (saturating, never panics).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration of `mins` minutes.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration::from_secs(mins * 60)
    }

    /// Creates a duration of `hours` hours.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration::from_secs(hours * 3_600)
    }

    /// Creates a duration of `days` (24-hour) days.
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        SimDuration::from_secs(days * 86_400)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "duration of {secs} seconds overflows"
        );
        SimDuration(nanos.round() as u64)
    }

    /// The span in whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// The span in whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// The span in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span in fractional hours.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// True if the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, NaN, or the result overflows.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        let nanos = self.0 as f64 * factor;
        assert!(nanos <= u64::MAX as f64, "duration multiply overflows");
        SimDuration(nanos.round() as u64)
    }

    /// Ratio of this span to `other`, as a float.
    ///
    /// Returns 0.0 when `other` is zero.
    #[must_use]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.is_zero() {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

/// Renders a nanosecond count with a human-readable unit.
fn fmt_nanos(nanos: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if nanos == 0 {
        return write!(f, "0s");
    }
    if nanos < NANOS_PER_MICRO {
        write!(f, "{nanos}ns")
    } else if nanos < NANOS_PER_MILLI {
        write!(f, "{:.3}us", nanos as f64 / NANOS_PER_MICRO as f64)
    } else if nanos < NANOS_PER_SEC {
        write!(f, "{:.3}ms", nanos as f64 / NANOS_PER_MILLI as f64)
    } else if nanos < 3_600 * NANOS_PER_SEC {
        write!(f, "{:.3}s", nanos as f64 / NANOS_PER_SEC as f64)
    } else {
        write!(f, "{:.3}h", nanos as f64 / (3_600.0 * NANOS_PER_SEC as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500 * NANOS_PER_MILLI);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(8);
        assert_eq!(b - a, SimDuration::from_secs(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(8);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(5));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn mul_and_div() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn ratio_handles_zero() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_secs(4)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.000h");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }

    #[test]
    fn hours_as_f64() {
        assert!((SimDuration::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }
}
