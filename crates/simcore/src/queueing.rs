//! A multi-server FIFO queueing station.
//!
//! [`Station`] models an M/M/c-style service point in virtual time: jobs
//! arrive, wait in FIFO order for one of `c` servers, are served for a
//! sampled duration, and leave. The station is *clock-driven by its
//! caller* — it exposes `arrive` and `advance_to` so it composes with the
//! event executive or with slot-based loops alike — and records waiting
//! time, sojourn time and queue-length statistics.
//!
//! The elasticity experiments use it to turn "requests vs capacity" into
//! principled latency numbers; the unit tests validate it against the
//! closed-form M/M/1 and M/M/c results.

use std::collections::VecDeque;

use crate::metrics::{Counter, Histogram};
use crate::series::TimeWeighted;
use crate::time::{SimDuration, SimTime};

/// One waiting job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    arrived_at: SimTime,
    service: SimDuration,
}

/// A busy server: when it frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Busy(SimTime);

/// A c-server FIFO station with unbounded (or bounded) waiting room.
///
/// # Examples
///
/// ```
/// use elc_simcore::queueing::Station;
/// use elc_simcore::time::{SimDuration, SimTime};
///
/// let mut st = Station::new(1, None);
/// st.arrive(SimTime::ZERO, SimDuration::from_secs(2));
/// st.arrive(SimTime::from_secs(1), SimDuration::from_secs(2));
/// st.advance_to(SimTime::from_secs(10));
/// assert_eq!(st.completed().value(), 2);
/// // Second job waited one second for the first to finish.
/// assert!(st.waiting_time().mean() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Station {
    servers: usize,
    waiting_cap: Option<usize>,
    queue: VecDeque<Job>,
    busy: Vec<Busy>,
    now: SimTime,
    completed: Counter,
    rejected: Counter,
    waiting: Histogram,
    sojourn: Histogram,
    queue_len: TimeWeighted,
}

impl Station {
    /// Creates a station with `servers` servers and an optional waiting-room
    /// bound (`None` = unbounded; `Some(0)` = loss system).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    #[must_use]
    pub fn new(servers: usize, waiting_cap: Option<usize>) -> Self {
        assert!(servers > 0, "a station needs at least one server");
        Station {
            servers,
            waiting_cap,
            queue: VecDeque::new(),
            busy: Vec::new(),
            now: SimTime::ZERO,
            completed: Counter::new(),
            rejected: Counter::new(),
            waiting: Histogram::new(),
            sojourn: Histogram::new(),
            queue_len: TimeWeighted::new(SimTime::ZERO, 0.0),
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Resizes the server pool (elastic stations). Shrinking does not
    /// preempt jobs already in service; the pool drains down naturally.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn resize(&mut self, servers: usize) {
        assert!(servers > 0, "a station needs at least one server");
        self.servers = servers;
    }

    /// Advances the station clock to `t`, completing any service that
    /// finishes by then and starting queued jobs as servers free up.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current station clock.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "station clock cannot go backwards");
        loop {
            // Earliest completion within the pool.
            self.busy.sort_unstable();
            let next_free = self.busy.first().copied();
            match next_free {
                Some(Busy(done)) if done <= t => {
                    self.busy.remove(0);
                    self.completed.incr();
                    self.now = done;
                    self.try_start_queued();
                    // Record the queue transition at the instant it
                    // happened, so the time-weighted average is exact.
                    self.queue_len.set(done, self.queue.len() as f64);
                }
                _ => break,
            }
        }
        self.now = t;
        self.try_start_queued();
        self.queue_len.set(t, self.queue.len() as f64);
    }

    fn try_start_queued(&mut self) {
        while self.busy.len() < self.servers {
            let Some(job) = self.queue.pop_front() else {
                break;
            };
            let wait = self.now.saturating_since(job.arrived_at);
            self.waiting.record_duration(wait);
            self.sojourn.record_duration(wait + job.service);
            self.busy.push(Busy(self.now + job.service));
        }
    }

    /// A job arrives at `t` needing `service` time.
    ///
    /// Returns `false` if the waiting room was full and the job was lost.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the station clock — call sites must feed
    /// arrivals in time order (the event executive guarantees this).
    pub fn arrive(&mut self, t: SimTime, service: SimDuration) -> bool {
        self.advance_to(t);
        if let Some(cap) = self.waiting_cap {
            if self.busy.len() >= self.servers && self.queue.len() >= cap {
                self.rejected.incr();
                return false;
            }
        }
        self.queue.push_back(Job {
            arrived_at: t,
            service,
        });
        self.try_start_queued();
        self.queue_len.set(t, self.queue.len() as f64);
        true
    }

    /// Jobs finished so far.
    #[must_use]
    pub fn completed(&self) -> Counter {
        self.completed
    }

    /// Jobs lost to a full waiting room.
    #[must_use]
    pub fn rejected(&self) -> Counter {
        self.rejected
    }

    /// Jobs currently waiting (not in service).
    #[must_use]
    pub fn queue_length(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently in service.
    #[must_use]
    pub fn in_service(&self) -> usize {
        self.busy.len()
    }

    /// Waiting-time distribution (seconds) of started jobs.
    #[must_use]
    pub fn waiting_time(&self) -> &Histogram {
        &self.waiting
    }

    /// Sojourn-time distribution (wait + service, seconds) of started jobs.
    #[must_use]
    pub fn sojourn_time(&self) -> &Histogram {
        &self.sojourn
    }

    /// Time-average queue length since the station was created.
    #[must_use]
    pub fn mean_queue_length(&self) -> f64 {
        self.queue_len.time_average(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exp};
    use crate::rng::SimRng;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_server_fifo_order() {
        let mut st = Station::new(1, None);
        st.arrive(secs(0), SimDuration::from_secs(5));
        st.arrive(secs(1), SimDuration::from_secs(5));
        st.arrive(secs(2), SimDuration::from_secs(5));
        st.advance_to(secs(4));
        assert_eq!(st.completed().value(), 0);
        assert_eq!(st.in_service(), 1);
        assert_eq!(st.queue_length(), 2);
        st.advance_to(secs(15));
        assert_eq!(st.completed().value(), 3);
        assert_eq!(st.queue_length(), 0);
    }

    #[test]
    fn waits_accumulate_behind_a_long_job() {
        let mut st = Station::new(1, None);
        st.arrive(secs(0), SimDuration::from_secs(10));
        st.arrive(secs(0), SimDuration::from_secs(1));
        st.advance_to(secs(20));
        // Second job waited exactly 10 seconds.
        let (lo, hi) = st.waiting_time().min_max().unwrap();
        assert_eq!(lo, 0.0);
        assert!((hi - 10.0).abs() < 0.5, "hi {hi}");
    }

    #[test]
    fn parallel_servers_avoid_waits() {
        let mut st = Station::new(3, None);
        for _ in 0..3 {
            st.arrive(secs(0), SimDuration::from_secs(5));
        }
        st.advance_to(secs(6));
        assert_eq!(st.completed().value(), 3);
        assert_eq!(st.waiting_time().mean(), 0.0);
    }

    #[test]
    fn loss_system_rejects_when_full() {
        let mut st = Station::new(1, Some(0));
        assert!(st.arrive(secs(0), SimDuration::from_secs(10)));
        assert!(!st.arrive(secs(1), SimDuration::from_secs(1)));
        assert_eq!(st.rejected().value(), 1);
        st.advance_to(secs(11));
        assert!(st.arrive(secs(11), SimDuration::from_secs(1)));
    }

    #[test]
    fn bounded_waiting_room() {
        let mut st = Station::new(1, Some(2));
        assert!(st.arrive(secs(0), SimDuration::from_secs(100)));
        assert!(st.arrive(secs(0), SimDuration::from_secs(1)));
        assert!(st.arrive(secs(0), SimDuration::from_secs(1)));
        assert!(!st.arrive(secs(0), SimDuration::from_secs(1)));
        assert_eq!(st.queue_length(), 2);
    }

    #[test]
    fn resize_grows_service_capacity() {
        let mut st = Station::new(1, None);
        for _ in 0..4 {
            st.arrive(secs(0), SimDuration::from_secs(10));
        }
        st.resize(4);
        st.advance_to(secs(0));
        assert_eq!(st.in_service(), 4);
        st.advance_to(secs(10));
        assert_eq!(st.completed().value(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot go backwards")]
    fn clock_is_monotone() {
        let mut st = Station::new(1, None);
        st.advance_to(secs(10));
        st.advance_to(secs(5));
    }

    /// M/M/1 sanity: with λ = 0.5, μ = 1 (ρ = 0.5), the mean waiting time
    /// in queue is ρ/(μ−λ) = 1.0 and mean sojourn 1/(μ−λ) = 2.0.
    #[test]
    fn mm1_matches_theory() {
        let mut rng = SimRng::seed(42);
        let arrivals = Exp::new(0.5).unwrap();
        let service = Exp::new(1.0).unwrap();
        let mut st = Station::new(1, None);
        let mut t = 0.0;
        for _ in 0..200_000 {
            t += arrivals.sample(&mut rng);
            let s = service.sample(&mut rng);
            st.arrive(
                SimTime::from_nanos((t * 1e9) as u64),
                SimDuration::from_secs_f64(s),
            );
        }
        st.advance_to(SimTime::from_nanos((t * 1e9) as u64) + SimDuration::from_secs(10_000));
        let wq = st.waiting_time().mean();
        let w = st.sojourn_time().mean();
        assert!((wq - 1.0).abs() < 0.1, "Wq {wq} (theory 1.0)");
        assert!((w - 2.0).abs() < 0.1, "W {w} (theory 2.0)");
    }

    /// M/M/2 sanity: λ = 1.2, μ = 1 per server (ρ = 0.6). Erlang-C gives
    /// P(wait) = 0.45 and Wq = C/(cμ−λ) = 0.5625.
    #[test]
    fn mm2_matches_erlang_c() {
        let mut rng = SimRng::seed(7);
        let arrivals = Exp::new(1.2).unwrap();
        let service = Exp::new(1.0).unwrap();
        let mut st = Station::new(2, None);
        let mut t = 0.0;
        for _ in 0..200_000 {
            t += arrivals.sample(&mut rng);
            let s = service.sample(&mut rng);
            st.arrive(
                SimTime::from_nanos((t * 1e9) as u64),
                SimDuration::from_secs_f64(s),
            );
        }
        st.advance_to(SimTime::from_nanos((t * 1e9) as u64) + SimDuration::from_secs(10_000));
        let wq = st.waiting_time().mean();
        assert!((wq - 0.5625).abs() < 0.05, "Wq {wq} (theory 0.5625)");
    }

    #[test]
    fn mean_queue_length_little_law() {
        // Little's law: Lq = λ · Wq. Reuse the M/M/1 setup (λ=0.5 ⇒ Lq=0.5).
        let mut rng = SimRng::seed(11);
        let arrivals = Exp::new(0.5).unwrap();
        let service = Exp::new(1.0).unwrap();
        let mut st = Station::new(1, None);
        let mut t = 0.0;
        for _ in 0..200_000 {
            t += arrivals.sample(&mut rng);
            let s = service.sample(&mut rng);
            st.arrive(
                SimTime::from_nanos((t * 1e9) as u64),
                SimDuration::from_secs_f64(s),
            );
        }
        let lq = st.mean_queue_length();
        assert!((lq - 0.5).abs() < 0.06, "Lq {lq} (theory 0.5)");
    }

    #[test]
    fn counters_start_at_zero() {
        let st = Station::new(2, None);
        assert_eq!(st.completed().value(), 0);
        assert_eq!(st.rejected().value(), 0);
        assert_eq!(st.queue_length(), 0);
        assert_eq!(st.in_service(), 0);
        assert_eq!(st.servers(), 2);
    }
}
