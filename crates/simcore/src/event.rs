//! Inline-payload event handlers: the small-closure optimization.
//!
//! Before this module existed, every scheduled event was an
//! `Box<dyn FnOnce(&mut Simulation<S>)>` — one heap allocation (and one
//! free) per event for any closure that captures so much as a single id.
//! At the millions-of-events scale the workload models run at, that malloc
//! pair *was* the hot path.
//!
//! [`EventFn`] removes it. Each value carries a fixed-size payload buffer
//! ([`INLINE_EVENT_BYTES`] bytes, 8-byte aligned); a closure whose size and
//! alignment fit is moved **into the buffer** and dispatched through a
//! monomorphized vtable (an [`EventVTable`]: `call` consumes the payload,
//! `drop_fn` destroys an unfired one). Oversized or over-aligned closures
//! spill to the old representation — a `Box<dyn FnOnce>` — which is itself
//! stored in the buffer (a fat pointer always fits), so the executive's
//! slab arena stores one uniform payload type either way. The vtable is a
//! single `&'static` pointer, not inline function pointers, which keeps
//! the whole `EventFn` at 64 bytes — one cache line per slot payload, and
//! the size every pop/push copies.
//!
//! Whether a closure spills is a property of its *type*, decided at
//! monomorphization time — never of runtime data — so the inline/spilled
//! split cannot perturb determinism. `Simulation` counts both per run
//! (`RunStats::inline_scheduled` / `RunStats::spilled_scheduled`) so a
//! model crate that grows a capture past the threshold is visible in
//! stats, traces and the committed bench JSON rather than silently
//! re-introducing a malloc per event.
//!
//! # Safety
//!
//! This is the one module in the crate that uses `unsafe` (the crate is
//! otherwise `#![deny(unsafe_code)]`). The invariants are local and small:
//!
//! * the buffer holds a valid `F` (inline) or a valid
//!   `Box<dyn FnOnce(&mut Simulation<S>)>` (spilled) from construction
//!   until exactly one of `call` / `Drop` consumes it;
//! * `call` takes `self` by value and forgets it via [`ManuallyDrop`], so
//!   the payload is moved out exactly once and `Drop` cannot run after it;
//! * the vtable is chosen once, at construction, by the only function that
//!   knows the concrete `F`.
//!
//! The `straddles the inline threshold` integration test
//! (`tests/inline_spill_recycling.rs`) pins no-leak / no-double-drop
//! behaviour for both representations across arena slot recycling.

use std::marker::PhantomData;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::sim::Simulation;

/// Inline payload capacity, in bytes. Sized so the steady-state event mix
/// of the model crates — captures of a few ids, indices, a `SimDuration`
/// and a ZST-or-small user closure — stays inline with headroom, while the
/// whole [`EventFn`] (payload plus vtable pointer) is exactly 64 bytes:
/// one cache line moved per push and per pop.
pub const INLINE_EVENT_BYTES: usize = 56;

/// The payload buffer. `align(8)` accommodates every capture the models
/// use (`u64`s, `f64`s, pointers, small structs); a closure with stricter
/// alignment (e.g. SIMD types) spills rather than being stored misaligned.
#[repr(C, align(8))]
struct PayloadBuf {
    bytes: MaybeUninit<[u8; INLINE_EVENT_BYTES]>,
}

impl PayloadBuf {
    #[inline]
    fn uninit() -> Self {
        PayloadBuf {
            bytes: MaybeUninit::uninit(),
        }
    }

    #[inline]
    fn as_mut_ptr(&mut self) -> *mut u8 {
        self.bytes.as_mut_ptr().cast::<u8>()
    }
}

/// The spilled representation: the pre-optimization boxed handler. A fat
/// pointer (16 bytes, align 8) — always fits the buffer. Handlers are
/// `Send` so a whole `Simulation` can move onto a shard worker thread
/// (see [`crate::shard`]).
type Spilled<S> = Box<dyn FnOnce(&mut Simulation<S>) + Send>;

/// The manual vtable shared by every event of one closure type: how to run
/// the payload, how to destroy an unfired one, and which representation it
/// uses. Stored behind one `&'static` pointer per [`EventFn`].
///
/// The simulation parameter is erased (`*mut ()`) so the vtable type needs
/// no `S: 'static` bound; [`EventFn::call`] re-supplies the concrete
/// `&mut Simulation<S>`, which is sound because `EventFn<S>` only ever
/// holds vtables built for that same `S`.
struct EventVTable {
    /// Consumes the payload at `*buf` and runs it against the erased
    /// `*mut Simulation<S>`.
    call: unsafe fn(*mut u8, *mut ()),
    /// Destroys an unfired payload at `*buf`.
    drop_fn: unsafe fn(*mut u8),
    /// Whether the payload is a spilled `Box` rather than an inline `F`.
    spilled: bool,
}

/// Const-promotable vtable instances for one `(S, F)` pair. Referencing an
/// associated `const` of this holder promotes it to a `'static`, exactly
/// like the `RawWakerVTable` pattern in async executors.
///
/// The `fn(..)`-wrapped phantom params keep the holder covariant-free and
/// `Send`/`Sync`-neutral without requiring `S: Sized + 'static` bounds.
#[allow(clippy::type_complexity)]
struct VTables<S, F>(PhantomData<(fn(S), fn(F))>);

impl<S, F: FnOnce(&mut Simulation<S>) + Send + 'static> VTables<S, F> {
    const INLINE: EventVTable = EventVTable {
        call: call_inline::<S, F>,
        drop_fn: drop_in_buf::<F>,
        spilled: false,
    };
    const SPILLED: EventVTable = EventVTable {
        call: call_spilled::<S>,
        drop_fn: drop_in_buf::<Spilled<S>>,
        spilled: true,
    };
}

/// An event handler with inline payload storage.
///
/// Closures at or under [`INLINE_EVENT_BYTES`] bytes (and at most 8-byte
/// alignment) are stored in place — scheduling one performs **zero** heap
/// allocations. Larger closures transparently spill to a `Box`.
///
/// Constructed by `Simulation`'s scheduling methods; consumed by the
/// executive via [`EventFn::call`], or dropped in place when the event is
/// cancelled.
pub struct EventFn<S> {
    buf: PayloadBuf,
    vtable: &'static EventVTable,
    /// Every constructor requires a `Send` payload, so the type inherits
    /// `Send` from the boxed form it replaces — which is what lets the
    /// shard executor move whole simulations across worker threads.
    _marker: PhantomData<Spilled<S>>,
}

impl<S> EventFn<S> {
    /// Whether closures of type `F` are stored inline. A property of the
    /// type alone, so the answer is the same for every instance — which is
    /// what lets `Simulation`'s scheduling methods count a whole batch (or
    /// fold the counter branch away entirely) with one compile-time check.
    #[must_use]
    pub const fn stores_inline<F>() -> bool
    where
        F: FnOnce(&mut Simulation<S>) + Send + 'static,
    {
        size_of::<F>() <= INLINE_EVENT_BYTES && align_of::<F>() <= align_of::<PayloadBuf>()
    }

    /// Wraps `handler`, inline when it fits.
    #[inline]
    pub fn new<F>(handler: F) -> Self
    where
        F: FnOnce(&mut Simulation<S>) + Send + 'static,
    {
        let mut buf = PayloadBuf::uninit();
        if const { Self::stores_inline::<F>() } {
            // SAFETY: size and alignment of `F` were checked against the
            // buffer; the write initializes the payload the inline vtable
            // below will read as `F`.
            #[allow(unsafe_code)]
            unsafe {
                buf.as_mut_ptr().cast::<F>().write(handler);
            }
            EventFn {
                buf,
                vtable: &VTables::<S, F>::INLINE,
                _marker: PhantomData,
            }
        } else {
            let boxed: Spilled<S> = Box::new(handler);
            // SAFETY: a fat pointer (16 bytes, align 8) fits the buffer;
            // the write initializes the payload the spilled vtable reads
            // as `Spilled<S>`.
            #[allow(unsafe_code)]
            unsafe {
                buf.as_mut_ptr().cast::<Spilled<S>>().write(boxed);
            }
            EventFn {
                buf,
                vtable: &VTables::<S, F>::SPILLED,
                _marker: PhantomData,
            }
        }
    }

    /// Whether this event spilled to a heap allocation.
    #[inline]
    #[must_use]
    pub fn is_spilled(&self) -> bool {
        self.vtable.spilled
    }

    /// Runs the handler, consuming the event.
    #[inline]
    pub fn call(self, sim: &mut Simulation<S>) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: the buffer holds a live payload (nothing consumed it
        // yet), and `ManuallyDrop` guarantees `Drop` will not run after
        // `call` moves the payload out — each payload is consumed once.
        // The erased pointer is a `&mut Simulation<S>` for the same `S`
        // the vtable was monomorphized with.
        #[allow(unsafe_code)]
        unsafe {
            (this.vtable.call)(this.buf.as_mut_ptr(), (sim as *mut Simulation<S>).cast());
        }
    }
}

impl<S> Drop for EventFn<S> {
    fn drop(&mut self) {
        // SAFETY: `Drop` only runs on events never passed to `call`
        // (cancelled or still pending at teardown), so the buffer still
        // holds a live payload for `drop_fn` to destroy — exactly once,
        // because `call` suppresses `Drop` via `ManuallyDrop`.
        #[allow(unsafe_code)]
        unsafe {
            (self.vtable.drop_fn)(self.buf.as_mut_ptr());
        }
    }
}

impl<S> std::fmt::Debug for EventFn<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventFn")
            .field("spilled", &self.is_spilled())
            .finish_non_exhaustive()
    }
}

/// Reads the inline `F` out of the buffer and runs it.
#[allow(unsafe_code)]
unsafe fn call_inline<S, F: FnOnce(&mut Simulation<S>)>(buf: *mut u8, sim: *mut ()) {
    // SAFETY (caller): `buf` holds an initialized `F` that nothing else
    // will read or drop again, and `sim` is a live `&mut Simulation<S>`
    // erased by `EventFn::call`.
    let f = unsafe { buf.cast::<F>().read() };
    f(unsafe { &mut *sim.cast::<Simulation<S>>() });
}

/// Reads the spilled box out of the buffer and runs it.
#[allow(unsafe_code)]
unsafe fn call_spilled<S>(buf: *mut u8, sim: *mut ()) {
    // SAFETY (caller): `buf` holds an initialized `Spilled<S>` that
    // nothing else will read or drop again, and `sim` is a live
    // `&mut Simulation<S>` erased by `EventFn::call`.
    let boxed = unsafe { buf.cast::<Spilled<S>>().read() };
    boxed(unsafe { &mut *sim.cast::<Simulation<S>>() });
}

/// Drops the payload of type `T` in place inside the buffer.
#[allow(unsafe_code)]
unsafe fn drop_in_buf<T>(buf: *mut u8) {
    // SAFETY (caller): `buf` holds an initialized `T` that nothing else
    // will read or drop again.
    unsafe { buf.cast::<T>().drop_in_place() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn event_fn_is_one_cache_line() {
        assert_eq!(size_of::<EventFn<u32>>(), 64);
        // The vtable reference provides a niche, so the arena's
        // `Option<EventFn>` slots pay no discriminant overhead.
        assert_eq!(size_of::<Option<EventFn<u32>>>(), 64);
    }

    #[test]
    fn zst_and_small_captures_stay_inline() {
        assert!(EventFn::<u32>::stores_inline::<fn(&mut Simulation<u32>)>());
        let ev = EventFn::<u32>::new(|s: &mut Simulation<u32>| *s.state_mut() += 1);
        assert!(!ev.is_spilled());
        let (a, b) = (1u64, 2u64);
        let ev = EventFn::<u32>::new(move |s: &mut Simulation<u32>| {
            *s.state_mut() += (a + b) as u32;
        });
        assert!(!ev.is_spilled(), "16-byte capture must stay inline");
        drop(ev);
    }

    #[test]
    fn capture_at_the_threshold_is_inline_and_over_it_spills() {
        let at = [0u8; INLINE_EVENT_BYTES];
        let ev = EventFn::<u32>::new(move |_s: &mut Simulation<u32>| {
            std::hint::black_box(at[0]);
        });
        assert!(!ev.is_spilled(), "exactly {INLINE_EVENT_BYTES} bytes fits");

        let over = [0u8; INLINE_EVENT_BYTES + 1];
        let ev = EventFn::<u32>::new(move |_s: &mut Simulation<u32>| {
            std::hint::black_box(over[0]);
        });
        assert!(ev.is_spilled(), "one byte over must spill");
    }

    #[test]
    fn over_aligned_capture_spills() {
        #[repr(align(32))]
        #[derive(Clone, Copy)]
        struct Wide(u8);
        let w = Wide(3);
        assert_eq!(w.0, 3);
        // Capture the whole struct (not the disjoint `w.0` field) so the
        // closure inherits its 32-byte alignment.
        let ev = EventFn::<u32>::new(move |_s: &mut Simulation<u32>| {
            std::hint::black_box(w);
        });
        assert!(ev.is_spilled(), "align 32 exceeds the buffer's align 8");
    }

    #[test]
    fn call_runs_the_handler_once() {
        let mut sim = Simulation::new(1, 0u32);
        EventFn::new(|s: &mut Simulation<u32>| *s.state_mut() += 5).call(&mut sim);
        assert_eq!(*sim.state(), 5);
    }

    #[test]
    fn dropping_unfired_events_releases_captures_once() {
        // An Arc's strong count observes drops exactly: leaking keeps it
        // elevated, double-dropping would abort or corrupt.
        let token = Arc::new(());

        // Inline representation.
        let held = Arc::clone(&token);
        let ev = EventFn::<u32>::new(move |_s: &mut Simulation<u32>| {
            let _ = &held;
        });
        assert!(!ev.is_spilled());
        assert_eq!(Arc::strong_count(&token), 2);
        drop(ev);
        assert_eq!(Arc::strong_count(&token), 1, "inline capture must drop");

        // Spilled representation (an array capture pushes the closure over
        // the threshold — a Vec would not, its 24-byte header is inline).
        let held = Arc::clone(&token);
        let big = [0u8; INLINE_EVENT_BYTES + 1];
        let ev = EventFn::<u32>::new(move |_s: &mut Simulation<u32>| {
            let _ = (&held, &big);
        });
        assert!(ev.is_spilled());
        assert_eq!(Arc::strong_count(&token), 2);
        drop(ev);
        assert_eq!(Arc::strong_count(&token), 1, "spilled capture must drop");
    }

    #[test]
    fn calling_releases_captures_exactly_once() {
        let token = Arc::new(());
        let held = Arc::clone(&token);
        let mut sim = Simulation::new(1, 0u32);
        EventFn::new(move |s: &mut Simulation<u32>| {
            let _ = &held;
            *s.state_mut() += 1;
        })
        .call(&mut sim);
        assert_eq!(*sim.state(), 1);
        assert_eq!(
            Arc::strong_count(&token),
            1,
            "capture must drop after the call"
        );
    }

    #[test]
    fn debug_shows_representation() {
        let ev = EventFn::<u32>::new(|_s: &mut Simulation<u32>| {});
        assert!(format!("{ev:?}").contains("spilled: false"));
    }
}
