//! Conservative time-window parallel execution across site shards.
//!
//! One scenario's state is partitioned by *site* onto shards, each shard
//! owning an independent [`Simulation`] (and therefore its own event queue
//! and RNG lineages). Shards advance in lockstep through grid-aligned time
//! windows `[kL, (k+1)L)` where the lookahead `L` is the minimum
//! cross-shard network latency: any message sent during a window arrives
//! no earlier than the *next* window, so every shard can execute a whole
//! window without hearing from its peers.
//!
//! # Determinism
//!
//! Output is byte-identical at any shard count because nothing observable
//! depends on the partition:
//!
//! - Cross-site messages never enter a shard's event heap. They are held
//!   in per-shard staging calendars sorted by `(arrival, src_site, seq)`,
//!   where `seq` is a per-source-site send counter. Each site is owned by
//!   exactly one shard, so the relative send order per source — and hence
//!   the merge order — is independent of how sites map to shards.
//! - Deliveries interleave with local events by simulated time, with
//!   deliveries applied *first* on ties ([`advance_simulation`]).
//! - Windows are aligned to the global grid `k * L`, never to a shard's
//!   local clock.
//!
//! Models give each site its own RNG lineage
//! (`root.derive("shard").derive_u64(site_index)`) so draws do not depend
//! on which shard executes the site.
//!
//! A topology with a zero-latency cross-shard link has no usable
//! lookahead; [`TimeWindows::new`] rejects it, and model layers are
//! expected to fall back to plain single-shard execution with a traced
//! warning instead.

use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::thread;

/// A cross-shard message due at `at`, sent by site `src` as its `seq`-th
/// send. `(at, src, seq)` totally orders deliveries, independently of the
/// site-to-shard partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Simulated arrival time (send time + link latency).
    pub at: SimTime,
    /// Global index of the sending site.
    pub src: u32,
    /// Per-source-site send counter, assigned by [`Outbox::send`].
    pub seq: u64,
    /// Model-defined payload.
    pub msg: M,
}

impl<M> Delivery<M> {
    #[inline]
    fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.src, self.seq)
    }
}

/// Per-shard buffer of outbound cross-site messages for the current
/// window. Owns the per-source send counters, which persist across
/// windows so `seq` reflects the site's lifetime send order.
#[derive(Debug)]
pub struct Outbox<M> {
    staged: Vec<(u32, Delivery<M>)>,
    seq: Vec<u64>,
}

impl<M> Outbox<M> {
    /// Creates an outbox with send counters for `site_count` global sites.
    pub fn new(site_count: usize) -> Self {
        Outbox {
            staged: Vec::new(),
            seq: vec![0; site_count],
        }
    }

    /// Stages a message from global site `src` to global site `dest`,
    /// arriving at `at`. The executor routes it to the destination shard
    /// at the end of the current window.
    #[inline]
    pub fn send(&mut self, src: u32, dest: u32, at: SimTime, msg: M) {
        let counter = &mut self.seq[src as usize];
        let seq = *counter;
        *counter += 1;
        self.staged.push((dest, Delivery { at, src, seq, msg }));
    }

    /// Number of messages staged in the current window.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

/// One shard's slice of the model, driven window-by-window.
pub trait ShardWorld: Send {
    /// Payload type of cross-site messages.
    type Msg: Send;

    /// Executes everything strictly before `horizon`: the sorted `inbox`
    /// of due deliveries interleaved with local events (use
    /// [`advance_simulation`] for [`Simulation`]-backed worlds), staging
    /// outbound messages on `outbox`. Must drain `inbox` completely.
    fn advance(
        &mut self,
        horizon: SimTime,
        inbox: &mut Vec<Delivery<Self::Msg>>,
        outbox: &mut Outbox<Self::Msg>,
    );

    /// Time of the earliest pending local event, if any.
    fn next_event_time(&self) -> Option<SimTime>;
}

/// Counters reported by [`TimeWindows::run`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WindowStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Cross-shard messages routed between shards.
    pub messages: u64,
}

struct Lane<W: ShardWorld> {
    world: W,
    /// Future deliveries for this shard, sorted by `(at, src, seq)`.
    staging: Vec<Delivery<W::Msg>>,
    /// Scratch buffer of deliveries due in the current window.
    inbox: Vec<Delivery<W::Msg>>,
    outbox: Outbox<W::Msg>,
}

impl<W: ShardWorld> Lane<W> {
    /// Earliest time at which anything can happen on this lane.
    fn next_time(&self) -> Option<SimTime> {
        let local = self.world.next_event_time();
        let staged = self.staging.first().map(|d| d.at);
        match (local, staged) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Conservative time-window executor over a set of [`ShardWorld`]s.
pub struct TimeWindows<W: ShardWorld> {
    lanes: Vec<Lane<W>>,
    site_shard: Vec<u32>,
    lookahead: SimDuration,
    stats: WindowStats,
}

impl<W: ShardWorld> TimeWindows<W> {
    /// Builds an executor over `worlds`, one lane per shard. `site_shard`
    /// maps every global site index to its owning shard; `lookahead` is
    /// the window width (minimum cross-shard latency).
    ///
    /// # Panics
    ///
    /// Panics when `worlds` is empty, when `lookahead` is zero (the
    /// window protocol cannot make progress — callers must fall back to
    /// plain single-shard execution), or when `site_shard` names a shard
    /// that does not exist.
    pub fn new(worlds: Vec<W>, site_shard: Vec<u32>, lookahead: SimDuration) -> Self {
        assert!(!worlds.is_empty(), "at least one shard world is required");
        assert!(
            !lookahead.is_zero(),
            "conservative window protocol requires positive lookahead; \
             fall back to single-shard execution for zero-latency links"
        );
        let shards = worlds.len() as u32;
        for (site, &shard) in site_shard.iter().enumerate() {
            assert!(
                shard < shards,
                "site {site} assigned to shard {shard}, but only {shards} shards exist"
            );
        }
        let site_count = site_shard.len();
        TimeWindows {
            lanes: worlds
                .into_iter()
                .map(|world| Lane {
                    world,
                    staging: Vec::new(),
                    inbox: Vec::new(),
                    outbox: Outbox::new(site_count),
                })
                .collect(),
            site_shard,
            lookahead,
            stats: WindowStats::default(),
        }
    }

    /// Earliest pending time across all lanes (local events and staged
    /// deliveries). `None` means the whole simulation has drained.
    fn next_time(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(Lane::next_time).min()
    }

    /// Runs every window until all lanes drain, using up to `workers`
    /// threads per window (clamped to the shard count; `1` runs inline).
    pub fn run(&mut self, workers: usize) -> WindowStats {
        let workers = workers.clamp(1, self.lanes.len());
        let lookahead = self.lookahead.as_nanos();
        while let Some(t) = self.next_time() {
            // Grid-aligned horizon: the end of the window containing `t`.
            let window = t.as_nanos() / lookahead;
            let horizon = SimTime::from_nanos((window + 1).saturating_mul(lookahead));
            self.stats.windows += 1;

            for lane in &mut self.lanes {
                let due = lane.staging.partition_point(|d| d.at < horizon);
                debug_assert!(lane.inbox.is_empty());
                lane.inbox.extend(lane.staging.drain(..due));
            }

            if workers > 1 {
                let chunk = self.lanes.len().div_ceil(workers);
                thread::scope(|s| {
                    for lanes in self.lanes.chunks_mut(chunk) {
                        s.spawn(move || {
                            for lane in lanes {
                                advance_lane(lane, horizon);
                            }
                        });
                    }
                });
            } else {
                for lane in &mut self.lanes {
                    advance_lane(lane, horizon);
                }
            }

            self.route(horizon);
        }
        self.stats
    }

    /// Moves every staged outbound message to its destination shard's
    /// staging calendar and restores the `(at, src, seq)` sort order.
    fn route(&mut self, horizon: SimTime) {
        let before: Vec<usize> = self.lanes.iter().map(|l| l.staging.len()).collect();
        for src_lane in 0..self.lanes.len() {
            let mut staged = std::mem::take(&mut self.lanes[src_lane].outbox.staged);
            for (dest, delivery) in staged.drain(..) {
                assert!(
                    delivery.at >= horizon,
                    "message from site {} violates the lookahead: arrives at {} inside \
                     the window ending at {horizon}",
                    delivery.src,
                    delivery.at,
                );
                let dest_shard = self.site_shard[dest as usize] as usize;
                self.lanes[dest_shard].staging.push(delivery);
                self.stats.messages += 1;
            }
            self.lanes[src_lane].outbox.staged = staged;
        }
        for (lane, &len) in self.lanes.iter_mut().zip(&before) {
            if lane.staging.len() > len {
                lane.staging.sort_unstable_by_key(Delivery::key);
            }
        }
    }

    /// Consumes the executor, returning the final shard worlds in shard
    /// order together with the run counters.
    pub fn into_worlds(self) -> (Vec<W>, WindowStats) {
        let stats = self.stats;
        (self.lanes.into_iter().map(|l| l.world).collect(), stats)
    }
}

fn advance_lane<W: ShardWorld>(lane: &mut Lane<W>, horizon: SimTime) {
    lane.world
        .advance(horizon, &mut lane.inbox, &mut lane.outbox);
    debug_assert!(
        lane.inbox.is_empty(),
        "ShardWorld::advance must drain its inbox"
    );
}

/// Drives a [`Simulation`]-backed shard through one window: executes
/// every local event strictly before `horizon`, interleaved with the
/// sorted `inbox` deliveries by simulated time — deliveries are applied
/// *before* local events on ties, which is what makes the interleave
/// independent of the shard count. `apply` materializes one delivery
/// against the simulation (and may schedule further local events).
pub fn advance_simulation<S, M>(
    sim: &mut Simulation<S>,
    horizon: SimTime,
    inbox: &mut Vec<Delivery<M>>,
    mut apply: impl FnMut(&mut Simulation<S>, Delivery<M>),
) {
    let mut pending = inbox.drain(..);
    let mut next_delivery = pending.next();
    loop {
        let next_local = sim.next_event_time().filter(|&t| t < horizon);
        let deliver_now = match (next_delivery.as_ref(), next_local) {
            (Some(d), Some(t)) => d.at <= t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if deliver_now {
            let delivery = next_delivery.take().expect("delivery present");
            debug_assert!(delivery.at < horizon, "delivery handed over too early");
            sim.advance_to(delivery.at);
            apply(sim, delivery);
            next_delivery = pending.next();
        } else {
            let stepped = sim.step_before(horizon);
            debug_assert!(stepped, "peeked event must pop");
        }
    }
}

/// Assigns `items` consecutive indices to `shards` contiguous,
/// near-equal blocks: the canonical site-to-shard partition. Earlier
/// blocks get the remainder, so sizes differ by at most one.
pub fn assign_blocks(items: usize, shards: u32) -> Vec<u32> {
    let shards = (shards as usize).clamp(1, items.max(1));
    let base = items / shards;
    let extra = items % shards;
    let mut out = Vec::with_capacity(items);
    for shard in 0..shards {
        let len = base + usize::from(shard < extra);
        out.extend(std::iter::repeat_n(shard as u32, len));
    }
    out
}

thread_local! {
    /// `0` means "unset": fall back to the machine's parallelism.
    static WORKER_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// How many OS threads this call site may occupy. Defaults to the
/// machine's available parallelism; [`with_worker_budget`] narrows it so
/// nested fan-out (replications × shards) does not oversubscribe.
pub fn worker_budget() -> usize {
    let budget = WORKER_BUDGET.get();
    if budget == 0 {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        budget
    }
}

/// Runs `f` with the current thread's worker budget set to `budget`
/// (minimum 1), restoring the previous budget afterwards.
pub fn with_worker_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_BUDGET.set(self.0);
        }
    }
    let _restore = Restore(WORKER_BUDGET.replace(budget.max(1)));
    f()
}

/// Runs independent `jobs` partitioned over up to `shards` contiguous
/// groups, on up to [`worker_budget`] threads, and returns the results
/// in job order. Jobs must not communicate — this is the fan-out used by
/// experiments whose arms have independent RNG lineages.
pub fn run_jobs<T, F>(shards: u32, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    let groups = (shards as usize).clamp(1, total.max(1));
    if groups <= 1 || worker_budget() <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let chunk = total.div_ceil(groups);
    let mut out: Vec<Option<T>> = Vec::with_capacity(total);
    out.resize_with(total, || None);
    thread::scope(|s| {
        let mut jobs = jobs.into_iter();
        let mut slots = out.as_mut_slice();
        while !slots.is_empty() {
            let take = chunk.min(slots.len());
            let group: Vec<F> = jobs.by_ref().take(take).collect();
            let (head, tail) = slots.split_at_mut(take);
            slots = tail;
            s.spawn(move || {
                for (slot, job) in head.iter_mut().zip(group) {
                    *slot = Some(job());
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn mix(hash: u64, value: u64) -> u64 {
        (hash ^ value)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(27)
    }

    const LOOKAHEAD: SimDuration = SimDuration::from_millis(10);
    const SITES: u32 = 8;
    const EVENTS_PER_SITE: u64 = 200;

    struct ToySite {
        global: u32,
        rng: SimRng,
        hash: u64,
        count: u64,
    }

    struct ToyState {
        sites: Vec<ToySite>,
        local_of: Vec<Option<u32>>,
        sends: Vec<(u32, u32, SimTime, u64)>,
    }

    struct ToyWorld {
        sim: Simulation<ToyState>,
    }

    fn tick(sim: &mut Simulation<ToyState>, local: u32) {
        let now = sim.now();
        let site = &mut sim.state_mut().sites[local as usize];
        let draw = site.rng.next_u64();
        site.hash = mix(site.hash, draw ^ now.as_nanos());
        site.count += 1;
        let count = site.count;
        let global = site.global;
        if count.is_multiple_of(3) {
            // Latency between 1x and 3x the lookahead, never below it.
            let latency = SimDuration::from_nanos(LOOKAHEAD.as_nanos() * (1 + draw % 3));
            let dest = (global + 1) % SITES;
            let at = SimTime::from_nanos(now.as_nanos() + latency.as_nanos());
            sim.state_mut().sends.push((global, dest, at, draw));
        }
        if count < EVENTS_PER_SITE {
            let delay = SimDuration::from_micros(500 + draw % 7_000);
            sim.schedule_in(delay, move |sim| tick(sim, local));
        }
    }

    fn apply_msg(sim: &mut Simulation<ToyState>, delivery: Delivery<u64>) {
        let dest_global = (delivery.src + 1) % SITES;
        let dest_local =
            sim.state().local_of[dest_global as usize].expect("delivery routed to owning shard");
        let at = delivery.at;
        let site = &mut sim.state_mut().sites[dest_local as usize];
        site.hash = mix(site.hash, delivery.msg ^ at.as_nanos());
        if delivery.msg % 2 == 1 {
            sim.schedule_in(SimDuration::from_micros(250), move |sim| {
                let site = &mut sim.state_mut().sites[dest_local as usize];
                site.hash = mix(site.hash, 0xDEAD_BEEF);
            });
        }
    }

    impl ShardWorld for ToyWorld {
        type Msg = u64;

        fn advance(
            &mut self,
            horizon: SimTime,
            inbox: &mut Vec<Delivery<u64>>,
            outbox: &mut Outbox<u64>,
        ) {
            advance_simulation(&mut self.sim, horizon, inbox, apply_msg);
            let sends = std::mem::take(&mut self.sim.state_mut().sends);
            for (src, dest, at, msg) in sends {
                outbox.send(src, dest, at, msg);
            }
        }

        fn next_event_time(&self) -> Option<SimTime> {
            self.sim.next_event_time()
        }
    }

    fn build(shards: u32) -> TimeWindows<ToyWorld> {
        let site_shard = assign_blocks(SITES as usize, shards);
        let root = SimRng::seed(42).derive("toy");
        let mut worlds = Vec::new();
        for shard in 0..site_shard.iter().copied().max().unwrap() + 1 {
            let locals: Vec<u32> = (0..SITES)
                .filter(|&g| site_shard[g as usize] == shard)
                .collect();
            let mut local_of = vec![None; SITES as usize];
            let sites: Vec<ToySite> = locals
                .iter()
                .enumerate()
                .map(|(i, &global)| {
                    local_of[global as usize] = Some(i as u32);
                    ToySite {
                        global,
                        rng: root.derive("shard").derive_u64(u64::from(global)),
                        hash: u64::from(global),
                        count: 0,
                    }
                })
                .collect();
            let state = ToyState {
                sites,
                local_of,
                sends: Vec::new(),
            };
            let mut sim = Simulation::new(42 ^ u64::from(shard), state);
            for local in 0..sim.state().sites.len() as u32 {
                let offset = SimDuration::from_micros(
                    100 * u64::from(sim.state().sites[local as usize].global),
                );
                sim.schedule_in(offset, move |sim| tick(sim, local));
            }
            worlds.push(ToyWorld { sim });
        }
        TimeWindows::new(worlds, site_shard, LOOKAHEAD)
    }

    fn fingerprint(shards: u32, workers: usize) -> Vec<(u32, u64, u64)> {
        let mut windows = build(shards);
        windows.run(workers);
        let (worlds, stats) = windows.into_worlds();
        assert!(stats.windows > 0);
        let mut out: Vec<(u32, u64, u64)> = worlds
            .iter()
            .flat_map(|w| w.sim.state().sites.iter())
            .map(|s| (s.global, s.hash, s.count))
            .collect();
        out.sort_unstable_by_key(|&(g, _, _)| g);
        out
    }

    #[test]
    fn output_is_byte_identical_at_any_shard_count() {
        let baseline = fingerprint(1, 1);
        assert_eq!(baseline.len(), SITES as usize);
        for shards in [2, 3, 4, 8] {
            assert_eq!(fingerprint(shards, 1), baseline, "shards={shards}");
        }
    }

    #[test]
    fn worker_threads_do_not_change_the_output() {
        let baseline = fingerprint(4, 1);
        assert_eq!(fingerprint(4, 2), baseline);
        assert_eq!(fingerprint(4, 4), baseline);
    }

    #[test]
    fn messages_actually_cross_shards() {
        let mut windows = build(4);
        let stats = windows.run(1);
        assert!(stats.messages > 0, "toy model must exercise the outboxes");
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let windows = build(2);
        let (worlds, _) = windows.into_worlds();
        let site_shard = assign_blocks(SITES as usize, 2);
        let _ = TimeWindows::new(worlds, site_shard, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "only 2 shards exist")]
    fn out_of_range_site_assignment_is_rejected() {
        let windows = build(2);
        let (worlds, _) = windows.into_worlds();
        let _ = TimeWindows::new(worlds, vec![0, 1, 2], LOOKAHEAD);
    }

    #[test]
    fn assign_blocks_is_contiguous_and_balanced() {
        assert_eq!(assign_blocks(5, 2), vec![0, 0, 0, 1, 1]);
        assert_eq!(assign_blocks(4, 4), vec![0, 1, 2, 3]);
        assert_eq!(assign_blocks(3, 8), vec![0, 1, 2]);
        assert_eq!(assign_blocks(0, 3), Vec::<u32>::new());
        assert_eq!(assign_blocks(6, 1), vec![0; 6]);
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let expected: Vec<i32> = (0..17).map(|i| i * i).collect();
        assert_eq!(run_jobs(4, jobs), expected);
        let jobs: Vec<_> = (0..17).map(|i| move || i * i).collect();
        assert_eq!(run_jobs(1, jobs), expected);
    }

    #[test]
    fn worker_budget_nests_and_restores() {
        let outer = worker_budget();
        with_worker_budget(3, || {
            assert_eq!(worker_budget(), 3);
            with_worker_budget(1, || assert_eq!(worker_budget(), 1));
            assert_eq!(worker_budget(), 3);
        });
        assert_eq!(worker_budget(), outer);
    }

    #[test]
    fn outbox_sequences_per_source_site() {
        let mut outbox: Outbox<u64> = Outbox::new(3);
        outbox.send(0, 1, SimTime::from_secs(1), 10);
        outbox.send(2, 1, SimTime::from_secs(1), 20);
        outbox.send(0, 2, SimTime::from_secs(2), 30);
        let seqs: Vec<(u32, u64)> = outbox.staged.iter().map(|(_, d)| (d.src, d.seq)).collect();
        assert_eq!(seqs, vec![(0, 0), (2, 0), (0, 1)]);
    }
}
