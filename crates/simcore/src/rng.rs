//! Deterministic, splittable pseudo-random number generation.
//!
//! Reproducibility is a core requirement of the kernel: a simulation run is a
//! pure function of its configuration and a single `u64` seed. To keep that
//! property as models grow, the generator is *splittable*: every entity
//! derives its own independent stream ([`SimRng::derive`]), so adding a new
//! consumer of randomness does not perturb the draws seen by existing ones.
//!
//! The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA'14) — a
//! small, fast generator with 64-bit state whose output passes BigCrush when
//! used as intended. It is *not* cryptographically secure, which is fine: the
//! threat-model code in higher layers models attacker success statistically,
//! not adversarially against the RNG.

/// Golden-ratio increment used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic, splittable random number generator.
///
/// # Examples
///
/// ```
/// use elc_simcore::rng::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Derived streams are independent of the parent's position.
/// let mut s1 = a.derive("students");
/// let mut s2 = a.derive("students");
/// assert_eq!(s1.next_u64(), s2.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    /// Identifies the stream; never changes after construction/derivation.
    stream: u64,
    /// Position within the stream; advances on every draw.
    counter: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    ///
    /// Equal seeds yield identical streams on every platform.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        // Scramble the seed once so that small consecutive seeds (0, 1, 2…)
        // do not produce visibly correlated first draws.
        SimRng {
            stream: mix(seed ^ GOLDEN_GAMMA),
            counter: 0,
        }
    }

    /// Derives an independent stream identified by `label`.
    ///
    /// Derivation depends only on the *seed lineage* and the label, not on
    /// how many numbers the parent has produced, so instrumentation that
    /// draws extra randomness never shifts sibling streams.
    #[must_use]
    pub fn derive(&self, label: &str) -> SimRng {
        SimRng {
            stream: mix(self.stream ^ fnv1a(label.as_bytes())),
            counter: 0,
        }
    }

    /// Derives an independent stream identified by an integer, e.g. an
    /// entity index.
    #[must_use]
    pub fn derive_u64(&self, index: u64) -> SimRng {
        SimRng {
            stream: mix(self.stream ^ mix(index.wrapping_add(GOLDEN_GAMMA))),
            counter: 0,
        }
    }

    /// Produces the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        mix(self
            .stream
            .wrapping_add(self.counter.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// Produces a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Produces a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        // Lemire (2019): unbiased bounded integers without division in the
        // common case.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= low.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Produces a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi, got {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Produces a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "range_f64 requires lo <= hi, got {lo}..{hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix of the state.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to turn stream labels into seeds.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_position_independent() {
        let mut parent = SimRng::seed(1);
        let before = parent.derive("x");
        let _ = parent.next_u64(); // advance the parent
        let after = parent.derive("x");
        assert_eq!(before, after);
    }

    #[test]
    fn derived_labels_are_independent() {
        let parent = SimRng::seed(1);
        let mut a = parent.derive("a");
        let mut b = parent.derive("b");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_u64_distinct_indices() {
        let parent = SimRng::seed(1);
        let mut a = parent.derive_u64(0);
        let mut b = parent.derive_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SimRng::seed(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_covers_all_values() {
        let mut rng = SimRng::seed(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn next_below_zero_panics() {
        SimRng::seed(0).next_below(0);
    }

    #[test]
    fn range_u64_inclusive_bounds() {
        let mut rng = SimRng::seed(13);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2_000 {
            let x = rng.range_u64(5, 8);
            assert!((5..=8).contains(&x));
            hit_lo |= x == 5;
            hit_hi |= x == 8;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn range_u64_degenerate() {
        let mut rng = SimRng::seed(13);
        assert_eq!(rng.range_u64(4, 4), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::seed(19);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn pick_and_empty_pick() {
        let mut rng = SimRng::seed(23);
        let items = [1, 2, 3];
        assert!(items.contains(rng.pick(&items).unwrap()));
        let empty: [i32; 0] = [];
        assert!(rng.pick(&empty).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
        // Check in place (no sort-copy): re-sorting recovers the identity.
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn mix_avalanches() {
        // mix is bijective with a fixed point at 0; check that nearby inputs
        // land far apart.
        assert_ne!(mix(1), 1);
        assert_ne!(mix(1), mix(2));
        assert!((mix(1) ^ mix(2)).count_ones() > 16);
    }

    #[test]
    fn fnv_distinguishes_labels() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
