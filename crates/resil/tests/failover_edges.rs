//! Edge-case coverage for `HybridFailover::probe`/`route`: the exact
//! cooldown boundary, a primary recovering mid-cooldown, and switch
//! accounting under repeated flaps.

use elc_deploy::hybrid::FailoverPlan;
use elc_resil::breaker::{BreakerState, CircuitBreaker};
use elc_resil::failover::{HybridFailover, Route};
use elc_simcore::time::{SimDuration, SimTime};

const COOLDOWN_S: u64 = 300;

fn failover() -> HybridFailover {
    HybridFailover::new(
        CircuitBreaker::new("private-site", 1, SimDuration::from_mins(5)),
        FailoverPlan::private_to_public(0.6),
    )
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn probe_exactly_at_the_cooldown_boundary_is_the_first_admitted_probe() {
    let mut f = failover();
    f.probe(secs(0), false);
    assert_eq!(f.route(secs(0)), Route::Backup);
    // One nanosecond short of the cooldown the breaker is still open: a
    // healthy probe is recorded but cannot close it.
    let almost = secs(COOLDOWN_S) - SimDuration::from_nanos(1);
    f.probe(almost, true);
    assert_eq!(f.route(almost), Route::Backup);
    // At exactly opened_at + cooldown the breaker is half-open and the
    // healthy probe wins the route back — the boundary is inclusive.
    f.probe(secs(COOLDOWN_S), true);
    assert_eq!(f.route(secs(COOLDOWN_S)), Route::Primary);
    assert_eq!(f.switches(), 2);
}

#[test]
fn primary_recovering_mid_cooldown_must_wait_out_the_window() {
    let mut f = failover();
    f.probe(secs(0), false);
    let _ = f.route(secs(0));
    // The primary is healthy again 30 s in, and stays healthy: every
    // probe until the cooldown elapses still routes to backup.
    for s in (30..COOLDOWN_S).step_by(30) {
        f.probe(secs(s), true);
        assert_eq!(f.route(secs(s)), Route::Backup, "at {s}s");
    }
    f.probe(secs(COOLDOWN_S), true);
    assert_eq!(f.route(secs(COOLDOWN_S)), Route::Primary);
    // Exactly one round trip: primary → backup → primary.
    assert_eq!(f.switches(), 2);
    assert_eq!(f.breaker().trips(), 1);
}

#[test]
fn repeated_flaps_count_every_direction_and_retrip() {
    let mut f = failover();
    let flaps = 4u64;
    for k in 0..flaps {
        // Each cycle: fail at t, recover at the cooldown boundary.
        let down_at = k * 2 * COOLDOWN_S;
        f.probe(secs(down_at), false);
        assert_eq!(f.route(secs(down_at)), Route::Backup);
        let up_at = down_at + COOLDOWN_S;
        f.probe(secs(up_at), true);
        assert_eq!(f.route(secs(up_at)), Route::Primary);
    }
    // Every flap is two switches (out and back) and one trip.
    assert_eq!(f.switches(), 2 * flaps as u32);
    assert_eq!(f.breaker().trips(), flaps as u32);
}

#[test]
fn flap_during_half_open_keeps_backup_and_restarts_the_cooldown() {
    let mut f = failover();
    f.probe(secs(0), false);
    let _ = f.route(secs(0));
    // The half-open probe fails: re-trip, route stays backup, and the
    // cooldown clock restarts from the re-trip instant.
    f.probe(secs(COOLDOWN_S), false);
    assert_eq!(f.route(secs(COOLDOWN_S)), Route::Backup);
    assert_eq!(f.breaker().trips(), 2);
    // A healthy probe one cooldown after the *first* trip would be too
    // early; only opened_at + cooldown from the re-trip admits it.
    f.probe(secs(2 * COOLDOWN_S) - SimDuration::from_nanos(1), true);
    assert_eq!(
        f.route(secs(2 * COOLDOWN_S) - SimDuration::from_nanos(1)),
        Route::Backup
    );
    f.probe(secs(2 * COOLDOWN_S), true);
    assert_eq!(f.route(secs(2 * COOLDOWN_S)), Route::Primary);
    assert_eq!(f.switches(), 2, "route changed exactly once each way");
}

#[test]
fn multi_probe_breaker_holds_backup_until_the_streak_completes() {
    // A failover built on a 3-probe breaker keeps burst routing through
    // the first two healthy probes after cooldown.
    let breaker = CircuitBreaker::new("private-site", 1, SimDuration::from_mins(5))
        .with_probe_successes(3)
        .unwrap();
    let mut f = HybridFailover::new(breaker, FailoverPlan::private_to_public(0.6));
    f.probe(secs(0), false);
    let _ = f.route(secs(0));
    for (i, s) in [COOLDOWN_S, COOLDOWN_S + 60].iter().enumerate() {
        f.probe(secs(*s), true);
        assert_eq!(f.route(secs(*s)), Route::Backup, "probe {i} must not close");
    }
    f.probe(secs(COOLDOWN_S + 120), true);
    assert_eq!(f.route(secs(COOLDOWN_S + 120)), Route::Primary);
    let mut b = f.breaker().clone();
    assert_eq!(b.state_at(secs(COOLDOWN_S + 120)), BreakerState::Closed);
}
