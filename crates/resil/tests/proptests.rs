//! Seed-derived property tests for the retry policy.
//!
//! No external property-testing crate: cases are generated from
//! `SimRng` streams, so every "random" case is reproducible from the
//! printed seed and the suite itself is deterministic.

use elc_elearn::request::RequestKind;
use elc_resil::retry::{RetryBudget, RetryPolicy};
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

/// Draws a valid random policy from the case rng.
fn arbitrary_policy(rng: &mut SimRng) -> RetryPolicy {
    let base = SimDuration::from_millis(rng.range_u64(1, 5_000));
    let cap = base + SimDuration::from_millis(rng.range_u64(0, 120_000));
    let attempts = rng.range_u64(1, 12) as u32;
    RetryPolicy::new(base, cap, attempts)
}

#[test]
fn backoff_always_lands_between_base_and_cap() {
    for case in 0..200u64 {
        let mut case_rng = SimRng::seed(0xB0FF).derive_u64(case);
        let policy = arbitrary_policy(&mut case_rng);
        let mut draw_rng = case_rng.derive("retry");
        let mut prev = policy.base();
        for attempt in 1..40 {
            let b = policy.backoff(SimTime::ZERO, &mut draw_rng, prev, attempt);
            assert!(
                b >= policy.base() && b <= policy.cap(),
                "case {case}: backoff {b} outside [{}, {}]",
                policy.base(),
                policy.cap()
            );
            prev = b;
        }
    }
}

#[test]
fn backoff_schedule_length_tracks_the_attempt_budget() {
    for case in 0..100u64 {
        let mut case_rng = SimRng::seed(0x5CED).derive_u64(case);
        let policy = arbitrary_policy(&mut case_rng);
        let mut draw_rng = case_rng.derive("retry");
        let schedule = policy.backoff_schedule(SimTime::ZERO, &mut draw_rng);
        assert_eq!(
            schedule.len(),
            policy.max_attempts() as usize - 1,
            "case {case}: one delay per retry, none for the first try"
        );
    }
}

#[test]
fn identical_seed_lineage_gives_byte_identical_schedules() {
    let policy = RetryPolicy::standard();
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let a = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(seed).derive("retry"));
        let b = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(seed).derive("retry"));
        assert_eq!(a, b, "seed {seed}: same lineage must replay exactly");
        let nanos_a: Vec<u64> = a.iter().map(|d| d.as_nanos()).collect();
        let nanos_b: Vec<u64> = b.iter().map(|d| d.as_nanos()).collect();
        assert_eq!(nanos_a, nanos_b);
    }
    // And distinct lineages diverge — the label is load-bearing.
    let a = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(7).derive("retry"));
    let c = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(7).derive("transfer"));
    assert_ne!(a, c);
}

#[test]
fn budget_tokens_decrease_monotonically_under_spend() {
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xB4D6).derive_u64(case);
        let max = rng.range_f64(1.0, 50.0);
        let mut budget = RetryBudget::new(max, 0.0);
        let mut last = budget.tokens();
        let mut spends = 0u32;
        while budget.try_spend() {
            assert!(
                budget.tokens() < last,
                "case {case}: spend must strictly drain"
            );
            last = budget.tokens();
            spends += 1;
            assert!(
                spends <= max.ceil() as u32 + 1,
                "case {case}: runaway spend"
            );
        }
        assert!(
            budget.tokens() < 1.0,
            "case {case}: refusal only when empty"
        );
    }
}

#[test]
fn budget_refill_never_exceeds_ceiling_under_any_interleaving() {
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xF111).derive_u64(case);
        let mut budget = RetryBudget::new(10.0, 0.5);
        for _ in 0..500 {
            if rng.chance(0.5) {
                let _ = budget.try_spend();
            } else {
                budget.on_success();
            }
            assert!(budget.tokens() <= 10.0, "case {case}: ceiling breached");
            assert!(budget.tokens() >= 0.0, "case {case}: tokens went negative");
        }
    }
}

#[test]
fn idempotency_gate_is_total_over_all_kinds() {
    let default = RetryPolicy::standard();
    let relaxed = RetryPolicy::standard().retry_writes(true);
    for &kind in RequestKind::ALL.iter() {
        assert_eq!(
            default.allows(kind),
            !kind.is_write(),
            "{kind}: default gate must mirror is_write"
        );
        assert!(relaxed.allows(kind), "{kind}: relaxed gate admits all");
    }
}
