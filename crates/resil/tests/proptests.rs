//! Seed-derived property tests for the retry policy and the chaos
//! fault timeline.
//!
//! No external property-testing crate: cases are generated from
//! `SimRng` streams, so every "random" case is reproducible from the
//! printed seed and the suite itself is deterministic.

use elc_elearn::request::RequestKind;
use elc_resil::chaos::{Campaign, ChaosSpec, FaultTimeline};
use elc_resil::retry::{RetryBudget, RetryPolicy};
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

/// Draws a valid random policy from the case rng.
fn arbitrary_policy(rng: &mut SimRng) -> RetryPolicy {
    let base = SimDuration::from_millis(rng.range_u64(1, 5_000));
    let cap = base + SimDuration::from_millis(rng.range_u64(0, 120_000));
    let attempts = rng.range_u64(1, 12) as u32;
    RetryPolicy::new(base, cap, attempts)
}

#[test]
fn backoff_always_lands_between_base_and_cap() {
    for case in 0..200u64 {
        let mut case_rng = SimRng::seed(0xB0FF).derive_u64(case);
        let policy = arbitrary_policy(&mut case_rng);
        let mut draw_rng = case_rng.derive("retry");
        let mut prev = policy.base();
        for attempt in 1..40 {
            let b = policy.backoff(SimTime::ZERO, &mut draw_rng, prev, attempt);
            assert!(
                b >= policy.base() && b <= policy.cap(),
                "case {case}: backoff {b} outside [{}, {}]",
                policy.base(),
                policy.cap()
            );
            prev = b;
        }
    }
}

#[test]
fn backoff_schedule_length_tracks_the_attempt_budget() {
    for case in 0..100u64 {
        let mut case_rng = SimRng::seed(0x5CED).derive_u64(case);
        let policy = arbitrary_policy(&mut case_rng);
        let mut draw_rng = case_rng.derive("retry");
        let schedule = policy.backoff_schedule(SimTime::ZERO, &mut draw_rng);
        assert_eq!(
            schedule.len(),
            policy.max_attempts() as usize - 1,
            "case {case}: one delay per retry, none for the first try"
        );
    }
}

#[test]
fn identical_seed_lineage_gives_byte_identical_schedules() {
    let policy = RetryPolicy::standard();
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let a = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(seed).derive("retry"));
        let b = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(seed).derive("retry"));
        assert_eq!(a, b, "seed {seed}: same lineage must replay exactly");
        let nanos_a: Vec<u64> = a.iter().map(|d| d.as_nanos()).collect();
        let nanos_b: Vec<u64> = b.iter().map(|d| d.as_nanos()).collect();
        assert_eq!(nanos_a, nanos_b);
    }
    // And distinct lineages diverge — the label is load-bearing.
    let a = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(7).derive("retry"));
    let c = policy.backoff_schedule(SimTime::ZERO, &mut SimRng::seed(7).derive("transfer"));
    assert_ne!(a, c);
}

#[test]
fn budget_tokens_decrease_monotonically_under_spend() {
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xB4D6).derive_u64(case);
        let max = rng.range_f64(1.0, 50.0);
        let mut budget = RetryBudget::new(max, 0.0);
        let mut last = budget.tokens();
        let mut spends = 0u32;
        while budget.try_spend() {
            assert!(
                budget.tokens() < last,
                "case {case}: spend must strictly drain"
            );
            last = budget.tokens();
            spends += 1;
            assert!(
                spends <= max.ceil() as u32 + 1,
                "case {case}: runaway spend"
            );
        }
        assert!(
            budget.tokens() < 1.0,
            "case {case}: refusal only when empty"
        );
    }
}

#[test]
fn budget_refill_never_exceeds_ceiling_under_any_interleaving() {
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xF111).derive_u64(case);
        let mut budget = RetryBudget::new(10.0, 0.5);
        for _ in 0..500 {
            if rng.chance(0.5) {
                let _ = budget.try_spend();
            } else {
                budget.on_success();
            }
            assert!(budget.tokens() <= 10.0, "case {case}: ceiling breached");
            assert!(budget.tokens() >= 0.0, "case {case}: tokens went negative");
        }
    }
}

/// Draws a random multi-campaign spec from the case rng. Every campaign
/// kind can appear, with anchors and knobs spread over their full
/// domains.
fn arbitrary_spec(rng: &mut SimRng) -> ChaosSpec {
    let n = rng.range_u64(1, 5) as usize;
    let campaigns = (0..n)
        .map(|_| match rng.range_u64(0, 4) {
            0 => Campaign::OutageStorm {
                at: rng.range_f64(0.0, 1.0),
                count: rng.range_u64(1, 8) as u32,
                mean_mins: rng.range_f64(0.5, 30.0),
            },
            1 => Campaign::HostCascade {
                at: rng.range_f64(0.0, 1.0),
                count: rng.range_u64(1, 6) as u32,
            },
            2 => Campaign::SiteDisaster {
                at: rng.range_f64(0.0, 1.0),
            },
            _ => Campaign::RegionLoss {
                at: rng.range_f64(0.0, 1.0),
                region: rng.range_u64(0, 3) as u32,
                mins: rng.range_f64(1.0, 120.0),
            },
        })
        .collect();
    ChaosSpec::from_campaigns(campaigns)
}

#[test]
fn timeline_windows_are_sorted_disjoint_and_clipped_to_the_horizon() {
    let horizon = SimDuration::from_hours(24);
    let end_of_time = SimTime::ZERO + horizon;
    for case in 0..150u64 {
        let mut case_rng = SimRng::seed(0xC4A0).derive_u64(case);
        let spec = arbitrary_spec(&mut case_rng);
        let tl = FaultTimeline::generate(&spec, &case_rng.derive("chaos"), horizon);
        let mut prev_end = SimTime::ZERO;
        for &(start, end) in tl.storm_windows() {
            assert!(start < end, "case {case}: empty storm window survived");
            assert!(
                start >= prev_end,
                "case {case}: storm windows overlap or are unsorted"
            );
            assert!(end <= end_of_time, "case {case}: storm past the horizon");
            prev_end = end;
        }
        for &(_, start, end) in tl.region_loss_windows() {
            assert!(start < end, "case {case}: empty region-loss window");
            assert!(
                end <= end_of_time,
                "case {case}: region loss past the horizon"
            );
        }
    }
}

#[test]
fn timeline_queries_are_monotone_and_agree_with_the_windows() {
    let horizon = SimDuration::from_hours(24);
    for case in 0..150u64 {
        let mut case_rng = SimRng::seed(0xC4A1).derive_u64(case);
        let spec = arbitrary_spec(&mut case_rng);
        let tl = FaultTimeline::generate(&spec, &case_rng.derive("chaos"), horizon);

        // Scan the whole horizon on a coarse grid plus every window edge.
        let mut probes: Vec<SimTime> = (0..=288)
            .map(|i| SimTime::ZERO + SimDuration::from_mins(5 * i))
            .collect();
        for &(s, e) in tl.storm_windows() {
            probes.extend([s, e]);
        }
        for &(_, s, e) in tl.region_loss_windows() {
            probes.extend([s, e]);
        }
        probes.sort();

        let mut prev_crashed = 0u32;
        let mut prev_disaster = false;
        for &t in &probes {
            let crashed = tl.crashed_hosts_by(t);
            assert!(
                crashed >= prev_crashed,
                "case {case}: crashed_hosts_by went backwards at {t}"
            );
            prev_crashed = crashed;
            let disaster = tl.disaster_by(t);
            assert!(
                disaster >= prev_disaster,
                "case {case}: disaster_by un-struck at {t}"
            );
            prev_disaster = disaster;
            // storm_at answers exactly per the merged windows.
            let in_window = tl.storm_windows().iter().any(|&(s, e)| s <= t && t < e);
            assert_eq!(tl.storm_at(t), in_window, "case {case}: storm_at({t})");
            // region_lost_at answers exactly per the region windows.
            for region in 0..3u32 {
                let lost = tl
                    .region_loss_windows()
                    .iter()
                    .any(|&(r, s, e)| r == region && s <= t && t < e);
                assert_eq!(
                    tl.region_lost_at(region, t),
                    lost,
                    "case {case}: region_lost_at({region}, {t})"
                );
            }
        }
    }
}

#[test]
fn timeline_is_identical_under_rng_re_derive() {
    let horizon = SimDuration::from_hours(24);
    for case in 0..150u64 {
        let spec = arbitrary_spec(&mut SimRng::seed(0xC4A2).derive_u64(case));
        let a = FaultTimeline::generate(&spec, &SimRng::seed(case).derive("chaos"), horizon);
        let b = FaultTimeline::generate(&spec, &SimRng::seed(case).derive("chaos"), horizon);
        assert_eq!(a, b, "case {case}: same lineage must replay exactly");
        // And the grammar round-trips every arbitrary spec exactly
        // (Rust's f64 Display is shortest-exact, so anchors survive).
        let reparsed: ChaosSpec = spec.to_string().parse().unwrap();
        assert_eq!(reparsed, spec, "case {case}: display/parse round-trip");
    }
}

#[test]
fn idempotency_gate_is_total_over_all_kinds() {
    let default = RetryPolicy::standard();
    let relaxed = RetryPolicy::standard().retry_writes(true);
    for &kind in RequestKind::ALL.iter() {
        assert_eq!(
            default.allows(kind),
            !kind.is_write(),
            "{kind}: default gate must mirror is_write"
        );
        assert!(relaxed.allows(kind), "{kind}: relaxed gate admits all");
    }
}
