//! Admission control: shed cheap traffic before it starves writes.
//!
//! When demand exceeds capacity, *something* is not served; admission
//! control chooses what. Each request kind gets a utilization threshold —
//! once offered load divided by capacity (ρ) exceeds a kind's threshold,
//! new requests of that kind are refused at the door. Thresholds are
//! ordered by pedagogical harm: `VideoChunk` replays and `ForumRead`
//! refreshes shed first, interactive quiz traffic much later, and
//! `QuizSubmit` never (its threshold is infinite) — losing a submitted
//! exam answer is the §III worst case the whole stack exists to avoid.

use elc_elearn::request::RequestKind;
use elc_simcore::time::SimTime;
use elc_trace::{Field, Level};

use crate::TRACE_TARGET;

/// Why an [`AdmissionController`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// A threshold was negative or NaN for the named kind.
    BadThreshold(RequestKind, f64),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::BadThreshold(kind, rho) => {
                write!(f, "shed threshold for {kind} must be >= 0, got {rho}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Utilization-ordered load shedding. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionController {
    thresholds: [(RequestKind, f64); RequestKind::ALL.len()],
    shed: u64,
}

impl AdmissionController {
    /// Creates a controller from explicit `(kind, ρ-threshold)` overrides;
    /// kinds missing from `pairs` keep the
    /// [`AdmissionController::standard`] thresholds. A threshold of
    /// `f64::INFINITY` means "never shed".
    ///
    /// # Errors
    ///
    /// Rejects negative or NaN thresholds.
    pub fn try_new(pairs: &[(RequestKind, f64)]) -> Result<Self, AdmissionError> {
        let mut ctl = AdmissionController::standard();
        for &(kind, rho) in pairs {
            if rho.is_nan() || rho < 0.0 {
                return Err(AdmissionError::BadThreshold(kind, rho));
            }
            for slot in &mut ctl.thresholds {
                if slot.0 == kind {
                    slot.1 = rho;
                }
            }
        }
        Ok(ctl)
    }

    /// Panicking counterpart of [`AdmissionController::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(pairs: &[(RequestKind, f64)]) -> Self {
        AdmissionController::try_new(pairs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The standard shed ladder, cheapest traffic first.
    #[must_use]
    pub fn standard() -> Self {
        use RequestKind::*;
        let t = |kind| match kind {
            VideoChunk => 0.70,
            ForumRead => 0.80,
            Download => 0.85,
            CoursePage => 0.90,
            Login => 0.95,
            QuizFetch => 1.00,
            ForumPost => 1.05,
            Upload => 1.10,
            QuizSubmit => f64::INFINITY,
        };
        let mut thresholds = [(Login, 0.0); RequestKind::ALL.len()];
        for (slot, &kind) in thresholds.iter_mut().zip(RequestKind::ALL.iter()) {
            *slot = (kind, t(kind));
        }
        AdmissionController {
            thresholds,
            shed: 0,
        }
    }

    /// The ρ threshold above which `kind` is shed.
    #[must_use]
    pub fn threshold(&self, kind: RequestKind) -> f64 {
        self.thresholds
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .expect("every RequestKind has a threshold")
    }

    /// True if a request of `kind` is admitted at utilization `rho`.
    #[must_use]
    pub fn admits(&self, kind: RequestKind, rho: f64) -> bool {
        rho <= self.threshold(kind)
    }

    /// Kinds in shed order: lowest threshold first, `ALL` order breaking
    /// ties. Models shed along this ladder, recomputing ρ as load drops.
    #[must_use]
    pub fn shed_order(&self) -> Vec<RequestKind> {
        let mut kinds = self.thresholds;
        kinds.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("thresholds are never NaN"));
        kinds.iter().map(|(k, _)| *k).collect()
    }

    /// Records `count` shed requests of `kind` at `now`, tracing a
    /// `shed.request` instant.
    pub fn record_shed(&mut self, now: SimTime, kind: RequestKind, count: u64) {
        if count == 0 {
            return;
        }
        self.shed += count;
        if elc_trace::enabled(TRACE_TARGET, Level::Info) {
            elc_trace::instant(
                now.as_nanos(),
                TRACE_TARGET,
                "shed.request",
                Level::Info,
                &[
                    Field::str("kind", kind.to_string()),
                    Field::u64("count", count),
                ],
            );
        }
    }

    /// Total requests shed so far.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed
    }
}

impl Default for AdmissionController {
    fn default() -> Self {
        AdmissionController::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiz_submit_is_never_shed() {
        let c = AdmissionController::standard();
        assert!(c.admits(RequestKind::QuizSubmit, 10.0));
        assert!(c.admits(RequestKind::QuizSubmit, 1e9));
    }

    #[test]
    fn video_sheds_before_any_write() {
        let c = AdmissionController::standard();
        // At moderate overload video is gone but every write still admits.
        let rho = 0.75;
        assert!(!c.admits(RequestKind::VideoChunk, rho));
        assert!(c.admits(RequestKind::QuizSubmit, rho));
        assert!(c.admits(RequestKind::Upload, rho));
        assert!(c.admits(RequestKind::ForumPost, rho));
    }

    #[test]
    fn shed_order_starts_cheap_and_ends_with_quiz_submit() {
        let order = AdmissionController::standard().shed_order();
        assert_eq!(order.first(), Some(&RequestKind::VideoChunk));
        assert_eq!(order.get(1), Some(&RequestKind::ForumRead));
        assert_eq!(order.last(), Some(&RequestKind::QuizSubmit));
    }

    #[test]
    fn overrides_apply_and_bad_thresholds_reject() {
        let c = AdmissionController::new(&[(RequestKind::VideoChunk, 0.5)]);
        assert!(!c.admits(RequestKind::VideoChunk, 0.6));
        assert!(matches!(
            AdmissionController::try_new(&[(RequestKind::Login, -0.1)]),
            Err(AdmissionError::BadThreshold(RequestKind::Login, _))
        ));
        assert!(AdmissionController::try_new(&[(RequestKind::Login, f64::NAN)]).is_err());
    }

    #[test]
    fn record_shed_counts_and_traces() {
        use elc_trace::{TraceFilter, Tracer};
        let (total, tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Info)), || {
                let mut c = AdmissionController::standard();
                c.record_shed(SimTime::from_secs(7), RequestKind::VideoChunk, 12);
                c.record_shed(SimTime::from_secs(8), RequestKind::ForumRead, 0);
                c.shed_total()
            });
        assert_eq!(total, 12);
        assert_eq!(tracer.len(), 1, "zero-count sheds must not trace");
        let e = tracer.events().next().unwrap();
        assert_eq!(tracer.resolve(e.name), "shed.request");
        let json = elc_trace::export::jsonl_string(&tracer, &[]);
        assert!(json.contains("\"kind\":\"video-chunk\""));
    }
}
