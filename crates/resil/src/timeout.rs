//! Per-request-kind client deadlines.
//!
//! A timeout converts an open-ended wait into a bounded one, which is what
//! makes retries and failover *possible*: a client that waits forever
//! never reaches the retry loop. Deadlines are per
//! [`RequestKind`](elc_elearn::request::RequestKind) because the
//! tolerable wait differs by an order of magnitude between an interactive
//! quiz fetch and a bulk upload.

use elc_elearn::request::RequestKind;
use elc_simcore::time::SimDuration;

/// Why a [`TimeoutPolicy`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutError {
    /// A deadline was zero for the named kind.
    ZeroDeadline(RequestKind),
}

impl std::fmt::Display for TimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeoutError::ZeroDeadline(kind) => {
                write!(f, "deadline for {kind} must be positive")
            }
        }
    }
}

impl std::error::Error for TimeoutError {}

/// Per-kind deadlines. Interactive kinds get tight deadlines, bulk
/// transfers loose ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutPolicy {
    deadlines: [(RequestKind, SimDuration); RequestKind::ALL.len()],
}

impl TimeoutPolicy {
    /// Creates a policy from an explicit deadline per kind. Kinds missing
    /// from `pairs` fall back to the [`TimeoutPolicy::standard`] value.
    ///
    /// # Errors
    ///
    /// Rejects any zero deadline.
    pub fn try_new(pairs: &[(RequestKind, SimDuration)]) -> Result<Self, TimeoutError> {
        let mut policy = TimeoutPolicy::standard();
        for &(kind, deadline) in pairs {
            if deadline.is_zero() {
                return Err(TimeoutError::ZeroDeadline(kind));
            }
            for slot in &mut policy.deadlines {
                if slot.0 == kind {
                    slot.1 = deadline;
                }
            }
        }
        Ok(policy)
    }

    /// Panicking counterpart of [`TimeoutPolicy::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(pairs: &[(RequestKind, SimDuration)]) -> Self {
        TimeoutPolicy::try_new(pairs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The standard deadlines: 5 s for interactive page/quiz traffic,
    /// 10 s for login and video chunks, 30 s for forum writes, 120 s for
    /// bulk transfers.
    #[must_use]
    pub fn standard() -> Self {
        use RequestKind::*;
        let d = |kind| match kind {
            CoursePage | QuizFetch | QuizSubmit | ForumRead => SimDuration::from_secs(5),
            Login | VideoChunk => SimDuration::from_secs(10),
            ForumPost => SimDuration::from_secs(30),
            Upload | Download => SimDuration::from_secs(120),
        };
        let mut deadlines = [(Login, SimDuration::ZERO); RequestKind::ALL.len()];
        for (slot, &kind) in deadlines.iter_mut().zip(RequestKind::ALL.iter()) {
            *slot = (kind, d(kind));
        }
        TimeoutPolicy { deadlines }
    }

    /// The deadline for `kind`.
    #[must_use]
    pub fn deadline(&self, kind: RequestKind) -> SimDuration {
        self.deadlines
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, d)| *d)
            .expect("every RequestKind has a deadline")
    }

    /// True if a request of `kind` that took `latency` blew its deadline.
    #[must_use]
    pub fn is_breach(&self, kind: RequestKind, latency: SimDuration) -> bool {
        latency > self.deadline(kind)
    }
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        TimeoutPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_every_kind_positively() {
        let p = TimeoutPolicy::standard();
        for &kind in RequestKind::ALL.iter() {
            assert!(!p.deadline(kind).is_zero(), "{kind} has a zero deadline");
        }
    }

    #[test]
    fn interactive_deadlines_are_tighter_than_bulk() {
        let p = TimeoutPolicy::standard();
        assert!(p.deadline(RequestKind::QuizFetch) < p.deadline(RequestKind::Upload));
        assert!(p.deadline(RequestKind::CoursePage) < p.deadline(RequestKind::Download));
    }

    #[test]
    fn overrides_apply_and_others_keep_standard() {
        let p = TimeoutPolicy::new(&[(RequestKind::Upload, SimDuration::from_secs(600))]);
        assert_eq!(p.deadline(RequestKind::Upload), SimDuration::from_secs(600));
        assert_eq!(
            p.deadline(RequestKind::QuizFetch),
            TimeoutPolicy::standard().deadline(RequestKind::QuizFetch)
        );
    }

    #[test]
    fn zero_deadline_is_rejected() {
        assert_eq!(
            TimeoutPolicy::try_new(&[(RequestKind::Login, SimDuration::ZERO)]),
            Err(TimeoutError::ZeroDeadline(RequestKind::Login))
        );
    }

    #[test]
    fn breach_is_strictly_after_the_deadline() {
        let p = TimeoutPolicy::standard();
        let d = p.deadline(RequestKind::QuizSubmit);
        assert!(!p.is_breach(RequestKind::QuizSubmit, d));
        assert!(p.is_breach(RequestKind::QuizSubmit, d + SimDuration::from_nanos(1)));
    }
}
