//! Retry policy: exponential backoff with decorrelated jitter, bounded
//! attempt budgets, and idempotency gating.
//!
//! §III's network risk is a *transient* failure mode — a dropped
//! connection usually comes back — so the right client response is to try
//! again, but carefully: synchronized retries amplify an outage into a
//! storm, and replaying a non-idempotent write (a quiz submission, an
//! assignment upload) risks duplicating the one thing that must not be
//! corrupted. [`RetryPolicy`] encodes all three concerns: *when* to retry
//! (attempt budget + idempotency gate), *how long* to wait (decorrelated
//! jitter, the AWS-style `min(cap, uniform(base, 3·prev))` scheme), and
//! [`RetryBudget`] caps the global retry volume.

use elc_elearn::request::RequestKind;
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::TRACE_TARGET;

/// Why a [`RetryPolicy`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryError {
    /// The base backoff was zero.
    ZeroBase,
    /// The cap was below the base backoff.
    CapBelowBase,
    /// The attempt budget was zero (not even a first attempt).
    NoAttempts,
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::ZeroBase => write!(f, "base backoff must be positive"),
            RetryError::CapBelowBase => write!(f, "backoff cap must be >= base"),
            RetryError::NoAttempts => write!(f, "attempt budget must be >= 1"),
        }
    }
}

impl std::error::Error for RetryError {}

/// When and how a failed request is retried. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    base: SimDuration,
    cap: SimDuration,
    max_attempts: u32,
    retry_writes: bool,
}

impl RetryPolicy {
    /// Creates a policy: first backoff `base`, backoffs capped at `cap`,
    /// at most `max_attempts` total attempts (first try included).
    ///
    /// # Errors
    ///
    /// Rejects a zero base, a cap below the base, or a zero attempt
    /// budget.
    pub fn try_new(
        base: SimDuration,
        cap: SimDuration,
        max_attempts: u32,
    ) -> Result<Self, RetryError> {
        if base.is_zero() {
            return Err(RetryError::ZeroBase);
        }
        if cap < base {
            return Err(RetryError::CapBelowBase);
        }
        if max_attempts == 0 {
            return Err(RetryError::NoAttempts);
        }
        Ok(RetryPolicy {
            base,
            cap,
            max_attempts,
            retry_writes: false,
        })
    }

    /// Panicking counterpart of [`RetryPolicy::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(base: SimDuration, cap: SimDuration, max_attempts: u32) -> Self {
        RetryPolicy::try_new(base, cap, max_attempts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The standard client policy: 500 ms base, 30 s cap, 4 attempts.
    #[must_use]
    pub fn standard() -> Self {
        RetryPolicy::new(SimDuration::from_millis(500), SimDuration::from_secs(30), 4)
    }

    /// Opts writes into retrying too (for callers with server-side
    /// deduplication). Off by default: a blind replay of `QuizSubmit` or
    /// `Upload` risks duplicating the write.
    #[must_use]
    pub fn retry_writes(mut self, yes: bool) -> Self {
        self.retry_writes = yes;
        self
    }

    /// First backoff.
    #[must_use]
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// Backoff ceiling.
    #[must_use]
    pub fn cap(&self) -> SimDuration {
        self.cap
    }

    /// Total attempt budget, first try included.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// True if `kind` may be replayed at all (the idempotency gate).
    #[must_use]
    pub fn allows(&self, kind: RequestKind) -> bool {
        self.retry_writes || !kind.is_write()
    }

    /// True if a request of `kind` that has already consumed `attempts`
    /// attempts should be tried again.
    #[must_use]
    pub fn should_retry(&self, kind: RequestKind, attempts: u32) -> bool {
        self.allows(kind) && attempts < self.max_attempts
    }

    /// Draws the next backoff at sim time `now`: decorrelated jitter,
    /// `min(cap, uniform(base, 3·prev))`. Pass [`RetryPolicy::base`] as
    /// `prev` for the first retry and the returned value thereafter.
    ///
    /// Traced as a `retry.attempt` instant (`attempt` is 1-based over the
    /// *retries*, i.e. attempt 1 is the first replay).
    pub fn backoff(
        &self,
        now: SimTime,
        rng: &mut SimRng,
        prev: SimDuration,
        attempt: u32,
    ) -> SimDuration {
        let hi = SimDuration::from_nanos(prev.as_nanos().saturating_mul(3)).max(self.base);
        let span = (hi - self.base).as_nanos();
        let jittered = self.base + SimDuration::from_nanos(rng.range_u64(0, span));
        let next = jittered.min(self.cap);
        if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
            elc_trace::instant(
                now.as_nanos(),
                TRACE_TARGET,
                "retry.attempt",
                Level::Debug,
                &[
                    Field::u64("attempt", u64::from(attempt)),
                    Field::duration_ns("backoff", next.as_nanos()),
                ],
            );
        }
        next
    }

    /// The full backoff schedule for one request: `max_attempts - 1`
    /// delays, each drawn with [`RetryPolicy::backoff`]. Derive the rng
    /// per request (e.g. `rng.derive("retry")`) so the schedule is a pure
    /// function of the seed lineage.
    #[must_use]
    pub fn backoff_schedule(&self, now: SimTime, rng: &mut SimRng) -> Vec<SimDuration> {
        let mut prev = self.base;
        (1..self.max_attempts)
            .map(|attempt| {
                prev = self.backoff(now, rng, prev, attempt);
                prev
            })
            .collect()
    }
}

/// A token bucket over retries: every retry spends a token, every success
/// refills a fraction of one. When the bucket is empty the caller must
/// fail fast instead of retrying — the standard defence against retry
/// storms amplifying an outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    tokens: f64,
    max_tokens: f64,
    refill_per_success: f64,
}

impl RetryBudget {
    /// Creates a full bucket of `max_tokens`, refilling
    /// `refill_per_success` tokens per recorded success.
    ///
    /// # Panics
    ///
    /// Panics unless `max_tokens > 0` and `refill_per_success >= 0`, both
    /// finite.
    #[must_use]
    pub fn new(max_tokens: f64, refill_per_success: f64) -> Self {
        assert!(
            max_tokens.is_finite() && max_tokens > 0.0,
            "budget needs positive max tokens, got {max_tokens}"
        );
        assert!(
            refill_per_success.is_finite() && refill_per_success >= 0.0,
            "refill must be >= 0, got {refill_per_success}"
        );
        RetryBudget {
            tokens: max_tokens,
            max_tokens,
            refill_per_success,
        }
    }

    /// The standard budget: 10% of traffic may be retries.
    #[must_use]
    pub fn standard() -> Self {
        RetryBudget::new(100.0, 0.1)
    }

    /// Tokens currently available.
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Spends one token for a retry. Returns `false` (and spends nothing)
    /// when the bucket is empty.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Records a success, refilling the bucket toward its ceiling.
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + self.refill_per_success).min(self.max_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::standard()
    }

    #[test]
    fn try_new_rejects_each_bad_knob() {
        let s = SimDuration::from_secs(1);
        assert_eq!(
            RetryPolicy::try_new(SimDuration::ZERO, s, 3),
            Err(RetryError::ZeroBase)
        );
        assert_eq!(
            RetryPolicy::try_new(s, SimDuration::from_millis(10), 3),
            Err(RetryError::CapBelowBase)
        );
        assert_eq!(RetryPolicy::try_new(s, s, 0), Err(RetryError::NoAttempts));
        assert!(RetryPolicy::try_new(s, s, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "attempt budget")]
    fn new_panics_like_try_new_rejects() {
        let s = SimDuration::from_secs(1);
        let _ = RetryPolicy::new(s, s, 0);
    }

    #[test]
    fn idempotency_gate_blocks_writes() {
        let p = policy();
        assert!(p.allows(RequestKind::CoursePage));
        assert!(p.allows(RequestKind::QuizFetch));
        assert!(!p.allows(RequestKind::QuizSubmit));
        assert!(!p.allows(RequestKind::Upload));
        assert!(!p.allows(RequestKind::ForumPost));
        assert!(p.retry_writes(true).allows(RequestKind::QuizSubmit));
    }

    #[test]
    fn should_retry_respects_attempt_budget() {
        let p = policy();
        assert!(p.should_retry(RequestKind::Login, 1));
        assert!(p.should_retry(RequestKind::Login, 3));
        assert!(!p.should_retry(RequestKind::Login, 4));
        assert!(!p.should_retry(RequestKind::QuizSubmit, 1));
    }

    #[test]
    fn backoff_is_bounded_by_base_and_cap() {
        let p = policy();
        let mut rng = SimRng::seed(1).derive("retry");
        let mut prev = p.base();
        for attempt in 1..200 {
            let b = p.backoff(SimTime::ZERO, &mut rng, prev, attempt);
            assert!(b >= p.base(), "backoff {b} below base");
            assert!(b <= p.cap(), "backoff {b} above cap");
            prev = b;
        }
    }

    #[test]
    fn backoff_schedule_has_budget_minus_one_entries() {
        let p = policy();
        let mut rng = SimRng::seed(2).derive("retry");
        let sched = p.backoff_schedule(SimTime::ZERO, &mut rng);
        assert_eq!(sched.len(), 3);
    }

    #[test]
    fn backoff_traced_as_retry_attempt() {
        use elc_trace::{TraceFilter, Tracer};
        let p = policy();
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Debug)), || {
                let mut rng = SimRng::seed(3).derive("retry");
                let _ = p.backoff_schedule(SimTime::from_secs(5), &mut rng);
            });
        assert_eq!(tracer.len(), 3);
        let e = tracer.events().next().unwrap();
        assert_eq!(tracer.resolve(e.name), "retry.attempt");
    }

    #[test]
    fn budget_spends_and_refills() {
        let mut b = RetryBudget::new(2.0, 0.5);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "empty bucket must refuse");
        b.on_success();
        assert!(!b.try_spend(), "half a token is not a whole one");
        b.on_success();
        assert!(b.try_spend());
    }

    #[test]
    fn budget_never_exceeds_ceiling() {
        let mut b = RetryBudget::new(3.0, 1.0);
        for _ in 0..10 {
            b.on_success();
        }
        assert_eq!(b.tokens(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive max tokens")]
    fn budget_rejects_zero_ceiling() {
        let _ = RetryBudget::new(0.0, 0.1);
    }
}
