//! Breaker-driven hybrid failover.
//!
//! §IV.C's reliability argument for the hybrid model: when the private
//! site goes down, traffic *re-routes* into public burst capacity instead
//! of being lost. [`HybridFailover`] wires a
//! [`CircuitBreaker`](crate::breaker::CircuitBreaker) over the primary
//! site to a [`FailoverPlan`](elc_deploy::hybrid::FailoverPlan): each
//! tick the model probes the primary's health, and the route follows the
//! breaker — `Primary` while it is closed, `Backup` while it is open or
//! probing. Every route change is traced as `failover.switch` and
//! counted.

use elc_deploy::hybrid::FailoverPlan;
use elc_simcore::time::SimTime;
use elc_trace::{Field, Level};

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::TRACE_TARGET;

/// Which leg of the plan traffic currently takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The plan's primary site.
    Primary,
    /// The plan's backup (burst) site.
    Backup,
}

impl std::fmt::Display for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Route::Primary => "primary",
            Route::Backup => "backup",
        })
    }
}

/// A failover switch: breaker over the primary, routing per the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridFailover {
    breaker: CircuitBreaker,
    plan: FailoverPlan,
    route: Route,
    switches: u32,
}

impl HybridFailover {
    /// Creates a failover switch: `breaker` guards `plan.primary()`,
    /// traffic starts on the primary route.
    #[must_use]
    pub fn new(breaker: CircuitBreaker, plan: FailoverPlan) -> Self {
        HybridFailover {
            breaker,
            plan,
            route: Route::Primary,
            switches: 0,
        }
    }

    /// The routing plan.
    #[must_use]
    pub fn plan(&self) -> &FailoverPlan {
        &self.plan
    }

    /// The breaker guarding the primary site.
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Feeds one primary health probe into the breaker at `now`. A
    /// healthy probe clears the breaker; an unhealthy one counts toward a
    /// trip (or re-trips a half-open breaker). While the breaker is open
    /// the failure is not re-counted — the cooldown clock keeps running.
    pub fn probe(&mut self, now: SimTime, primary_healthy: bool) {
        // Apply any cooldown expiry first so a healthy probe can close a
        // freshly half-open breaker.
        let state = self.breaker.state_at(now);
        if primary_healthy {
            self.breaker.on_success(now);
        } else if state != BreakerState::Open {
            self.breaker.on_failure(now);
        }
    }

    /// The route at `now`: primary iff the breaker is closed. Call after
    /// [`HybridFailover::probe`]; traces `failover.switch` on changes.
    pub fn route(&mut self, now: SimTime) -> Route {
        let next = if self.breaker.state_at(now) == BreakerState::Closed {
            Route::Primary
        } else {
            Route::Backup
        };
        if next != self.route {
            self.switches += 1;
            if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
                let to_site = match next {
                    Route::Primary => self.plan.primary(),
                    Route::Backup => self.plan.backup(),
                };
                elc_trace::instant(
                    now.as_nanos(),
                    TRACE_TARGET,
                    "failover.switch",
                    Level::Warn,
                    &[
                        Field::str("to", to_site.to_string()),
                        Field::u64("switches", u64::from(self.switches)),
                    ],
                );
            }
            self.route = next;
        }
        self.route
    }

    /// How many times the route has changed (each direction counts).
    #[must_use]
    pub fn switches(&self) -> u32 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elc_simcore::time::SimDuration;

    fn failover() -> HybridFailover {
        HybridFailover::new(
            CircuitBreaker::new("private-site", 1, SimDuration::from_mins(5)),
            FailoverPlan::private_to_public(0.6),
        )
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn healthy_primary_stays_primary() {
        let mut f = failover();
        for s in 0..10 {
            f.probe(secs(s), true);
            assert_eq!(f.route(secs(s)), Route::Primary);
        }
        assert_eq!(f.switches(), 0);
    }

    #[test]
    fn unhealthy_probe_fails_over_same_tick() {
        let mut f = failover();
        f.probe(secs(60), false);
        assert_eq!(f.route(secs(60)), Route::Backup);
        assert_eq!(f.switches(), 1);
        assert_eq!(f.breaker().trips(), 1);
    }

    #[test]
    fn recovery_switches_back_after_cooldown_probe() {
        let mut f = failover();
        f.probe(secs(0), false);
        assert_eq!(f.route(secs(0)), Route::Backup);
        // Still in cooldown: a healthy site cannot win the route back yet.
        f.probe(secs(60), true);
        assert_eq!(f.route(secs(60)), Route::Backup);
        // Past the 5-min cooldown the healthy probe closes the breaker.
        f.probe(secs(360), true);
        assert_eq!(f.route(secs(360)), Route::Primary);
        assert_eq!(f.switches(), 2);
    }

    #[test]
    fn half_open_probe_failure_keeps_backup_route() {
        let mut f = failover();
        f.probe(secs(0), false);
        let _ = f.route(secs(0));
        f.probe(secs(360), false);
        assert_eq!(f.route(secs(360)), Route::Backup);
        assert_eq!(f.breaker().trips(), 2);
        assert_eq!(f.switches(), 1, "route never left backup");
    }

    #[test]
    fn switch_is_traced_with_destination_site() {
        use elc_trace::{TraceFilter, Tracer};
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Warn)), || {
                let mut f = failover();
                f.probe(secs(42), false);
                let _ = f.route(secs(42));
            });
        // breaker.trip + failover.switch.
        assert_eq!(tracer.len(), 2);
        let names: Vec<_> = tracer
            .events()
            .map(|e| tracer.resolve(e.name).to_string())
            .collect();
        assert!(names.contains(&"failover.switch".to_string()));
        let json = elc_trace::export::jsonl_string(&tracer, &[]);
        assert!(json.contains("\"to\":\"public-cloud\""));
    }
}
