//! # elc-resil — deterministic resilience policies and chaos injection
//!
//! The rest of the stack *produces* faults — `elc-cloud`'s host/site
//! hazards, `elc-net`'s outage schedules and interrupted transfers — but
//! until this crate nothing *reacted* to them, so the paper's reliability
//! comparison (§III network risk, §IV.B physical-damage risk, §IV.C hybrid
//! failover) stopped at raw hazard exposure. `elc-resil` is the fault
//! *response* layer: small, composable policy objects a model threads its
//! traffic through, plus a chaos harness that schedules the correlated
//! fault campaigns the policies are supposed to survive.
//!
//! The policies:
//!
//! * [`retry::RetryPolicy`] — exponential backoff with decorrelated
//!   jitter, a bounded attempt budget, and per-[`RequestKind`] idempotency
//!   gating (`QuizSubmit`/`Upload` are never blindly replayed),
//! * [`retry::RetryBudget`] — a token bucket capping the *global* retry
//!   volume so retries cannot amplify an outage into a storm,
//! * [`timeout::TimeoutPolicy`] — per-kind client deadlines,
//! * [`breaker::CircuitBreaker`] — closed/open/half-open with sim-time
//!   cooldowns and a per-target trip counter,
//! * [`admission::AdmissionController`] — utilization-ordered load
//!   shedding that drops `VideoChunk`/`ForumRead` long before any write,
//! * [`failover::HybridFailover`] — breaker-driven re-routing from a
//!   private site to public burst capacity
//!   ([`elc_deploy::hybrid::FailoverPlan`]).
//!
//! Everything is seeded from [`SimRng`](elc_simcore::rng::SimRng) streams
//! and free of wall-clock or platform state, so a policy decision is a
//! pure function of `(configuration, seed lineage, sim time)` — the same
//! property the kernel guarantees, which is what lets chaos campaigns stay
//! byte-identical across any `--threads` in `elc-run`.
//!
//! Policy activity is traced on the `"resil"` target: `retry.attempt`,
//! `breaker.trip`, `shed.request` and `failover.switch`, all sim-time
//! stamped and guarded by [`elc_trace::enabled`].
//!
//! [`RequestKind`]: elc_elearn::request::RequestKind

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trace target for every event this crate records.
pub const TRACE_TARGET: &str = "resil";

pub mod admission;
pub mod breaker;
pub mod chaos;
pub mod failover;
pub mod retry;
pub mod timeout;
