//! Circuit breaker: fail fast against a target that keeps failing.
//!
//! Retrying into a dead site wastes the client's time (§III: "users may
//! lose time, work, or even unsaved data") and the site's recovery
//! headroom. The breaker watches consecutive failures per target; past a
//! threshold it *opens* and callers fail fast, after a sim-time cooldown
//! it goes *half-open* and admits probes, and
//! [`probe_successes`](CircuitBreaker::with_probe_successes) consecutive
//! probe successes (default 1) close it again — a higher requirement
//! keeps one lucky probe against a still-sick target from slamming the
//! full load back on. Every closed/half-open → open transition is a
//! **trip**,
//! counted per target and traced as `breaker.trip` — the signal
//! [`HybridFailover`](crate::failover::HybridFailover) reroutes on.

use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::TRACE_TARGET;

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooled down: one probe call is admitted.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Why a [`CircuitBreaker`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerError {
    /// The failure threshold was zero.
    ZeroThreshold,
    /// The cooldown was zero (the breaker would flap every probe).
    ZeroCooldown,
    /// The half-open probe-success requirement was zero (the breaker
    /// could never close again).
    ZeroProbeSuccesses,
}

impl std::fmt::Display for BreakerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerError::ZeroThreshold => write!(f, "failure threshold must be >= 1"),
            BreakerError::ZeroCooldown => write!(f, "cooldown must be positive"),
            BreakerError::ZeroProbeSuccesses => write!(f, "probe successes must be >= 1"),
        }
    }
}

impl std::error::Error for BreakerError {}

/// A per-target circuit breaker. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    target: String,
    failure_threshold: u32,
    cooldown: SimDuration,
    probe_successes: u32,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_streak: u32,
    opened_at: SimTime,
    trips: u32,
}

impl CircuitBreaker {
    /// Creates a breaker guarding `target` (a label for traces and trip
    /// accounting): `failure_threshold` consecutive failures trip it,
    /// `cooldown` sim time later it admits a probe.
    ///
    /// # Errors
    ///
    /// Rejects a zero threshold or a zero cooldown.
    pub fn try_new(
        target: impl Into<String>,
        failure_threshold: u32,
        cooldown: SimDuration,
    ) -> Result<Self, BreakerError> {
        if failure_threshold == 0 {
            return Err(BreakerError::ZeroThreshold);
        }
        if cooldown.is_zero() {
            return Err(BreakerError::ZeroCooldown);
        }
        Ok(CircuitBreaker {
            target: target.into(),
            failure_threshold,
            cooldown,
            probe_successes: 1,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_streak: 0,
            opened_at: SimTime::ZERO,
            trips: 0,
        })
    }

    /// Requires `probe_successes` *consecutive* half-open probe successes
    /// before the breaker closes again (the default, 1, is the classic
    /// single-probe breaker). Any probe failure re-trips and resets the
    /// streak.
    ///
    /// # Errors
    ///
    /// Rejects zero — the breaker could never close.
    pub fn with_probe_successes(mut self, probe_successes: u32) -> Result<Self, BreakerError> {
        if probe_successes == 0 {
            return Err(BreakerError::ZeroProbeSuccesses);
        }
        self.probe_successes = probe_successes;
        Ok(self)
    }

    /// Panicking counterpart of [`CircuitBreaker::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(target: impl Into<String>, failure_threshold: u32, cooldown: SimDuration) -> Self {
        CircuitBreaker::try_new(target, failure_threshold, cooldown)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The guarded target's label.
    #[must_use]
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Current state, after applying any cooldown expiry at `now`.
    pub fn state_at(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now.saturating_since(self.opened_at) >= self.cooldown
        {
            self.state = BreakerState::HalfOpen;
            self.half_open_streak = 0;
        }
        self.state
    }

    /// True if a call may proceed at `now` (closed, or half-open probe).
    pub fn allow(&mut self, now: SimTime) -> bool {
        self.state_at(now) != BreakerState::Open
    }

    /// Records a successful call: clears the failure streak, and closes a
    /// half-open breaker once its consecutive-probe-success requirement
    /// is met.
    pub fn on_success(&mut self, now: SimTime) {
        let _ = now;
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.half_open_streak += 1;
            if self.half_open_streak >= self.probe_successes {
                self.state = BreakerState::Closed;
                self.half_open_streak = 0;
            }
        }
    }

    /// Records a failed call at `now`. A half-open probe failure re-trips
    /// immediately; a closed breaker trips once the streak reaches the
    /// threshold.
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state_at(now) {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.half_open_streak = 0;
        self.trips += 1;
        if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
            elc_trace::instant(
                now.as_nanos(),
                TRACE_TARGET,
                "breaker.trip",
                Level::Warn,
                &[
                    Field::str("target", self.target.clone()),
                    Field::u64("trips", u64::from(self.trips)),
                ],
            );
        }
    }

    /// How many times this breaker has tripped.
    #[must_use]
    pub fn trips(&self) -> u32 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new("private-site", threshold, SimDuration::from_mins(5))
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn try_new_rejects_bad_knobs() {
        assert_eq!(
            CircuitBreaker::try_new("x", 0, SimDuration::from_secs(1)),
            Err(BreakerError::ZeroThreshold)
        );
        assert_eq!(
            CircuitBreaker::try_new("x", 1, SimDuration::ZERO),
            Err(BreakerError::ZeroCooldown)
        );
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3);
        b.on_failure(secs(1));
        b.on_failure(secs(2));
        assert!(b.allow(secs(3)), "two failures must not trip a 3-breaker");
        b.on_failure(secs(3));
        assert!(!b.allow(secs(4)));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = breaker(2);
        b.on_failure(secs(1));
        b.on_success(secs(2));
        b.on_failure(secs(3));
        assert!(b.allow(secs(4)), "streak was broken by the success");
    }

    #[test]
    fn cooldown_admits_a_probe_then_success_closes() {
        let mut b = breaker(1);
        b.on_failure(secs(0));
        assert!(!b.allow(secs(10)));
        // 5-minute cooldown: at 300 s the breaker goes half-open.
        assert!(b.allow(secs(300)));
        assert_eq!(b.state_at(secs(300)), BreakerState::HalfOpen);
        b.on_success(secs(301));
        assert_eq!(b.state_at(secs(301)), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn probe_failure_retrips_and_counts() {
        let mut b = breaker(1);
        b.on_failure(secs(0));
        assert!(b.allow(secs(300)));
        b.on_failure(secs(300));
        assert!(!b.allow(secs(301)), "probe failure must re-open");
        assert_eq!(b.trips(), 2);
        // The new cooldown starts from the re-trip.
        assert!(b.allow(secs(600)));
    }

    #[test]
    fn with_probe_successes_rejects_zero() {
        assert_eq!(
            breaker(1).with_probe_successes(0),
            Err(BreakerError::ZeroProbeSuccesses)
        );
    }

    #[test]
    fn multi_probe_breaker_needs_the_full_streak_to_close() {
        let mut b = breaker(1).with_probe_successes(3).unwrap();
        b.on_failure(secs(0));
        assert_eq!(b.state_at(secs(300)), BreakerState::HalfOpen);
        b.on_success(secs(301));
        b.on_success(secs(302));
        assert_eq!(
            b.state_at(secs(303)),
            BreakerState::HalfOpen,
            "two of three probes must not close it"
        );
        b.on_success(secs(303));
        assert_eq!(b.state_at(secs(304)), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn trip_during_half_open_resets_the_probe_streak() {
        let mut b = breaker(1).with_probe_successes(2).unwrap();
        b.on_failure(secs(0));
        assert_eq!(b.state_at(secs(300)), BreakerState::HalfOpen);
        b.on_success(secs(301));
        // One probe in, the target relapses: re-trip, streak must reset.
        b.on_failure(secs(302));
        assert_eq!(b.state_at(secs(303)), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Next half-open window: a single success may not ride the stale
        // streak to closed.
        assert_eq!(b.state_at(secs(602)), BreakerState::HalfOpen);
        b.on_success(secs(603));
        assert_eq!(
            b.state_at(secs(604)),
            BreakerState::HalfOpen,
            "the pre-trip probe success must not carry over"
        );
        b.on_success(secs(604));
        assert_eq!(b.state_at(secs(605)), BreakerState::Closed);
    }

    #[test]
    fn default_probe_requirement_matches_the_single_probe_breaker() {
        // A breaker built through `with_probe_successes(1)` behaves
        // byte-for-byte like the plain constructor.
        let mut a = breaker(1);
        let mut b = breaker(1).with_probe_successes(1).unwrap();
        for (t, fail) in [(0, true), (300, false), (400, true), (700, false)] {
            if fail {
                a.on_failure(secs(t));
                b.on_failure(secs(t));
            } else {
                a.on_success(secs(t));
                b.on_success(secs(t));
            }
            assert_eq!(a.state_at(secs(t)), b.state_at(secs(t)));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn failures_while_open_are_ignored() {
        let mut b = breaker(1);
        b.on_failure(secs(0));
        b.on_failure(secs(1));
        b.on_failure(secs(2));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn trip_is_traced_with_target() {
        use elc_trace::{TraceFilter, Tracer};
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Warn)), || {
                let mut b = breaker(1);
                b.on_failure(secs(42));
            });
        assert_eq!(tracer.len(), 1);
        let e = tracer.events().next().unwrap();
        assert_eq!(tracer.resolve(e.name), "breaker.trip");
        assert_eq!(e.time_ns, secs(42).as_nanos());
        let json = elc_trace::export::jsonl_string(&tracer, &[]);
        assert!(json.contains("\"target\":\"private-site\""));
    }
}
