//! Circuit breaker: fail fast against a target that keeps failing.
//!
//! Retrying into a dead site wastes the client's time (§III: "users may
//! lose time, work, or even unsaved data") and the site's recovery
//! headroom. The breaker watches consecutive failures per target; past a
//! threshold it *opens* and callers fail fast, after a sim-time cooldown
//! it goes *half-open* and admits one probe, and a probe success closes
//! it again. Every closed/half-open → open transition is a **trip**,
//! counted per target and traced as `breaker.trip` — the signal
//! [`HybridFailover`](crate::failover::HybridFailover) reroutes on.

use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::TRACE_TARGET;

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooled down: one probe call is admitted.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Why a [`CircuitBreaker`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerError {
    /// The failure threshold was zero.
    ZeroThreshold,
    /// The cooldown was zero (the breaker would flap every probe).
    ZeroCooldown,
}

impl std::fmt::Display for BreakerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerError::ZeroThreshold => write!(f, "failure threshold must be >= 1"),
            BreakerError::ZeroCooldown => write!(f, "cooldown must be positive"),
        }
    }
}

impl std::error::Error for BreakerError {}

/// A per-target circuit breaker. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    target: String,
    failure_threshold: u32,
    cooldown: SimDuration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    trips: u32,
}

impl CircuitBreaker {
    /// Creates a breaker guarding `target` (a label for traces and trip
    /// accounting): `failure_threshold` consecutive failures trip it,
    /// `cooldown` sim time later it admits a probe.
    ///
    /// # Errors
    ///
    /// Rejects a zero threshold or a zero cooldown.
    pub fn try_new(
        target: impl Into<String>,
        failure_threshold: u32,
        cooldown: SimDuration,
    ) -> Result<Self, BreakerError> {
        if failure_threshold == 0 {
            return Err(BreakerError::ZeroThreshold);
        }
        if cooldown.is_zero() {
            return Err(BreakerError::ZeroCooldown);
        }
        Ok(CircuitBreaker {
            target: target.into(),
            failure_threshold,
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            trips: 0,
        })
    }

    /// Panicking counterpart of [`CircuitBreaker::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(target: impl Into<String>, failure_threshold: u32, cooldown: SimDuration) -> Self {
        CircuitBreaker::try_new(target, failure_threshold, cooldown)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The guarded target's label.
    #[must_use]
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Current state, after applying any cooldown expiry at `now`.
    pub fn state_at(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now.saturating_since(self.opened_at) >= self.cooldown
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// True if a call may proceed at `now` (closed, or half-open probe).
    pub fn allow(&mut self, now: SimTime) -> bool {
        self.state_at(now) != BreakerState::Open
    }

    /// Records a successful call: closes a half-open breaker, clears the
    /// failure streak.
    pub fn on_success(&mut self, now: SimTime) {
        let _ = now;
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Records a failed call at `now`. A half-open probe failure re-trips
    /// immediately; a closed breaker trips once the streak reaches the
    /// threshold.
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state_at(now) {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.trips += 1;
        if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
            elc_trace::instant(
                now.as_nanos(),
                TRACE_TARGET,
                "breaker.trip",
                Level::Warn,
                &[
                    Field::str("target", self.target.clone()),
                    Field::u64("trips", u64::from(self.trips)),
                ],
            );
        }
    }

    /// How many times this breaker has tripped.
    #[must_use]
    pub fn trips(&self) -> u32 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new("private-site", threshold, SimDuration::from_mins(5))
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn try_new_rejects_bad_knobs() {
        assert_eq!(
            CircuitBreaker::try_new("x", 0, SimDuration::from_secs(1)),
            Err(BreakerError::ZeroThreshold)
        );
        assert_eq!(
            CircuitBreaker::try_new("x", 1, SimDuration::ZERO),
            Err(BreakerError::ZeroCooldown)
        );
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3);
        b.on_failure(secs(1));
        b.on_failure(secs(2));
        assert!(b.allow(secs(3)), "two failures must not trip a 3-breaker");
        b.on_failure(secs(3));
        assert!(!b.allow(secs(4)));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = breaker(2);
        b.on_failure(secs(1));
        b.on_success(secs(2));
        b.on_failure(secs(3));
        assert!(b.allow(secs(4)), "streak was broken by the success");
    }

    #[test]
    fn cooldown_admits_a_probe_then_success_closes() {
        let mut b = breaker(1);
        b.on_failure(secs(0));
        assert!(!b.allow(secs(10)));
        // 5-minute cooldown: at 300 s the breaker goes half-open.
        assert!(b.allow(secs(300)));
        assert_eq!(b.state_at(secs(300)), BreakerState::HalfOpen);
        b.on_success(secs(301));
        assert_eq!(b.state_at(secs(301)), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn probe_failure_retrips_and_counts() {
        let mut b = breaker(1);
        b.on_failure(secs(0));
        assert!(b.allow(secs(300)));
        b.on_failure(secs(300));
        assert!(!b.allow(secs(301)), "probe failure must re-open");
        assert_eq!(b.trips(), 2);
        // The new cooldown starts from the re-trip.
        assert!(b.allow(secs(600)));
    }

    #[test]
    fn failures_while_open_are_ignored() {
        let mut b = breaker(1);
        b.on_failure(secs(0));
        b.on_failure(secs(1));
        b.on_failure(secs(2));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn trip_is_traced_with_target() {
        use elc_trace::{TraceFilter, Tracer};
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Warn)), || {
                let mut b = breaker(1);
                b.on_failure(secs(42));
            });
        assert_eq!(tracer.len(), 1);
        let e = tracer.events().next().unwrap();
        assert_eq!(tracer.resolve(e.name), "breaker.trip");
        assert_eq!(e.time_ns, secs(42).as_nanos());
        let json = elc_trace::export::jsonl_string(&tracer, &[]);
        assert!(json.contains("\"target\":\"private-site\""));
    }
}
