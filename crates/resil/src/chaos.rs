//! Chaos injection: correlated fault campaigns on a schedule.
//!
//! `elc-net`'s `OutageModel` and `elc-cloud`'s `FailureModel` draw
//! *independent* faults; real incidents cluster — a storm knocks the
//! campus uplink out four times in an hour, a thermal event takes hosts
//! down one after another, a §IV.B physical disaster lands mid-exam. A
//! [`ChaosSpec`] describes such a campaign as a tiny, `Display`/`FromStr`
//! round-trippable grammar (what `elc-run --chaos` accepts), and
//! [`FaultTimeline::generate`] expands it against a horizon using a
//! derived [`SimRng`] stream — so the same scenario seed always yields
//! the same faults, byte-identical at any `--threads`.
//!
//! Grammar, `;`-separated items, each anchored at a fraction of the
//! horizon:
//!
//! ```text
//! off                             no faults at all
//! storm@0.3:n=4,mins=6            4 uplink outages clustered around t=30%,
//!                                 mean 6 minutes each (defaults n=3, mins=5)
//! cascade@0.55:n=3                3 host crashes minutes apart from t=55%
//!                                 (default n=2)
//! disaster@0.79                   the primary site is lost at t=79%
//! regionloss@0.5:region=0,mins=45 region 0 goes dark at t=50% and returns
//!                                 45 minutes later (defaults region=0,
//!                                 mins=30) — E19's recoverable drill
//! ```

use std::fmt;
use std::str::FromStr;

use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

/// One fault campaign, anchored at a fraction `at` of the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Campaign {
    /// A cluster of `count` uplink outages around `at`, each lasting
    /// about `mean_mins` minutes — §III's network risk, correlated.
    OutageStorm {
        /// Anchor, as a fraction of the horizon in `[0, 1]`.
        at: f64,
        /// Number of outage windows in the cluster.
        count: u32,
        /// Mean window length in minutes.
        mean_mins: f64,
    },
    /// `count` private-site host crashes starting at `at`, minutes apart.
    HostCascade {
        /// Anchor, as a fraction of the horizon in `[0, 1]`.
        at: f64,
        /// Number of hosts lost.
        count: u32,
    },
    /// The whole primary site is lost at `at` and stays lost — §IV.B's
    /// "physical damage" scenario.
    SiteDisaster {
        /// Anchor, as a fraction of the horizon in `[0, 1]`.
        at: f64,
    },
    /// Region `region` goes dark at `at` and *returns* `mins` minutes
    /// later — the recoverable drill E19's disaster-recovery
    /// orchestration is measured against. Unlike [`Campaign::SiteDisaster`]
    /// the loss ends, so failback is observable.
    RegionLoss {
        /// Anchor, as a fraction of the horizon in `[0, 1]`.
        at: f64,
        /// Which region is lost (E19's primary lives in region 0).
        region: u32,
        /// Outage length in minutes.
        mins: f64,
    },
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Campaign::OutageStorm {
                at,
                count,
                mean_mins,
            } => write!(f, "storm@{at}:n={count},mins={mean_mins}"),
            Campaign::HostCascade { at, count } => write!(f, "cascade@{at}:n={count}"),
            Campaign::SiteDisaster { at } => write!(f, "disaster@{at}"),
            Campaign::RegionLoss { at, region, mins } => {
                write!(f, "regionloss@{at}:region={region},mins={mins}")
            }
        }
    }
}

/// Why a chaos spec string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError(String);

impl fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad chaos spec: {}", self.0)
    }
}

impl std::error::Error for ChaosParseError {}

fn parse_err(msg: impl Into<String>) -> ChaosParseError {
    ChaosParseError(msg.into())
}

/// A set of fault campaigns. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSpec {
    campaigns: Vec<Campaign>,
}

impl ChaosSpec {
    /// No faults at all (parses from and displays as `off`).
    #[must_use]
    pub fn off() -> Self {
        ChaosSpec {
            campaigns: Vec::new(),
        }
    }

    /// True if this spec injects nothing.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.campaigns.is_empty()
    }

    /// A spec from explicit campaigns.
    #[must_use]
    pub fn from_campaigns(campaigns: Vec<Campaign>) -> Self {
        ChaosSpec { campaigns }
    }

    /// The campaigns in spec order.
    #[must_use]
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// E16's default campaign: an uplink storm mid-morning, a host
    /// cascade into the exam window, and a site disaster at its peak —
    /// `storm@0.3:n=4,mins=6;cascade@0.55:n=3;disaster@0.79`.
    #[must_use]
    pub fn exam_day_crisis() -> Self {
        ChaosSpec {
            campaigns: vec![
                Campaign::OutageStorm {
                    at: 0.3,
                    count: 4,
                    mean_mins: 6.0,
                },
                Campaign::HostCascade { at: 0.55, count: 3 },
                Campaign::SiteDisaster { at: 0.79 },
            ],
        }
    }

    /// E19's default drill: the primary region goes dark halfway through
    /// the exam evening and returns 45 minutes later —
    /// `regionloss@0.5:region=0,mins=45`.
    #[must_use]
    pub fn region_loss_drill() -> Self {
        ChaosSpec {
            campaigns: vec![Campaign::RegionLoss {
                at: 0.5,
                region: 0,
                mins: 45.0,
            }],
        }
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_off() {
            return f.write_str("off");
        }
        for (i, c) in self.campaigns.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

fn parse_fraction(s: &str) -> Result<f64, ChaosParseError> {
    let at: f64 = s
        .parse()
        .map_err(|_| parse_err(format!("anchor {s:?} is not a number")))?;
    if !(0.0..=1.0).contains(&at) {
        return Err(parse_err(format!(
            "anchor must be a fraction of the horizon in [0, 1], got {at}"
        )));
    }
    Ok(at)
}

fn parse_campaign(item: &str) -> Result<Campaign, ChaosParseError> {
    let (head, opts) = match item.split_once(':') {
        Some((head, opts)) => (head, Some(opts)),
        None => (item, None),
    };
    let (name, at) = head
        .split_once('@')
        .ok_or_else(|| parse_err(format!("{item:?} is missing its @anchor")))?;
    let at = parse_fraction(at)?;
    let mut count: Option<u32> = None;
    let mut mins: Option<f64> = None;
    let mut region: Option<u32> = None;
    if let Some(opts) = opts {
        for opt in opts.split(',') {
            let (key, value) = opt
                .split_once('=')
                .ok_or_else(|| parse_err(format!("option {opt:?} is not key=value")))?;
            match key {
                "n" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|_| parse_err(format!("n={value:?} is not an integer")))?;
                    if n == 0 {
                        return Err(parse_err("n must be >= 1"));
                    }
                    count = Some(n);
                }
                "mins" if name == "storm" || name == "regionloss" => {
                    let m: f64 = value
                        .parse()
                        .map_err(|_| parse_err(format!("mins={value:?} is not a number")))?;
                    if !m.is_finite() || m <= 0.0 {
                        return Err(parse_err(format!("mins must be positive, got {m}")));
                    }
                    mins = Some(m);
                }
                "region" if name == "regionloss" => {
                    let r: u32 = value
                        .parse()
                        .map_err(|_| parse_err(format!("region={value:?} is not an integer")))?;
                    region = Some(r);
                }
                _ => {
                    return Err(parse_err(format!("unknown option {key:?} for {name}")));
                }
            }
        }
    }
    match name {
        "storm" => Ok(Campaign::OutageStorm {
            at,
            count: count.unwrap_or(3),
            mean_mins: mins.unwrap_or(5.0),
        }),
        "cascade" => Ok(Campaign::HostCascade {
            at,
            count: count.unwrap_or(2),
        }),
        "disaster" => {
            if count.is_some() {
                return Err(parse_err("disaster takes no options"));
            }
            Ok(Campaign::SiteDisaster { at })
        }
        "regionloss" => {
            if count.is_some() {
                return Err(parse_err("regionloss takes region= and mins= only"));
            }
            Ok(Campaign::RegionLoss {
                at,
                region: region.unwrap_or(0),
                mins: mins.unwrap_or(30.0),
            })
        }
        _ => Err(parse_err(format!(
            "unknown campaign {name:?} (storm, cascade, disaster, regionloss)"
        ))),
    }
}

impl FromStr for ChaosSpec {
    type Err = ChaosParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(parse_err("empty spec (try \"off\" or \"storm@0.3\")"));
        }
        if s == "off" {
            return Ok(ChaosSpec::off());
        }
        let campaigns = s
            .split(';')
            .map(|item| parse_campaign(item.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChaosSpec { campaigns })
    }
}

/// A [`ChaosSpec`] expanded against a concrete horizon: the actual fault
/// instants a model consults each tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTimeline {
    storm_windows: Vec<(SimTime, SimTime)>,
    host_crashes: Vec<SimTime>,
    disasters: Vec<SimTime>,
    region_losses: Vec<(u32, SimTime, SimTime)>,
}

impl FaultTimeline {
    /// Expands `spec` over `[0, horizon)`. Campaign `i` draws from
    /// `rng.derive_u64(i)`, its own stream — campaigns never share
    /// randomness, so a later campaign's draws cannot perturb an earlier
    /// one's faults. Disaster instants are jitter-free: the anchor *is*
    /// the event.
    #[must_use]
    pub fn generate(spec: &ChaosSpec, rng: &SimRng, horizon: SimDuration) -> Self {
        assert!(!horizon.is_zero(), "horizon must be positive");
        let mut storm_windows: Vec<(SimTime, SimTime)> = Vec::new();
        let mut host_crashes: Vec<SimTime> = Vec::new();
        let mut disasters: Vec<SimTime> = Vec::new();
        let mut region_losses: Vec<(u32, SimTime, SimTime)> = Vec::new();
        let horizon_s = horizon.as_secs_f64();
        for (i, campaign) in spec.campaigns().iter().enumerate() {
            let mut rng = rng.derive_u64(i as u64);
            match *campaign {
                Campaign::OutageStorm {
                    at,
                    count,
                    mean_mins,
                } => {
                    let center_s = horizon_s * at;
                    for _ in 0..count {
                        // Windows scatter within ±3% of the horizon
                        // around the anchor and vary ±50% in length.
                        let start_s = (center_s + rng.range_f64(-0.03, 0.03) * horizon_s).max(0.0);
                        let len_s = 60.0 * mean_mins * rng.range_f64(0.5, 1.5);
                        let end_s = (start_s + len_s).min(horizon_s);
                        if end_s > start_s {
                            storm_windows.push((
                                SimTime::ZERO + SimDuration::from_secs_f64(start_s),
                                SimTime::ZERO + SimDuration::from_secs_f64(end_s),
                            ));
                        }
                    }
                }
                Campaign::HostCascade { at, count } => {
                    let mut t_s = horizon_s * at;
                    for _ in 0..count {
                        if t_s < horizon_s {
                            host_crashes.push(SimTime::ZERO + SimDuration::from_secs_f64(t_s));
                        }
                        t_s += 60.0 * rng.range_f64(1.0, 4.0);
                    }
                }
                Campaign::SiteDisaster { at } => {
                    disasters.push(SimTime::ZERO + SimDuration::from_secs_f64(horizon_s * at));
                }
                Campaign::RegionLoss { at, region, mins } => {
                    // A drill, not a scatter: the anchor *is* the loss
                    // instant and the window is exact, clipped to the
                    // horizon — so RTO/RPO numbers trace back to the spec.
                    let start_s = horizon_s * at;
                    let end_s = (start_s + 60.0 * mins).min(horizon_s);
                    if end_s > start_s {
                        region_losses.push((
                            region,
                            SimTime::ZERO + SimDuration::from_secs_f64(start_s),
                            SimTime::ZERO + SimDuration::from_secs_f64(end_s),
                        ));
                    }
                }
            }
        }
        storm_windows.sort();
        // Merge overlapping windows so `storm_at` is a clean interval scan
        // and the merged count means "distinct uplink incidents".
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(storm_windows.len());
        for (start, end) in storm_windows {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        host_crashes.sort();
        disasters.sort();
        region_losses.sort();
        FaultTimeline {
            storm_windows: merged,
            host_crashes,
            disasters,
            region_losses,
        }
    }

    /// Merged storm windows, sorted, start-inclusive / end-exclusive.
    #[must_use]
    pub fn storm_windows(&self) -> &[(SimTime, SimTime)] {
        &self.storm_windows
    }

    /// True if the uplink is storm-dead at `t`.
    #[must_use]
    pub fn storm_at(&self, t: SimTime) -> bool {
        self.storm_windows
            .iter()
            .any(|&(start, end)| start <= t && t < end)
    }

    /// How many cascade hosts have crashed by `t` (inclusive).
    #[must_use]
    pub fn crashed_hosts_by(&self, t: SimTime) -> u32 {
        self.host_crashes.iter().filter(|&&c| c <= t).count() as u32
    }

    /// True if the site disaster has struck by `t` (inclusive).
    #[must_use]
    pub fn disaster_by(&self, t: SimTime) -> bool {
        self.disasters.iter().any(|&d| d <= t)
    }

    /// Region-loss windows, sorted by `(region, start)`, start-inclusive /
    /// end-exclusive.
    #[must_use]
    pub fn region_loss_windows(&self) -> &[(u32, SimTime, SimTime)] {
        &self.region_losses
    }

    /// True if `region` is dark at `t`.
    #[must_use]
    pub fn region_lost_at(&self, region: u32, t: SimTime) -> bool {
        self.region_losses
            .iter()
            .any(|&(r, start, end)| r == region && start <= t && t < end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimDuration {
        SimDuration::from_hours(24)
    }

    #[test]
    fn off_round_trips_and_is_empty() {
        let spec: ChaosSpec = "off".parse().unwrap();
        assert!(spec.is_off());
        assert_eq!(spec.to_string(), "off");
        assert_eq!(spec, ChaosSpec::off());
    }

    #[test]
    fn exam_day_crisis_round_trips_through_the_grammar() {
        let spec = ChaosSpec::exam_day_crisis();
        let text = spec.to_string();
        assert_eq!(text, "storm@0.3:n=4,mins=6;cascade@0.55:n=3;disaster@0.79");
        let reparsed: ChaosSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn defaults_fill_omitted_options() {
        let spec: ChaosSpec = "storm@0.5;cascade@0.6".parse().unwrap();
        assert_eq!(
            spec.campaigns(),
            &[
                Campaign::OutageStorm {
                    at: 0.5,
                    count: 3,
                    mean_mins: 5.0
                },
                Campaign::HostCascade { at: 0.6, count: 2 },
            ]
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (spec, needle) in [
            ("", "empty spec"),
            ("storm", "missing its @anchor"),
            ("storm@1.5", "in [0, 1]"),
            ("storm@x", "not a number"),
            ("storm@0.5:n=0", "n must be >= 1"),
            ("storm@0.5:mins=0", "mins must be positive"),
            ("cascade@0.5:mins=3", "unknown option"),
            ("disaster@0.5:n=2", "disaster takes no options"),
            ("quake@0.5", "unknown campaign"),
            ("storm@0.5:n", "not key=value"),
            (
                "regionloss@0.5:n=2",
                "regionloss takes region= and mins= only",
            ),
            ("regionloss@0.5:region=x", "not an integer"),
            ("regionloss@0.5:mins=-3", "mins must be positive"),
            ("storm@0.5:region=1", "unknown option"),
        ] {
            let err = spec.parse::<ChaosSpec>().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{spec:?}: {err} missing {needle:?}"
            );
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let spec = ChaosSpec::exam_day_crisis();
        let a = FaultTimeline::generate(&spec, &SimRng::seed(42).derive("chaos"), horizon());
        let b = FaultTimeline::generate(&spec, &SimRng::seed(42).derive("chaos"), horizon());
        let c = FaultTimeline::generate(&spec, &SimRng::seed(43).derive("chaos"), horizon());
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must scatter differently");
    }

    #[test]
    fn storm_windows_cluster_near_the_anchor() {
        let spec: ChaosSpec = "storm@0.3:n=4,mins=6".parse().unwrap();
        let tl = FaultTimeline::generate(&spec, &SimRng::seed(7), horizon());
        assert!(!tl.storm_windows().is_empty());
        let h = horizon().as_secs_f64();
        for &(start, end) in tl.storm_windows() {
            assert!(end > start);
            let frac = start.as_nanos() as f64 / 1e9 / h;
            assert!(
                (0.25..=0.35).contains(&frac),
                "window at {frac} strayed from the 0.3 anchor"
            );
        }
        // Coverage query agrees with the windows.
        let (s0, e0) = tl.storm_windows()[0];
        assert!(tl.storm_at(s0));
        assert!(!tl.storm_at(e0));
    }

    #[test]
    fn cascade_counts_accumulate_and_disaster_is_exact() {
        let spec = ChaosSpec::exam_day_crisis();
        let tl = FaultTimeline::generate(&spec, &SimRng::seed(1), horizon());
        assert_eq!(tl.crashed_hosts_by(SimTime::ZERO), 0);
        assert_eq!(tl.crashed_hosts_by(SimTime::ZERO + horizon()), 3);
        let disaster_at = SimTime::ZERO + horizon().mul_f64(0.79);
        assert!(!tl.disaster_by(disaster_at - SimDuration::from_nanos(1)));
        assert!(tl.disaster_by(disaster_at));
    }

    #[test]
    fn region_loss_round_trips_and_defaults_fill_in() {
        let spec = ChaosSpec::region_loss_drill();
        let text = spec.to_string();
        assert_eq!(text, "regionloss@0.5:region=0,mins=45");
        let reparsed: ChaosSpec = text.parse().unwrap();
        assert_eq!(reparsed, spec);

        let bare: ChaosSpec = "regionloss@0.25".parse().unwrap();
        assert_eq!(
            bare.campaigns(),
            &[Campaign::RegionLoss {
                at: 0.25,
                region: 0,
                mins: 30.0
            }]
        );
    }

    #[test]
    fn region_loss_window_is_exact_and_clipped() {
        let spec = ChaosSpec::region_loss_drill();
        let tl = FaultTimeline::generate(&spec, &SimRng::seed(42).derive("chaos"), horizon());
        let start = SimTime::ZERO + horizon().mul_f64(0.5);
        let end = start + SimDuration::from_mins(45);
        assert_eq!(tl.region_loss_windows(), &[(0, start, end)]);
        assert!(!tl.region_lost_at(0, start - SimDuration::from_nanos(1)));
        assert!(tl.region_lost_at(0, start));
        assert!(tl.region_lost_at(0, end - SimDuration::from_nanos(1)));
        assert!(!tl.region_lost_at(0, end), "the region comes back");
        assert!(!tl.region_lost_at(1, start), "only region 0 is dark");

        // A loss anchored near the end clips to the horizon.
        let late: ChaosSpec = "regionloss@0.99:mins=120".parse().unwrap();
        let tl = FaultTimeline::generate(&late, &SimRng::seed(42), horizon());
        let (_, s, e) = tl.region_loss_windows()[0];
        assert_eq!(e, SimTime::ZERO + horizon());
        assert!(s < e);
    }

    #[test]
    fn region_loss_composes_with_the_other_anchors() {
        let spec: ChaosSpec =
            "storm@0.3:n=4,mins=6;cascade@0.55:n=3;disaster@0.79;regionloss@0.5:region=1,mins=20"
                .parse()
                .unwrap();
        assert_eq!(
            spec.to_string(),
            "storm@0.3:n=4,mins=6;cascade@0.55:n=3;disaster@0.79;regionloss@0.5:region=1,mins=20"
        );
        let rng = SimRng::seed(11);
        let tl = FaultTimeline::generate(&spec, &rng, horizon());
        assert_eq!(tl.region_loss_windows().len(), 1);
        // The region-loss campaign draws nothing, so the storm and
        // cascade streams are untouched by its presence.
        let without: ChaosSpec = "storm@0.3:n=4,mins=6;cascade@0.55:n=3;disaster@0.79"
            .parse()
            .unwrap();
        let base = FaultTimeline::generate(&without, &rng, horizon());
        assert_eq!(tl.storm_windows(), base.storm_windows());
        assert_eq!(tl.host_crashes, base.host_crashes);
        assert_eq!(tl.disasters, base.disasters);
    }

    #[test]
    fn adjacent_campaigns_do_not_perturb_each_other() {
        let rng = SimRng::seed(11);
        let solo: ChaosSpec = "cascade@0.55:n=3".parse().unwrap();
        let paired: ChaosSpec = "cascade@0.55:n=3;disaster@0.9".parse().unwrap();
        let a = FaultTimeline::generate(&solo, &rng, horizon());
        let b = FaultTimeline::generate(&paired, &rng, horizon());
        assert_eq!(
            a.crashed_hosts_by(SimTime::ZERO + horizon()),
            b.crashed_hosts_by(SimTime::ZERO + horizon())
        );
        assert_eq!(a.host_crashes, b.host_crashes);
    }
}
