//! Plain-text figures.
//!
//! The harness renders each experiment's *table*; for the sweep-shaped
//! experiments (E1's cost-vs-size curves, E13's consortium curve) a
//! terminal figure shows the shape at a glance. No graphics dependencies:
//! character grids only.

/// Renders one or more named series as an ASCII line chart.
///
/// Each series is a list of `(x, y)` points; all series share the axes.
/// Points are plotted with the series' marker character; the y-axis is
/// annotated with min/max, the x-axis with its range.
///
/// # Examples
///
/// ```
/// use elc_analysis::plot::line_chart;
///
/// let ys: Vec<(f64, f64)> = (0..10).map(|i| (f64::from(i), f64::from(i * i))).collect();
/// let chart = line_chart(&[("quadratic", &ys)], 40, 10);
/// assert!(chart.contains('a'));   // series marker
/// assert!(chart.contains("quadratic"));
/// ```
///
/// # Panics
///
/// Panics if `width` or `height` is smaller than 2, or a point is not
/// finite.
#[must_use]
pub fn line_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "chart needs a 2x2 grid at least");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return "(no data)\n".to_string();
    }
    for &(x, y) in &all {
        assert!(x.is_finite() && y.is_finite(), "points must be finite");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    // Markers 'a', 'b', 'c', … per series.
    for (si, (_, pts)) in series.iter().enumerate() {
        let marker = (b'a' + (si % 26) as u8) as char;
        for &(x, y) in pts.iter() {
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row;
            grid[r][col] = marker;
        }
    }

    let y_label_hi = format!("{y_max:.3e}");
    let y_label_lo = format!("{y_min:.3e}");
    let margin = y_label_hi.len().max(y_label_lo.len());
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            &y_label_hi
        } else if r == height - 1 {
            &y_label_lo
        } else {
            ""
        };
        out.push_str(&format!("{label:>margin$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>margin$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:>margin$}  x: {x_min:.3e} .. {x_max:.3e}\n", ""));
    for (si, (name, _)) in series.iter().enumerate() {
        let marker = (b'a' + (si % 26) as u8) as char;
        out.push_str(&format!("{:>margin$}  {marker} = {name}\n", ""));
    }
    out
}

/// Renders labelled values as a horizontal bar chart (values must be
/// non-negative).
///
/// # Examples
///
/// ```
/// use elc_analysis::plot::bar_chart;
///
/// let chart = bar_chart(&[("public", 2.2), ("private", 55.0)], 30);
/// assert!(chart.contains("private"));
/// assert!(chart.contains('#'));
/// ```
///
/// # Panics
///
/// Panics if `width < 1` or any value is negative or non-finite.
#[must_use]
pub fn bar_chart(items: &[(&str, f64)], width: usize) -> String {
    assert!(width >= 1, "bars need at least one column");
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    for &(_, v) in items {
        assert!(v.is_finite() && v >= 0.0, "bar values must be >= 0");
    }
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for &(label, v) in items {
        let n = if max == 0.0 {
            0
        } else {
            ((v / max) * width as f64).round() as usize
        };
        out.push_str(&format!("{label:>label_w$} |{} {v:.3}\n", "#".repeat(n)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_plots_extremes_on_edges() {
        let pts = [(0.0, 0.0), (10.0, 100.0)];
        let chart = line_chart(&[("s", &pts)], 20, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Max point in the top row, min point in the bottom grid row.
        assert!(lines[0].contains('a'), "top row: {}", lines[0]);
        assert!(lines[7].contains('a'), "bottom row: {}", lines[7]);
        assert!(chart.contains("x: 0.000e0 .. 1.000e1"));
    }

    #[test]
    fn line_chart_multi_series_markers() {
        let a = [(0.0, 1.0), (1.0, 2.0)];
        let b = [(0.0, 2.0), (1.0, 1.0)];
        let chart = line_chart(&[("up", &a), ("down", &b)], 10, 5);
        assert!(chart.contains('a') && chart.contains('b'));
        assert!(chart.contains("a = up"));
        assert!(chart.contains("b = down"));
    }

    #[test]
    fn line_chart_handles_flat_series() {
        let pts = [(0.0, 5.0), (1.0, 5.0)];
        let chart = line_chart(&[("flat", &pts)], 10, 4);
        assert!(chart.contains('a'));
    }

    #[test]
    fn line_chart_empty_is_graceful() {
        let pts: [(f64, f64); 0] = [];
        assert_eq!(line_chart(&[("none", &pts)], 10, 4), "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn line_chart_rejects_nan() {
        let pts = [(0.0, f64::NAN)];
        let _ = line_chart(&[("bad", &pts)], 10, 4);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&[("a", 1.0), ("b", 2.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        let hashes = |l: &str| l.matches('#').count();
        assert_eq!(hashes(lines[0]), 5);
        assert_eq!(hashes(lines[1]), 10);
    }

    #[test]
    fn bar_chart_all_zero() {
        let chart = bar_chart(&[("z", 0.0)], 10);
        assert!(!chart.contains('#'));
        assert!(chart.contains("0.000"));
    }
}
