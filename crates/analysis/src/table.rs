//! Plain-text result tables.
//!
//! The benchmark harness regenerates the paper's comparisons as tables;
//! [`Table`] renders them aligned for terminals and exports CSV for
//! downstream plotting.

use std::fmt;

/// A rectangular table with a header row.
///
/// # Examples
///
/// ```
/// use elc_analysis::table::Table;
///
/// let mut t = Table::new(["model", "cost"]);
/// t.row(["public", "$12"]);
/// t.row(["private", "$30"]);
/// assert!(t.to_string().contains("public"));
/// assert_eq!(t.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs columns");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Cell accessor (row-major).
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders as CSV with minimal quoting (fields containing commas or
    /// quotes are double-quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a sensible number of digits for tables.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    let mut out = String::new();
    write_f64(&mut out, x);
    out
}

/// Appends [`fmt_f64`]'s rendering of `x` to `out` without allocating —
/// the hot-path form used by the typed metric pipeline, which formats
/// every cell of every replication into a reused scratch buffer.
pub fn write_f64(out: &mut String, x: f64) {
    use std::fmt::Write as _;
    let _ = if x == 0.0 {
        out.write_str("0")
    } else if x.abs() >= 1_000.0 {
        write!(out, "{x:.0}")
    } else if x.abs() >= 10.0 {
        write!(out, "{x:.1}")
    } else if x.abs() >= 0.01 {
        write!(out, "{x:.3}")
    } else {
        write!(out, "{x:.2e}")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t
    }

    #[test]
    fn renders_aligned() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|---"));
    }

    #[test]
    fn csv_round_trip_basics() {
        let csv = sample().to_csv();
        assert_eq!(csv, "a,bb\n1,2\n333,4\n");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(["x"]);
        t.row(["hello, world"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 1), Some("2"));
        assert_eq!(t.cell(5, 0), None);
        assert_eq!(t.headers(), &["a".to_string(), "bb".to_string()]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    #[should_panic(expected = "needs columns")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12_345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(3.17159), "3.172");
        assert_eq!(fmt_f64(0.0001), "1.00e-4");
    }
}
