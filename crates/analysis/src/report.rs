//! Experiment report assembly.
//!
//! A report is a titled sequence of sections, each wrapping a table and
//! free-form notes; the harness prints one per experiment.

use std::fmt;

use crate::table::Table;

/// One experiment's rendered output.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    id: String,
    title: String,
    table: Table,
    notes: Vec<String>,
}

impl Section {
    /// Creates a section for experiment `id` ("E1", "T1", …).
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: Table) -> Self {
        Section {
            id: id.into(),
            title: title.into(),
            table,
            notes: Vec::new(),
        }
    }

    /// Appends a free-form note line (expectation, observed shape, caveat).
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    /// The experiment id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The section title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The result table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The notes.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        write!(f, "{}", self.table)?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// A full report: an ordered list of sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    sections: Vec<Section>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a section.
    pub fn push(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// The sections.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Finds a section by id.
    #[must_use]
    pub fn section(&self, id: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.id() == id)
    }
}

impl Extend<Section> for Report {
    fn extend<T: IntoIterator<Item = Section>>(&mut self, iter: T) {
        self.sections.extend(iter);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(["k", "v"]);
        t.row(["a", "1"]);
        t
    }

    #[test]
    fn section_renders_with_notes() {
        let mut s = Section::new("E1", "TCO", table());
        s.note("public wins at small scale");
        let text = s.to_string();
        assert!(text.contains("== E1: TCO =="));
        assert!(text.contains("note: public wins"));
        assert_eq!(s.notes().len(), 1);
    }

    #[test]
    fn report_lookup_and_order() {
        let mut r = Report::new();
        r.push(Section::new("E1", "one", table()));
        r.push(Section::new("E2", "two", table()));
        assert_eq!(r.sections().len(), 2);
        assert_eq!(r.section("E2").unwrap().title(), "two");
        assert!(r.section("E9").is_none());
        let text = r.to_string();
        let pos1 = text.find("E1").unwrap();
        let pos2 = text.find("E2").unwrap();
        assert!(pos1 < pos2);
    }

    #[test]
    fn report_extends() {
        let mut r = Report::new();
        r.extend([
            Section::new("A", "a", table()),
            Section::new("B", "b", table()),
        ]);
        assert_eq!(r.sections().len(), 2);
    }

    #[test]
    fn accessors() {
        let s = Section::new("T1", "matrix", table());
        assert_eq!(s.id(), "T1");
        assert_eq!(s.table().len(), 1);
    }
}
