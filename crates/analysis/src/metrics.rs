//! Typed metrics: interned names, `(MetricKey, f64)` pairs and the
//! measured-table builder.
//!
//! PR 1's replication engine extracted metrics by rendering each
//! experiment's table to strings and scraping the numbers back out with
//! [`parse_numeric_cell`] — dozens of `format!`/`parse` round-trips per
//! replication. This module inverts the flow: experiments build a
//! [`MetricTable`] of typed [`Cell`]s once, and from it derive *either* the
//! display [`Table`] *or* a [`MetricSet`] of `(MetricKey, f64)` pairs. The
//! rendered table is now a display-only view; aggregation never touches
//! strings.
//!
//! Two invariants hold the old and new pipelines together:
//!
//! * **Names** are interned once into a process-global pool and handled as
//!   copyable [`MetricKey`] ids afterwards. The vocabulary is the fixed set
//!   of `column[row-key]` names the experiment tables emit, so the pool is
//!   small and interning leaks each distinct name exactly once.
//! * **Values** are quantized through the display format: a metric's value
//!   is *defined* as `parse_numeric_cell(cell.display())`, exactly what the
//!   legacy scrape produced. Both paths therefore agree bit-for-bit on every
//!   metric — pinned by a test in `elc-core`'s registry.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use crate::table::{write_f64, Table};

/// An interned metric name.
///
/// Keys are cheap to copy, compare and hash (one `u32`), stable for the
/// lifetime of the process, and resolve back to their name via
/// [`MetricKey::name`]. Equal names always intern to equal keys, across
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey(u32);

impl MetricKey {
    /// The interned name this key stands for.
    #[must_use]
    pub fn name(self) -> &'static str {
        with_pool(|p| p.names[self.0 as usize])
    }

    /// The raw id, for logging.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-global intern pool. Names are leaked on first sight —
/// bounded, because the metric vocabulary is the fixed set of table
/// column/row labels.
struct Pool {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn with_pool<R>(f: impl FnOnce(&mut Pool) -> R) -> R {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    let mutex = POOL.get_or_init(|| {
        Mutex::new(Pool {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    });
    f(&mut mutex.lock().expect("metric intern pool poisoned"))
}

/// Interns `name`, returning its stable key. Idempotent.
#[must_use]
pub fn intern(name: &str) -> MetricKey {
    with_pool(|p| {
        if let Some(&id) = p.ids.get(name) {
            return MetricKey(id);
        }
        let id = u32::try_from(p.names.len()).expect("more than u32::MAX metric names");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        p.names.push(leaked);
        p.ids.insert(leaked, id);
        MetricKey(id)
    })
}

/// A flat, ordered set of typed metrics — one replication's measurements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    entries: Vec<(MetricKey, f64)>,
}

impl MetricSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a metric. Duplicate keys are allowed (callers that need
    /// uniqueness disambiguate names before interning, as the table
    /// builder does).
    pub fn push(&mut self, key: MetricKey, value: f64) {
        self.entries.push((key, value));
    }

    /// The metrics, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(MetricKey, f64)] {
        &self.entries
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no metrics were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(resolved name, value)` pairs — the string view, for
    /// display and tests.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.entries.iter().map(|&(k, v)| (k.name(), v))
    }

    /// Converts to the legacy `(String, f64)` shape.
    #[must_use]
    pub fn to_named_vec(&self) -> Vec<(String, f64)> {
        self.named().map(|(n, v)| (n.to_owned(), v)).collect()
    }

    /// Adds every metric of `other` into this set, summing values on
    /// matching keys and appending keys this set has not seen. Keys are
    /// already interned, so no name is hashed or re-interned — the slot
    /// lookup is the same position-hinted scan the runner's aggregation
    /// uses ([`slot_index`]): when both sets share a shape (shard merges,
    /// replications of one experiment) every lookup hits the hint.
    pub fn merge_from(&mut self, other: &MetricSet) {
        for (hint, &(key, value)) in other.entries.iter().enumerate() {
            let slot = slot_index(&mut self.entries, hint, key, || 0.0);
            self.entries[slot].1 += value;
        }
    }
}

/// Find-or-insert into a `(MetricKey, T)` slot vector, returning the
/// slot's index. `hint` is checked first — callers walking two
/// same-shaped collections in lockstep (shard merge, replication
/// aggregation) hit it every time, making the lookup O(1) without any
/// hashing; otherwise a linear scan finds the first match, and a miss
/// appends `init()`.
pub fn slot_index<T>(
    slots: &mut Vec<(MetricKey, T)>,
    hint: usize,
    key: MetricKey,
    init: impl FnOnce() -> T,
) -> usize {
    if slots.get(hint).is_some_and(|(k, _)| *k == key) {
        return hint;
    }
    if let Some(found) = slots.iter().position(|(k, _)| *k == key) {
        return found;
    }
    slots.push((key, init()));
    slots.len() - 1
}

impl IntoIterator for MetricSet {
    type Item = (MetricKey, f64);
    type IntoIter = std::vec::IntoIter<(MetricKey, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a MetricSet {
    type Item = &'a (MetricKey, f64);
    type IntoIter = std::slice::Iter<'a, (MetricKey, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<(MetricKey, f64)> for MetricSet {
    fn from_iter<T: IntoIterator<Item = (MetricKey, f64)>>(iter: T) -> Self {
        MetricSet {
            entries: iter.into_iter().collect(),
        }
    }
}

/// One typed table cell. The display string and the metric value are both
/// derived from the same variant, so they can never disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text (row labels, verdicts, already-formatted composites).
    /// Still yields a metric when it parses numerically — e.g. the matrix's
    /// `"42.2 (good)"` cells.
    Text(String),
    /// A float, rendered with [`crate::table::fmt_f64`].
    Num(f64),
    /// An integer, rendered with `to_string`. Wide enough (`i128`) to hold
    /// any primitive integer the models use, signed or unsigned.
    Int(i128),
}

impl Cell {
    /// A text cell.
    pub fn text(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    /// A float cell (table rendering via `fmt_f64`).
    #[must_use]
    pub fn num(x: f64) -> Self {
        Cell::Num(x)
    }

    /// An integer cell (exact rendering).
    #[must_use]
    pub fn int(x: impl Into<i128>) -> Self {
        Cell::Int(x.into())
    }

    /// Writes the display form into `out` (cleared first).
    fn write_display(&self, out: &mut String) {
        out.clear();
        match self {
            Cell::Text(s) => out.push_str(s),
            Cell::Num(x) => write_f64(out, *x),
            Cell::Int(n) => {
                let _ = write!(out, "{n}");
            }
        }
    }
}

/// A table of typed cells: the single source from which experiments derive
/// both their display [`Table`] and their typed [`MetricSet`].
///
/// The first column is the row key; it never yields metrics (matching the
/// legacy scraper, which skipped column 0). Every other cell that parses
/// numerically becomes a metric named `column[row-key]`, with `#2`, `#3`…
/// suffixes on repeated names.
///
/// # Examples
///
/// ```
/// use elc_analysis::metrics::{Cell, MetricTable};
///
/// let mut t = MetricTable::new(["model", "cost ($)"]);
/// t.row("public", vec![Cell::num(120.0)]);
/// let metrics = t.metrics();
/// let (name, value) = metrics.named().next().unwrap();
/// assert_eq!((name, value), ("cost ($)[public]", 120.0));
/// assert_eq!(t.to_table().cell(0, 1), Some("120.0"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTable {
    headers: Vec<&'static str>,
    rows: Vec<(String, Vec<Cell>)>,
}

impl MetricTable {
    /// Creates a table with the given column headers (first = row key).
    /// Headers are the experiment's schema — always string literals — so
    /// they are borrowed rather than allocated per replication.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: impl IntoIterator<Item = &'static str>) -> Self {
        let headers: Vec<&'static str> = headers.into_iter().collect();
        assert!(!headers.is_empty(), "a table needs columns");
        MetricTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row: its key plus one cell per non-key column.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the non-key column count.
    pub fn row(&mut self, key: impl Into<String>, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(
            cells.len() + 1,
            self.headers.len(),
            "row width {} != column count {}",
            cells.len() + 1,
            self.headers.len()
        );
        self.rows.push((key.into(), cells));
        self
    }

    /// Renders the display view.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(self.headers.iter().copied());
        let mut scratch = String::new();
        for (key, cells) in &self.rows {
            let mut rendered = Vec::with_capacity(cells.len() + 1);
            rendered.push(key.clone());
            for cell in cells {
                cell.write_display(&mut scratch);
                rendered.push(scratch.clone());
            }
            table.row(rendered);
        }
        table
    }

    /// Extracts the typed metrics without rendering the table.
    ///
    /// Values are quantized through the display format (format, then parse),
    /// so they equal what scraping the rendered table would produce; the
    /// formatting happens in a reused scratch buffer, so the only steady
    /// allocations are first-sight name interning.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        let mut display = String::new();
        let mut name = String::new();
        // Tables emit a dozen-odd metrics; a linear scan beats hashing.
        let mut seen: Vec<(MetricKey, u32)> = Vec::new();
        for (key, cells) in &self.rows {
            for (cell, header) in cells.iter().zip(self.headers.iter().skip(1)) {
                cell.write_display(&mut display);
                let Some(value) = parse_numeric_cell(&display) else {
                    continue;
                };
                name.clear();
                name.push_str(header);
                name.push('[');
                name.push_str(key);
                name.push(']');
                let base = intern(&name);
                let n = match seen.iter_mut().find(|(k, _)| *k == base) {
                    Some((_, n)) => {
                        *n += 1;
                        *n
                    }
                    None => {
                        seen.push((base, 1));
                        1
                    }
                };
                let metric = if n == 1 {
                    base
                } else {
                    intern(&format!("{name}#{n}"))
                };
                set.push(metric, value);
            }
        }
        set
    }
}

/// Interprets a table cell as a number if it plausibly is one.
///
/// Handles the formats the report tables actually emit: plain floats
/// (`fmt_f64`, including scientific notation), dollar amounts (`$1234.00`,
/// `-$5.00`), percentages (`12.5%`) and a numeric value with a trailing
/// unit word (`4.2 d`, `31 mo`). Returns `None` for anything else.
#[must_use]
pub fn parse_numeric_cell(cell: &str) -> Option<f64> {
    let trimmed = cell.trim();
    if trimmed.is_empty() {
        return None;
    }
    let (neg, rest) = match trimmed.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, trimmed),
    };
    let rest = rest.strip_prefix('$').unwrap_or(rest);
    let rest = rest.strip_suffix('%').unwrap_or(rest);
    // `4.2 d` → take the leading token if the remainder is a unit word.
    let token = rest.split_whitespace().next()?;
    let value: f64 = token.parse().ok()?;
    if !value.is_finite() {
        return None;
    }
    Some(if neg { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let a = intern("unit-test-metric-a");
        let b = intern("unit-test-metric-a");
        let c = intern("unit-test-metric-b");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "unit-test-metric-a");
        assert_eq!(c.name(), "unit-test-metric-b");
        assert_eq!(a.to_string(), "unit-test-metric-a");
    }

    #[test]
    fn interning_is_consistent_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("unit-test-threaded")))
            .collect();
        let keys: Vec<MetricKey> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn metric_set_basics() {
        let mut set = MetricSet::new();
        assert!(set.is_empty());
        set.push(intern("unit-test-set-x"), 1.5);
        set.push(intern("unit-test-set-y"), -2.0);
        assert_eq!(set.len(), 2);
        let named: Vec<_> = set.named().collect();
        assert_eq!(
            named,
            vec![("unit-test-set-x", 1.5), ("unit-test-set-y", -2.0)]
        );
        assert_eq!(set.to_named_vec()[0].0, "unit-test-set-x");
        let round: MetricSet = set.clone().into_iter().collect();
        assert_eq!(round, set);
    }

    #[test]
    fn merge_from_sums_matching_keys_and_appends_new_ones() {
        let (a, b, c) = (
            intern("unit-test-merge-a"),
            intern("unit-test-merge-b"),
            intern("unit-test-merge-c"),
        );
        let mut acc = MetricSet::new();
        let mut shard: MetricSet = [(a, 1.0), (b, 10.0)].into_iter().collect();
        acc.merge_from(&shard);
        assert_eq!(acc.entries(), shard.entries(), "merge into empty copies");
        shard = [(a, 2.0), (b, 20.0), (c, 5.0)].into_iter().collect();
        acc.merge_from(&shard);
        assert_eq!(acc.entries(), &[(a, 3.0), (b, 30.0), (c, 5.0)]);
        // Mismatched order still lands on the right keys (hint misses).
        let reordered: MetricSet = [(c, 1.0), (a, 1.0)].into_iter().collect();
        acc.merge_from(&reordered);
        assert_eq!(acc.entries(), &[(a, 4.0), (b, 30.0), (c, 6.0)]);
    }

    #[test]
    fn slot_index_prefers_the_hint() {
        let (a, b) = (intern("unit-test-slot-a"), intern("unit-test-slot-b"));
        let mut slots: Vec<(MetricKey, u32)> = vec![(a, 1), (b, 2)];
        assert_eq!(slot_index(&mut slots, 1, b, || 0), 1);
        assert_eq!(slot_index(&mut slots, 0, b, || 0), 1, "scan on hint miss");
        let fresh = intern("unit-test-slot-c");
        assert_eq!(slot_index(&mut slots, 9, fresh, || 7), 2);
        assert_eq!(slots[2], (fresh, 7));
    }

    #[test]
    fn cells_render_like_legacy_formatting() {
        let mut s = String::from("junk");
        Cell::num(42.25).write_display(&mut s);
        assert_eq!(s, "42.2");
        Cell::num(0.0).write_display(&mut s);
        assert_eq!(s, "0");
        Cell::int(12_345).write_display(&mut s);
        assert_eq!(s, "12345");
        Cell::text("public").write_display(&mut s);
        assert_eq!(s, "public");
    }

    #[test]
    fn table_and_metrics_views_agree() {
        let mut t = MetricTable::new(["model", "cost ($)", "note"]);
        t.row("public", vec![Cell::num(1234.5), Cell::text("cheap")]);
        t.row("private", vec![Cell::num(0.004), Cell::text("42 u")]);

        // Display view matches Table semantics.
        let table = t.to_table();
        assert_eq!(table.headers().len(), 3);
        assert_eq!(table.cell(0, 0), Some("public"));
        assert_eq!(table.cell(0, 1), Some("1234"));
        assert_eq!(table.cell(1, 1), Some("4.00e-3"));

        // Typed view: every numeric display cell, quantized identically.
        let named: Vec<_> = t.metrics().named().collect();
        assert_eq!(
            named,
            vec![
                ("cost ($)[public]", 1234.0),
                ("cost ($)[private]", 4.00e-3),
                ("note[private]", 42.0),
            ]
        );
    }

    #[test]
    fn duplicate_names_get_suffixes() {
        let mut t = MetricTable::new(["k", "v"]);
        t.row("same", vec![Cell::num(1.0)]);
        t.row("same", vec![Cell::num(2.0)]);
        t.row("same", vec![Cell::num(3.0)]);
        let names: Vec<&str> = t.metrics().named().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["v[same]", "v[same]#2", "v[same]#3"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = MetricTable::new(["k", "a", "b"]);
        t.row("x", vec![Cell::num(1.0)]);
    }

    #[test]
    fn numeric_cell_parsing() {
        assert_eq!(parse_numeric_cell("42.5"), Some(42.5));
        assert_eq!(parse_numeric_cell("$1234.00"), Some(1234.0));
        assert_eq!(parse_numeric_cell("-$5.50"), Some(-5.5));
        assert_eq!(parse_numeric_cell("12.5%"), Some(12.5));
        assert_eq!(parse_numeric_cell("1.00e-4"), Some(1e-4));
        assert_eq!(parse_numeric_cell("4.2 d"), Some(4.2));
        assert_eq!(parse_numeric_cell("public"), None);
        assert_eq!(parse_numeric_cell(""), None);
        assert_eq!(parse_numeric_cell("  "), None);
    }
}
