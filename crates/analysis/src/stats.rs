//! Descriptive statistics over experiment outputs.
//!
//! Complements `elc_simcore::metrics::Summary` (online, O(1) memory) with
//! slice-based exact statistics for the analysis layer, where sample sets
//! are small and exactness beats streaming.

/// Arithmetic mean; 0.0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0.0 with fewer than two
/// samples.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Exact quantile by linear interpolation on the sorted copy.
///
/// Clones and sorts per call; callers reading several quantiles of one
/// sample set should sort once and use [`sorted_percentile`].
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
#[must_use]
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        // Preserve the range check even for empty input.
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    sorted_percentile(&sorted, q)
}

/// Exact quantile of an **already sorted** (ascending) slice, by linear
/// interpolation — the sort-once companion to [`percentile`] for call sites
/// that read several quantiles of the same samples.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`. An unsorted slice gives meaningless
/// results (checked only in debug builds).
#[must_use]
pub fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "sorted_percentile needs ascending input"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// A 95% confidence interval for the mean (normal approximation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci95 {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl Ci95 {
    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True if `value` falls inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }
}

impl std::fmt::Display for Ci95 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

/// Computes a 95% CI for the mean of `xs`.
#[must_use]
pub fn ci95(xs: &[f64]) -> Ci95 {
    let m = mean(xs);
    if xs.len() < 2 {
        return Ci95 {
            mean: m,
            half_width: 0.0,
        };
    }
    let se = std_dev(xs) / (xs.len() as f64).sqrt();
    Ci95 {
        mean: m,
        half_width: 1.96 * se,
    }
}

/// Relative change of `new` versus `baseline`, e.g. `-0.25` = 25% lower.
///
/// Returns 0.0 when the baseline is zero.
#[must_use]
pub fn relative_change(new: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (new - baseline) / baseline
    }
}

/// Speedup of `baseline` over `new` (how many times faster `new` is).
///
/// Returns `f64::INFINITY` when `new` is zero and `baseline` is not.
#[must_use]
pub fn speedup(baseline: f64, new: f64) -> f64 {
    if new == 0.0 {
        if baseline == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        baseline / new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.138).abs() < 0.001);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn sorted_percentile_matches_percentile() {
        let xs = [9.0, 1.0, 5.0, 2.0, 8.0, 8.0];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(sorted_percentile(&sorted, q), percentile(&xs, q), "q={q}");
        }
        assert_eq!(sorted_percentile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn sorted_percentile_rejects_bad_q() {
        let _ = sorted_percentile(&[1.0], -0.1);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 2.0);
    }

    #[test]
    fn ci95_behaviour() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let ci = ci95(&xs);
        assert!(ci.contains(mean(&xs)));
        assert!(ci.lo() < ci.hi());
        assert!(!ci.contains(100.0));
        assert!(ci.to_string().contains('±'));
    }

    #[test]
    fn ci95_single_sample_is_degenerate() {
        let ci = ci95(&[3.0]);
        assert_eq!(ci.mean, 3.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn relative_change_directions() {
        assert_eq!(relative_change(75.0, 100.0), -0.25);
        assert_eq!(relative_change(150.0, 100.0), 0.5);
        assert_eq!(relative_change(5.0, 0.0), 0.0);
    }

    #[test]
    fn speedup_edge_cases() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert_eq!(speedup(0.0, 0.0), 1.0);
        assert!(speedup(1.0, 0.0).is_infinite());
    }
}
