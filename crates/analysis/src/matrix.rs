//! The deployment-model comparison matrix (T1).
//!
//! The paper's conclusion claims "the comparison of deployment models,
//! depending on e-learning requirements, is articulated exhaustively". This
//! module assembles that comparison from measured experiment outputs: each
//! criterion gets the three models' metric values, a direction (whether
//! lower or higher is better) and derived ordinal ratings.

use std::fmt;

use crate::metrics::{Cell, MetricTable};
use crate::table::{fmt_f64, Table};

/// Whether smaller or larger metric values are better for a criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller wins (cost, incidents, staleness).
    LowerIsBetter,
    /// Larger wins (availability, survival rate).
    HigherIsBetter,
}

/// Ordinal rating of one model on one criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rating {
    /// Worst of the three.
    Poor,
    /// Between the extremes (or tied).
    Fair,
    /// Best of the three.
    Good,
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rating::Good => "good",
            Rating::Fair => "fair",
            Rating::Poor => "poor",
        };
        f.write_str(s)
    }
}

/// One row of the matrix: a measured criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct Criterion {
    /// Name, e.g. "3-year TCO (USD)".
    pub name: String,
    /// Which experiment produced it, e.g. "E1".
    pub experiment: String,
    /// Metric values in model order (public, private, hybrid).
    pub values: [f64; 3],
    /// Whether lower or higher is better.
    pub direction: Direction,
}

/// Values closer than this relative fraction are considered tied — the
/// experiments are stochastic, and a sub-1% gap is measurement noise, not
/// a verdict (every real gap in the measured tables exceeds 10%).
const TIE_EPSILON: f64 = 1e-2;

/// Ordinal ratings for any number of columns on one criterion.
///
/// A column is `Good` when it loses to nobody and beats somebody (or
/// everything is tied), `Poor` when it beats nobody and loses to somebody,
/// `Fair` otherwise. Ties within [`TIE_EPSILON`] relative tolerance share
/// the better rating.
#[must_use]
pub fn rate_columns(values: &[f64], direction: Direction) -> Vec<Rating> {
    let n = values.len();
    let better = |a: f64, b: f64| {
        let scale = a.abs().max(b.abs());
        if (a - b).abs() <= TIE_EPSILON * scale {
            return false; // tied
        }
        match direction {
            Direction::LowerIsBetter => a < b,
            Direction::HigherIsBetter => a > b,
        }
    };
    (0..n)
        .map(|i| {
            let wins = (0..n)
                .filter(|&j| j != i && better(values[i], values[j]))
                .count();
            let losses = (0..n)
                .filter(|&j| j != i && better(values[j], values[i]))
                .count();
            if losses == 0 && wins > 0 {
                Rating::Good
            } else if wins == 0 && losses > 0 {
                Rating::Poor
            } else if wins == 0 && losses == 0 {
                // Full tie.
                Rating::Good
            } else {
                Rating::Fair
            }
        })
        .collect()
}

impl Criterion {
    /// Ordinal ratings for (public, private, hybrid).
    ///
    /// Ties (within a 1% relative tolerance) share the better rating.
    #[must_use]
    pub fn ratings(&self) -> [Rating; 3] {
        let rated = rate_columns(&self.values, self.direction);
        [rated[0], rated[1], rated[2]]
    }

    /// Index (0=public, 1=private, 2=hybrid) of the winning model; ties
    /// resolve to the first winner.
    #[must_use]
    pub fn winner(&self) -> usize {
        let ratings = self.ratings();
        ratings.iter().position(|&r| r == Rating::Good).unwrap_or(0)
    }
}

/// The full comparison matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComparisonMatrix {
    criteria: Vec<Criterion>,
}

/// Model names in column order.
pub const MODEL_NAMES: [&str; 3] = ["public", "private", "hybrid"];

impl ComparisonMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        ComparisonMatrix::default()
    }

    /// Adds a measured criterion.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        experiment: impl Into<String>,
        values: [f64; 3],
        direction: Direction,
    ) -> &mut Self {
        self.criteria.push(Criterion {
            name: name.into(),
            experiment: experiment.into(),
            values,
            direction,
        });
        self
    }

    /// The criteria added so far.
    #[must_use]
    pub fn criteria(&self) -> &[Criterion] {
        &self.criteria
    }

    /// How many criteria each model wins outright.
    #[must_use]
    pub fn win_counts(&self) -> [usize; 3] {
        let mut wins = [0usize; 3];
        for c in &self.criteria {
            let ratings = c.ratings();
            for (i, &r) in ratings.iter().enumerate() {
                if r == Rating::Good {
                    wins[i] += 1;
                }
            }
        }
        wins
    }

    /// The matrix as a typed measured table: per-model cells carry the raw
    /// value formatted next to its rating (`"42.2 (good)"`), so the metric
    /// extracted from each cell is the leading value. Source of both the
    /// display table and T1's typed metrics.
    #[must_use]
    pub fn to_metric_table(&self) -> MetricTable {
        let mut t =
            MetricTable::new(["criterion", "exp", "public", "private", "hybrid", "verdict"]);
        for c in &self.criteria {
            let ratings = c.ratings();
            let fmt_cell =
                |i: usize| Cell::text(format!("{} ({})", fmt_f64(c.values[i]), ratings[i]));
            let verdict = if ratings == [Rating::Good; 3] {
                "tie".to_string()
            } else {
                format!("{} wins", MODEL_NAMES[c.winner()])
            };
            t.row(
                c.name.clone(),
                vec![
                    Cell::text(c.experiment.clone()),
                    fmt_cell(0),
                    fmt_cell(1),
                    fmt_cell(2),
                    Cell::text(verdict),
                ],
            );
        }
        t
    }

    /// Renders the matrix with raw values and ratings (display view of
    /// [`ComparisonMatrix::to_metric_table`]).
    #[must_use]
    pub fn to_table(&self) -> Table {
        self.to_metric_table().to_table()
    }
}

impl fmt::Display for ComparisonMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// One row of a [`WideMatrix`]: a criterion measured for N models.
#[derive(Debug, Clone, PartialEq)]
pub struct WideCriterion {
    /// Name, e.g. "3-year TCO (USD)".
    pub name: String,
    /// Which experiment produced it, e.g. "E1".
    pub experiment: String,
    /// Metric values, one per model column.
    pub values: Vec<f64>,
    /// Whether lower or higher is better.
    pub direction: Direction,
}

impl WideCriterion {
    /// Ordinal ratings, one per model column (same tie semantics as
    /// [`Criterion::ratings`]).
    #[must_use]
    pub fn ratings(&self) -> Vec<Rating> {
        rate_columns(&self.values, self.direction)
    }

    /// Column index of the winning model; ties resolve to the first
    /// winner.
    #[must_use]
    pub fn winner(&self) -> usize {
        self.ratings()
            .iter()
            .position(|&r| r == Rating::Good)
            .unwrap_or(0)
    }
}

/// A comparison matrix over an arbitrary set of model columns — the
/// appendix view that extends T1's three models with FaaS without
/// disturbing the pinned three-column table.
#[derive(Debug, Clone, PartialEq)]
pub struct WideMatrix {
    models: Vec<&'static str>,
    criteria: Vec<WideCriterion>,
}

impl WideMatrix {
    /// Creates an empty matrix over the given model columns.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    #[must_use]
    pub fn new(models: impl IntoIterator<Item = &'static str>) -> Self {
        let models: Vec<&'static str> = models.into_iter().collect();
        assert!(!models.is_empty(), "a matrix needs model columns");
        WideMatrix {
            models,
            criteria: Vec::new(),
        }
    }

    /// The model column names.
    #[must_use]
    pub fn models(&self) -> &[&'static str] {
        &self.models
    }

    /// Adds a measured criterion.
    ///
    /// # Panics
    ///
    /// Panics unless `values` has one entry per model column.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        experiment: impl Into<String>,
        values: Vec<f64>,
        direction: Direction,
    ) -> &mut Self {
        assert_eq!(
            values.len(),
            self.models.len(),
            "criterion width {} != model count {}",
            values.len(),
            self.models.len()
        );
        self.criteria.push(WideCriterion {
            name: name.into(),
            experiment: experiment.into(),
            values,
            direction,
        });
        self
    }

    /// The criteria added so far.
    #[must_use]
    pub fn criteria(&self) -> &[WideCriterion] {
        &self.criteria
    }

    /// How many criteria each model wins (shared wins count for each).
    #[must_use]
    pub fn win_counts(&self) -> Vec<usize> {
        let mut wins = vec![0usize; self.models.len()];
        for c in &self.criteria {
            for (i, r) in c.ratings().into_iter().enumerate() {
                if r == Rating::Good {
                    wins[i] += 1;
                }
            }
        }
        wins
    }

    /// The matrix as a typed measured table, same cell format as
    /// [`ComparisonMatrix::to_metric_table`].
    #[must_use]
    pub fn to_metric_table(&self) -> MetricTable {
        let headers = ["criterion", "exp"]
            .into_iter()
            .chain(self.models.iter().copied())
            .chain(["verdict"]);
        let mut t = MetricTable::new(headers);
        for c in &self.criteria {
            let ratings = c.ratings();
            let verdict = if ratings.iter().all(|&r| r == Rating::Good) {
                "tie".to_string()
            } else {
                format!("{} wins", self.models[c.winner()])
            };
            let mut cells = vec![Cell::text(c.experiment.clone())];
            cells.extend(
                c.values
                    .iter()
                    .zip(&ratings)
                    .map(|(v, r)| Cell::text(format!("{} ({})", fmt_f64(*v), r))),
            );
            cells.push(Cell::text(verdict));
            t.row(c.name.clone(), cells);
        }
        t
    }

    /// Renders the matrix with raw values and ratings.
    #[must_use]
    pub fn to_table(&self) -> Table {
        self.to_metric_table().to_table()
    }
}

impl fmt::Display for WideMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn criterion(values: [f64; 3], direction: Direction) -> Criterion {
        Criterion {
            name: "x".into(),
            experiment: "E0".into(),
            values,
            direction,
        }
    }

    #[test]
    fn ratings_lower_is_better() {
        let c = criterion([1.0, 3.0, 2.0], Direction::LowerIsBetter);
        assert_eq!(c.ratings(), [Rating::Good, Rating::Poor, Rating::Fair]);
        assert_eq!(c.winner(), 0);
    }

    #[test]
    fn ratings_higher_is_better() {
        let c = criterion([1.0, 3.0, 2.0], Direction::HigherIsBetter);
        assert_eq!(c.ratings(), [Rating::Poor, Rating::Good, Rating::Fair]);
        assert_eq!(c.winner(), 1);
    }

    #[test]
    fn two_way_tie_shares_good() {
        let c = criterion([1.0, 1.0, 5.0], Direction::LowerIsBetter);
        assert_eq!(c.ratings(), [Rating::Good, Rating::Good, Rating::Poor]);
    }

    #[test]
    fn three_way_tie_is_all_good() {
        let c = criterion([2.0, 2.0, 2.0], Direction::LowerIsBetter);
        assert_eq!(c.ratings(), [Rating::Good, Rating::Good, Rating::Good]);
    }

    #[test]
    fn win_counts_accumulate() {
        let mut m = ComparisonMatrix::new();
        m.add("cost", "E1", [10.0, 30.0, 20.0], Direction::LowerIsBetter);
        m.add("security", "E6", [5.0, 1.0, 1.0], Direction::LowerIsBetter);
        m.add(
            "portability",
            "E8",
            [9.0, 0.0, 4.0],
            Direction::LowerIsBetter,
        );
        // Private wins security (shared with hybrid) and portability;
        // public wins cost; hybrid shares the security win.
        assert_eq!(m.win_counts(), [1, 2, 1]);
        assert_eq!(m.criteria().len(), 3);
    }

    #[test]
    fn table_rendering_contains_ratings() {
        let mut m = ComparisonMatrix::new();
        m.add("cost", "E1", [10.0, 30.0, 20.0], Direction::LowerIsBetter);
        let text = m.to_string();
        assert!(text.contains("good"));
        assert!(text.contains("poor"));
        assert!(text.contains("public wins"));
    }

    #[test]
    fn rating_display() {
        assert_eq!(Rating::Good.to_string(), "good");
        assert!(Rating::Good > Rating::Fair);
    }

    #[test]
    fn wide_matrix_agrees_with_narrow_on_three_columns() {
        let c = criterion([1.0, 3.0, 2.0], Direction::LowerIsBetter);
        let wide = rate_columns(&c.values, c.direction);
        assert_eq!(wide, c.ratings().to_vec());
    }

    #[test]
    fn wide_matrix_rates_four_columns() {
        let mut m = WideMatrix::new(["public", "private", "hybrid", "faas"]);
        m.add(
            "cost",
            "E17",
            vec![20.0, 40.0, 30.0, 10.0],
            Direction::LowerIsBetter,
        );
        assert_eq!(
            m.criteria()[0].ratings(),
            vec![Rating::Fair, Rating::Poor, Rating::Fair, Rating::Good]
        );
        assert_eq!(m.win_counts(), vec![0, 0, 0, 1]);
        let text = m.to_string();
        assert!(text.contains("faas wins"), "got:\n{text}");
    }

    #[test]
    #[should_panic(expected = "criterion width 3 != model count 4")]
    fn wide_matrix_rejects_ragged_rows() {
        let mut m = WideMatrix::new(["a", "b", "c", "d"]);
        m.add("x", "E0", vec![1.0, 2.0, 3.0], Direction::LowerIsBetter);
    }
}
