//! # elc-analysis — statistics, tables and the comparison matrix
//!
//! Turns raw experiment measurements into the artifacts the harness prints:
//!
//! * [`stats`] — exact slice statistics, percentiles, confidence intervals,
//! * [`metrics`] — interned metric names and typed `(MetricKey, f64)` sets,
//!   the allocation-lean measurement path experiments feed the replication
//!   engine through,
//! * [`table`] — aligned text tables with CSV export,
//! * [`plot`] — ASCII line/bar figures for the sweep experiments,
//! * [`matrix`] — the three-model comparison matrix (the paper's
//!   "articulated exhaustively" conclusion, rebuilt from measurements),
//! * [`report`] — per-experiment sections assembled into a report.
//!
//! # Examples
//!
//! ```
//! use elc_analysis::matrix::{ComparisonMatrix, Direction};
//!
//! let mut m = ComparisonMatrix::new();
//! m.add("3-year TCO ($)", "E1", [120_000.0, 210_000.0, 260_000.0],
//!       Direction::LowerIsBetter);
//! assert_eq!(m.win_counts(), [1, 0, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod metrics;
pub mod plot;
pub mod report;
pub mod stats;
pub mod table;

pub use matrix::{ComparisonMatrix, Criterion, Direction, Rating, WideCriterion, WideMatrix};
pub use metrics::{intern, MetricKey, MetricSet, MetricTable};
pub use report::{Report, Section};
pub use stats::{ci95, mean, median, percentile, sorted_percentile, std_dev, Ci95};
pub use table::Table;
