//! E3 bench — update-propagation simulation for both channels.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e03;
use elc_core::scenario::Scenario;
use elc_deploy::updates::{simulate_updates, UpdateChannel};
use elc_simcore::{SimRng, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let horizon = SimTime::from_secs(10 * 365 * 86_400);
    let mut g = c.benchmark_group("e03_updates");
    for (name, channel) in [
        ("saas_push", UpdateChannel::saas_default()),
        ("admin_managed", UpdateChannel::onprem_default()),
    ] {
        g.bench_function(name, |b| {
            let mut rng = SimRng::seed(HARNESS_SEED);
            b.iter(|| simulate_updates(black_box(channel), 12.0, horizon, &mut rng))
        });
    }
    g.finish();

    println!(
        "\n{}",
        e03::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
