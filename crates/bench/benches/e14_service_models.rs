//! E14 bench — service-model assessment (extension).

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_cloud::billing::Usd;
use elc_core::experiments::e14;
use elc_core::scenario::Scenario;
use elc_deploy::service_model::{assess, ServiceModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_service_models");
    for model in ServiceModel::ALL {
        g.bench_function(model.to_string(), |b| {
            b.iter(|| assess(black_box(model), Usd::new(60_000.0), 3.0))
        });
    }
    g.finish();

    println!(
        "\n{}",
        e14::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
