//! E6 bench — attack-campaign simulation per deployment model.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e06;
use elc_core::scenario::Scenario;
use elc_deploy::model::{Deployment, DeploymentKind};
use elc_deploy::security::ThreatModel;
use elc_simcore::SimRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let threat = ThreatModel::standard();
    let mut g = c.benchmark_group("e06_security");
    for kind in DeploymentKind::ALL {
        let d = Deployment::canonical(kind);
        g.bench_function(format!("campaign_50y_{kind}"), |b| {
            let mut rng = SimRng::seed(HARNESS_SEED);
            b.iter(|| threat.simulate_campaign(&mut rng, black_box(&d), 50.0))
        });
    }
    g.finish();

    println!(
        "\n{}",
        e06::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
