//! A1 ablation — the kernel's binary-heap event queue vs the naive
//! unsorted-vector baseline, plus raw executive throughput.
//!
//! DESIGN.md §4 calls out the pending-event set as a deliberate design
//! choice; this bench quantifies it.

use elc_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_simcore::baseline::NaiveQueue;
use elc_simcore::queue::EventQueue;
use elc_simcore::sim::Simulation;
use elc_simcore::time::{SimDuration, SimTime};
use elc_simcore::SimRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_kernel");
    for &n in &[1_000u64, 10_000] {
        let mut rng = SimRng::seed(HARNESS_SEED);
        let times: Vec<SimTime> = (0..n)
            .map(|_| SimTime::from_nanos(rng.next_below(1_000_000)))
            .collect();
        g.bench_with_input(BenchmarkId::new("heap_queue", n), &times, |b, times| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for &t in times {
                    q.push(t, ());
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_queue", n), &times, |b, times| {
            b.iter(|| {
                let mut q = NaiveQueue::new();
                for &t in times {
                    q.push(t, ());
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            })
        });
    }
    g.bench_function("executive_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(HARNESS_SEED, 0u64);
            sim.schedule_every(
                SimDuration::from_nanos(1),
                SimDuration::from_nanos(1),
                |s| {
                    *s.state_mut() += 1;
                    *s.state() < 100_000
                },
            );
            sim.run();
            black_box(sim.executed())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
