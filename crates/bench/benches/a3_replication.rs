//! A3 ablation — replication factor × site spread vs asset survival
//! (E4's design knob).

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::quick_criterion;
use elc_cloud::failure::FailureModel;
use elc_cloud::storage::ReplicationPolicy;
use elc_deploy::reliability::StorageProfile;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_replication");
    g.bench_function("loss_probability_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for replicas in 1..=4u32 {
                for sites in 1..=replicas {
                    let p = StorageProfile {
                        replication: ReplicationPolicy::new(replicas, sites),
                        failures: FailureModel::server_room_grade(),
                    };
                    acc += p.asset_loss_probability(black_box(3.0));
                }
            }
            acc
        })
    });
    g.finish();

    println!("\nA3 ablation — 3-year asset loss probability (server-room hardware):");
    println!("  replicas x sites -> loss");
    for replicas in 1..=4u32 {
        for sites in 1..=replicas {
            let p = StorageProfile {
                replication: ReplicationPolicy::new(replicas, sites),
                failures: FailureModel::server_room_grade(),
            };
            println!(
                "  {replicas} x {sites}: {:.5}",
                p.asset_loss_probability(3.0)
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
