//! T1 bench — comparison-matrix assembly from suite outputs.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::run_all;
use elc_core::scenario::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Run the suite once; benchmark the matrix assembly and rendering.
    let outputs = run_all(&Scenario::small_college(HARNESS_SEED));
    let metrics = outputs.metrics();

    let mut g = c.benchmark_group("t1_matrix");
    g.bench_function("matrix_build", |b| b.iter(|| black_box(&metrics).matrix()));
    g.bench_function("matrix_render", |b| {
        let m = metrics.matrix();
        b.iter(|| black_box(&m).to_table().to_string())
    });
    g.finish();

    println!("\n{}", metrics.section());
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
