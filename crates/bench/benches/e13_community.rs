//! E13 bench — community-cloud consortium sweep (extension).

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e13;
use elc_core::scenario::Scenario;
use elc_deploy::community::CommunityCloud;
use elc_deploy::cost::CostInputs;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = Scenario::university(HARNESS_SEED);
    let inputs = CostInputs::standard(scenario.workload_model());

    let mut g = c.benchmark_group("e13_community");
    g.bench_function("assess_8_members", |b| {
        let cc = CommunityCloud::new(8, inputs.clone());
        b.iter(|| black_box(&cc).assess())
    });
    g.bench_function("sweep_16_members", |b| {
        b.iter(|| e13::run(black_box(&scenario)))
    });
    g.finish();

    println!("\n{}", e13::run(&scenario).section());
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
