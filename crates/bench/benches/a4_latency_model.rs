//! A4 ablation — E12's closed-form load-latency curve vs an explicit
//! M/M/c queueing station.
//!
//! E12 converts per-minute utilization into latency with an M/M/1-style
//! formula. This ablation drives the same offered load through
//! `elc_simcore::queueing::Station` and compares the sojourn times, so the
//! approximation's error is on the record.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_simcore::dist::{Distribution, Exp};
use elc_simcore::queueing::Station;
use elc_simcore::{SimDuration, SimRng, SimTime};
use std::hint::black_box;

/// Mean service time per request, seconds (matches E12's base latency).
const SERVICE_S: f64 = 0.12;

/// Simulates `servers` at utilization `rho` and returns the mean sojourn.
fn station_sojourn(servers: usize, rho: f64, rng: &mut SimRng) -> f64 {
    let mu = 1.0 / SERVICE_S;
    let lambda = rho * servers as f64 * mu;
    let arrivals = Exp::new(lambda).expect("positive rate");
    let service = Exp::new(mu).expect("positive rate");
    let mut st = Station::new(servers, None);
    let mut t = 0.0;
    for _ in 0..60_000 {
        t += arrivals.sample(rng);
        st.arrive(
            SimTime::from_nanos((t * 1e9) as u64),
            SimDuration::from_secs_f64(service.sample(rng)),
        );
    }
    st.advance_to(SimTime::from_nanos((t * 1e9) as u64) + SimDuration::from_secs(1_000));
    st.sojourn_time().mean()
}

/// E12's closed-form approximation.
fn formula_latency(rho: f64) -> f64 {
    if rho < 0.95 {
        (SERVICE_S / (1.0 - rho)).min(10.0)
    } else {
        10.0
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a4_latency_model");
    g.bench_function("station_60k_jobs_rho07", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed(HARNESS_SEED);
            station_sojourn(black_box(8), 0.7, &mut rng)
        })
    });
    g.bench_function("formula", |b| b.iter(|| formula_latency(black_box(0.7))));
    g.finish();

    println!("\nA4 ablation — mean latency: M/M/c station vs E12's formula (8 servers):");
    println!("  rho   station(s)  formula(s)  ratio");
    let mut rng = SimRng::seed(HARNESS_SEED);
    for rho in [0.3, 0.5, 0.7, 0.85, 0.93] {
        let st = station_sojourn(8, rho, &mut rng);
        let f = formula_latency(rho);
        println!("  {rho:.2}  {st:>9.4}  {f:>9.4}  {:>5.2}", f / st);
    }
    println!("  (the formula is conservative: an M/M/1 curve over-estimates a pooled M/M/c)");
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
