//! E2 bench — client startup and page-action sampling.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e02;
use elc_core::scenario::Scenario;
use elc_elearn::client::ClientModel;
use elc_elearn::request::RequestKind;
use elc_net::link::{Link, LinkProfile};
use elc_simcore::SimRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let link = Link::from_profile(LinkProfile::MetroInternet);
    let mut g = c.benchmark_group("e02_performance");
    for (name, model) in [
        ("thin_startup", ClientModel::thin_cloud()),
        ("desktop_startup", ClientModel::desktop_install()),
    ] {
        g.bench_function(name, |b| {
            let mut rng = SimRng::seed(HARNESS_SEED);
            b.iter(|| model.startup_time(black_box(&link), &mut rng))
        });
    }
    g.bench_function("thin_page_action", |b| {
        let model = ClientModel::thin_cloud();
        let mut rng = SimRng::seed(HARNESS_SEED);
        b.iter(|| model.action_time(RequestKind::CoursePage, black_box(&link), &mut rng))
    });
    g.finish();

    println!(
        "\n{}",
        e02::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
