//! E8 bench — exit-plan pricing.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_cloud::billing::PriceSheet;
use elc_core::experiments::e08;
use elc_core::scenario::Scenario;
use elc_deploy::migration::exit_plan;
use elc_deploy::model::{Deployment, DeploymentKind};
use elc_net::link::{Link, LinkProfile};
use elc_net::units::Bytes;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let prices = PriceSheet::public_2013();
    let link = Link::from_profile(LinkProfile::InterDatacenter);
    let data = Bytes::from_gib(5_000);
    let mut g = c.benchmark_group("e08_portability");
    for kind in DeploymentKind::ALL {
        let d = Deployment::canonical(kind);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| exit_plan(black_box(&d), data, &prices, &link))
        });
    }
    g.finish();

    println!(
        "\n{}",
        e08::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
