//! E9 bench — provisioning-schedule computation.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e09;
use elc_core::scenario::Scenario;
use elc_deploy::model::{Deployment, DeploymentKind};
use elc_deploy::provisioning::schedule;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e09_time_to_deploy");
    for kind in DeploymentKind::ALL {
        let d = Deployment::canonical(kind);
        g.bench_function(kind.to_string(), |b| b.iter(|| schedule(black_box(&d))));
    }
    g.finish();

    println!(
        "\n{}",
        e09::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
