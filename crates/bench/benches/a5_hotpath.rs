//! A5 — the simulate→measure→aggregate hot path.
//!
//! Two throughput numbers anchor the perf trajectory:
//!
//! * **events/sec** through the executive — a self-scheduling event chain
//!   and a schedule/cancel churn loop exercise the pending-event set
//!   exactly the way `elc-elearn` workload models do;
//! * **replications/sec** through `elc-runner` — one full replication of a
//!   cheap experiment (E9) and a stochastic one (E6) including metric
//!   extraction and aggregation, which is where the per-replication
//!   string round-trips used to live.
//!
//! The fluid fast path adds its own series: simulated student-seconds per
//! wall second on the five-million-student national scenario (only the
//! fluid solver finishes it inside a bench budget), and the fluid
//! engine's wall-clock speedup over the exact event engine on the same
//! E18 station at university scale.
//!
//! Besides printing the usual crit lines, the bench writes
//! `BENCH_hotpath.json` at the workspace root so CI can archive the
//! numbers per PR. Set `ELC_BENCH_QUICK=1` for a fast smoke run (CI).

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use elc_bench::crit::{Criterion, Measurement};
use elc_cloud::mesh::MeshSpec;
use elc_core::experiments::{e18, find};
use elc_core::scenario::Scenario;
use elc_fluid::Fidelity;
use elc_runner::progress::Silent;
use elc_runner::RunSpec;
use elc_simcore::queue::EventQueue;
use elc_simcore::sim::Simulation;
use elc_simcore::time::{SimDuration, SimTime};
use elc_simcore::SimRng;

/// Events in the self-scheduling chain benchmark.
const CHAIN_EVENTS: u64 = 100_000;

/// Events per iteration of the schedule/cancel churn benchmark.
const CHURN_EVENTS: u64 = 10_000;

/// Replications per iteration of the runner benchmarks.
const REPLICATIONS: u32 = 8;

/// Baseline throughput captured on this bench immediately *before* the
/// slab event arena and typed metric pipeline landed (full mode, same
/// machine class). Kept in the JSON so every run reports its speedup
/// against the PR's starting point.
const BASELINE: [(&str, f64); 4] = [
    ("events_per_sec", 36_145_378.3),
    ("queue_churn_ops_per_sec", 23_419_682.6),
    ("replications_per_sec_e09", 133_503.5),
    ("replications_per_sec_e06", 3_539.6),
];

fn quick_mode() -> bool {
    std::env::var("ELC_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn config() -> Criterion {
    // Min-of-N repetitions: one repetition's median still moves a few
    // percent with transient machine load, which previously read as fake
    // regressions (the e06 0.985× case). The minimum over repetitions is
    // stable against noise that only ever slows a run down.
    if quick_mode() {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(300))
            .warm_up_time(Duration::from_millis(50))
            .repetitions(2)
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
            .repetitions(3)
    }
}

/// The sharded mesh series: events/sec of the national-platform mesh at
/// 1, 2 and 4 shards, plus the shard speedups.
struct Sharded {
    /// Best-of-reps events/sec at 1, 2 and 4 shards.
    eps: [f64; 3],
    /// Median of per-pair (1-shard time / 2-shard time) ratios.
    speedup_2x: f64,
    /// Median of per-pair (1-shard time / 4-shard time) ratios.
    speedup_4x: f64,
}

/// Times one mesh run and returns wall seconds.
fn mesh_secs(spec: &MeshSpec, shards: u32) -> f64 {
    let start = Instant::now();
    let report = spec.run(shards);
    let secs = start.elapsed().as_secs_f64();
    black_box(report.checksum);
    secs
}

/// Measures the shard series **interleaved**: each repetition times the
/// 1-, 2- and 4-shard runs back to back and contributes one speedup
/// ratio per shard count. On a shared machine, throughput drifts a few
/// percent over seconds; pairing the runs cancels that drift out of the
/// ratios, and medians over pairs discard the tail the drift still
/// reaches. Medians rather than best-of: a minimum keeps improving with
/// more repetitions, which would make quick (CI) and full runs disagree
/// systematically on the gated absolute throughput. Same pair count in
/// both modes for the same reason — the series is the gate, so it does
/// not get the quick-mode discount.
fn sharded_series() -> Sharded {
    let spec = MeshSpec::national_platform(2013);
    let pairs = 9;
    // One throwaway run warms the allocator and the page tables.
    let _ = mesh_secs(&spec, 1);
    let executed = spec.run(1).executed as f64;
    let mut times = [Vec::new(), Vec::new(), Vec::new()];
    let mut ratios = [Vec::new(), Vec::new()];
    for _ in 0..pairs {
        let mut t = [0.0f64; 3];
        for (slot, shards) in [1u32, 2, 4].into_iter().enumerate() {
            t[slot] = mesh_secs(&spec, shards);
            times[slot].push(t[slot]);
        }
        ratios[0].push(t[0] / t[1]);
        ratios[1].push(t[0] / t[2]);
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut eps = [0.0f64; 3];
    for (slot, series) in times.iter_mut().enumerate() {
        eps[slot] = executed / median(series);
    }
    Sharded {
        eps,
        speedup_2x: median(&mut ratios[0]),
        speedup_4x: median(&mut ratios[1]),
    }
}

/// The fluid fast-path series.
struct Fluid {
    /// Simulated student-seconds per wall second on the national
    /// five-million-student scenario at its default (auto) fidelity.
    student_seconds_per_sec: f64,
    /// Wall-clock ratio event/fluid on the university-scale E18 station
    /// — how much the flow solver buys over exact events.
    speedup_vs_event: f64,
}

/// Times one E18 run and returns wall seconds.
fn e18_secs(scenario: &Scenario) -> f64 {
    let start = Instant::now();
    let out = e18::run(scenario);
    let secs = start.elapsed().as_secs_f64();
    black_box(out.offered());
    secs
}

/// Measures the fluid series. Both numbers aggregate with a minimum —
/// scheduler and timer noise only ever add wall time, so the best
/// observed run is the stable statistic (the gated throughput keys are
/// aggregated the same way). The sub-millisecond fluid wall gets a large
/// burst so its minimum settles.
fn fluid_series() -> Fluid {
    let national = Scenario::national_5m(2013);
    let students = f64::from(national.workload().students());
    let _ = e18_secs(&national); // warm-up
    let reps = if quick_mode() { 3 } else { 7 };
    let wall = (0..reps)
        .map(|_| e18_secs(&national))
        .fold(f64::INFINITY, f64::min);
    let student_seconds_per_sec = students * e18::WINDOW.as_secs_f64() / wall;

    let campus = Scenario::university(2013);
    let event_scn = campus.with_fidelity(Fidelity::Event);
    let fluid_scn = campus.with_fidelity(Fidelity::Fluid);
    let event_reps = if quick_mode() { 2 } else { 3 };
    let _ = e18_secs(&fluid_scn); // warm-up
    let event = (0..event_reps)
        .map(|_| e18_secs(&event_scn))
        .fold(f64::INFINITY, f64::min);
    let fluid = (0..50)
        .map(|_| e18_secs(&fluid_scn))
        .fold(f64::INFINITY, f64::min);
    Fluid {
        student_seconds_per_sec,
        speedup_vs_event: event / fluid,
    }
}

/// A self-scheduling chain: the executive's raw event dispatch rate.
fn chain(c: &mut Criterion) -> Option<Measurement> {
    c.bench_measured("a5_hotpath/executive_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(7, 0u64);
            sim.schedule_every(
                SimDuration::from_nanos(1),
                SimDuration::from_nanos(1),
                |s| {
                    *s.state_mut() += 1;
                    *s.state() < CHAIN_EVENTS
                },
            );
            sim.run();
            black_box(sim.executed())
        })
    })
}

/// Push/cancel/pop churn on the pending-event set: half of the scheduled
/// events are cancelled before they fire, the way autoscaler probes and
/// session timers are in the deployment models.
fn churn(c: &mut Criterion) -> Option<Measurement> {
    let mut rng = SimRng::seed(2013);
    let times: Vec<SimTime> = (0..CHURN_EVENTS)
        .map(|_| SimTime::from_nanos(rng.next_below(1_000_000)))
        .collect();
    c.bench_measured("a5_hotpath/queue_churn_10k_half_cancelled", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().map(|&t| q.push(t, ())).collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut popped = 0u64;
            while let Some(e) = q.pop() {
                black_box(e);
                popped += 1;
            }
            black_box(popped)
        })
    })
}

/// One full replicated run (serial): experiment compute plus metric
/// extraction plus aggregation — the per-replication hot path.
fn replicate(c: &mut Criterion, experiment: &str) -> Option<Measurement> {
    c.bench_measured(
        format!("a5_hotpath/replicate_{experiment}_x{REPLICATIONS}"),
        |b| {
            b.iter(|| {
                let spec = RunSpec::new(
                    find(experiment).expect("experiment exists"),
                    Scenario::small_college(42),
                    REPLICATIONS,
                );
                let outcome = elc_runner::run(&spec, &mut Silent);
                black_box(outcome.summaries.len())
            })
        },
    )
}

/// One uninstrumented chain run's inline-vs-spilled payload split: the
/// executive counts how many scheduled closures fit the slot's inline
/// buffer vs spilled to a `Box`. Archived in the JSON so a capture-size
/// regression (an event mix falling off the inline path) is visible in CI
/// even before it costs throughput.
fn payload_split() -> (u64, u64) {
    let mut sim = Simulation::new(7, 0u64);
    sim.schedule_every(
        SimDuration::from_nanos(1),
        SimDuration::from_nanos(1),
        |s| {
            *s.state_mut() += 1;
            *s.state() < CHAIN_EVENTS
        },
    );
    sim.run();
    (sim.inline_scheduled(), sim.spilled_scheduled())
}

/// Converts a per-iteration measurement into ops/sec for `ops` operations
/// per iteration.
fn ops_per_sec(m: Option<Measurement>, ops: f64) -> f64 {
    m.map_or(0.0, |m| ops / (m.median_ns / 1e9))
}

fn json_field(out: &mut String, key: &str, value: f64, last: bool) {
    out.push_str(&format!(
        "  \"{key}\": {value:.1}{}\n",
        if last { "" } else { "," }
    ));
}

fn main() {
    let mut c = config();
    let chain_m = chain(&mut c);
    let churn_m = churn(&mut c);
    let e09_m = replicate(&mut c, "e09");
    let e06_m = replicate(&mut c, "e06");
    let sharded = sharded_series();
    let fluid = fluid_series();

    let events_per_sec = ops_per_sec(chain_m, CHAIN_EVENTS as f64);
    // Each churn iteration schedules, half-cancels and drains the queue:
    // count every push, cancel and pop as one queue op.
    let churn_ops_per_sec = ops_per_sec(churn_m, 2.5 * CHURN_EVENTS as f64);
    let reps_e09 = ops_per_sec(e09_m, f64::from(REPLICATIONS));
    let reps_e06 = ops_per_sec(e06_m, f64::from(REPLICATIONS));

    let (inline_events, spilled_events) = payload_split();

    println!("\nA5 hot-path throughput:");
    println!("  events/sec (executive chain):    {events_per_sec:>14.0}");
    println!("  queue ops/sec (churn, 50% cxl):  {churn_ops_per_sec:>14.0}");
    println!("  replications/sec (e09):          {reps_e09:>14.1}");
    println!("  replications/sec (e06):          {reps_e06:>14.1}");
    println!("  chain payloads inline/spilled:   {inline_events} / {spilled_events}");
    println!(
        "  sharded mesh events/sec 1/2/4:   {:>10.0} / {:>10.0} / {:>10.0}",
        sharded.eps[0], sharded.eps[1], sharded.eps[2]
    );
    println!(
        "  shard speedup 2x / 4x:           {:>10.2} / {:>10.2}",
        sharded.speedup_2x, sharded.speedup_4x
    );
    println!(
        "  fluid student-seconds/sec (5M):  {:>14.0}",
        fluid.student_seconds_per_sec
    );
    println!(
        "  fluid speedup vs event (e18):    {:>14.1}",
        fluid.speedup_vs_event
    );

    let measured = [
        ("events_per_sec", events_per_sec),
        ("queue_churn_ops_per_sec", churn_ops_per_sec),
        ("replications_per_sec_e09", reps_e09),
        ("replications_per_sec_e06", reps_e06),
    ];
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"schema\": \"elc-hotpath-v4\",\n  \"bench\": \"a5_hotpath\",\n  \"mode\": \"{}\",\n",
        if quick_mode() { "quick" } else { "full" }
    ));
    for (i, &(key, value)) in measured.iter().enumerate() {
        let (_, before) = BASELINE[i];
        json_field(&mut json, key, value, false);
        json_field(&mut json, &format!("{key}_baseline"), before, false);
        let speedup = if before > 0.0 { value / before } else { 0.0 };
        json.push_str(&format!("  \"{key}_speedup\": {speedup:.3},\n"));
    }
    // The sharded series: the 2-shard throughput is the CI gate key; its
    // baseline is the 1-shard run of the same mesh, so the recorded
    // speedup is the shard split's own contribution.
    json_field(&mut json, "sharded_events_per_sec", sharded.eps[1], false);
    json_field(
        &mut json,
        "sharded_events_per_sec_baseline",
        sharded.eps[0],
        false,
    );
    json_field(&mut json, "sharded_events_per_sec_1", sharded.eps[0], false);
    json_field(&mut json, "sharded_events_per_sec_2", sharded.eps[1], false);
    json_field(&mut json, "sharded_events_per_sec_4", sharded.eps[2], false);
    json.push_str(&format!(
        "  \"sharded_speedup_2x\": {:.3},\n  \"sharded_speedup_4x\": {:.3},\n",
        sharded.speedup_2x, sharded.speedup_4x
    ));
    json_field(
        &mut json,
        "fluid_student_seconds_per_sec",
        fluid.student_seconds_per_sec,
        false,
    );
    json_field(
        &mut json,
        "fluid_speedup_vs_event",
        fluid.speedup_vs_event,
        false,
    );
    json.push_str(&format!("  \"inline_events\": {inline_events},\n"));
    json.push_str(&format!("  \"spilled_events\": {spilled_events},\n"));
    json.push_str("  \"replications\": ");
    json.push_str(&REPLICATIONS.to_string());
    json.push_str("\n}\n");

    // crates/bench/../../BENCH_hotpath.json == the workspace root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_hotpath.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
