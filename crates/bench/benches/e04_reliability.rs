//! E4 bench — analytic loss probabilities and Monte-Carlo survival.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e04;
use elc_core::scenario::Scenario;
use elc_deploy::model::DeploymentKind;
use elc_deploy::reliability::StorageProfile;
use elc_simcore::SimRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e04_reliability");
    for kind in DeploymentKind::ALL {
        let profile = StorageProfile::for_model(kind);
        g.bench_function(format!("analytic_{kind}"), |b| {
            b.iter(|| profile.asset_loss_probability(black_box(3.0)))
        });
        g.bench_function(format!("mc_survival_{kind}"), |b| {
            let mut rng = SimRng::seed(HARNESS_SEED);
            b.iter(|| profile.simulate_survival(&mut rng, black_box(100), 10.0))
        });
    }
    g.finish();

    println!(
        "\n{}",
        e04::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
