//! E1 bench — TCO computation for the three deployment models.
//!
//! Regenerates the E1 table rows (cost per model per institution size);
//! Criterion measures the cost-model evaluation itself.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e01;
use elc_core::scenario::Scenario;
use elc_deploy::cost::{tco, CostInputs};
use elc_deploy::model::{Deployment, DeploymentKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = Scenario::university(HARNESS_SEED);
    let inputs = CostInputs::standard(scenario.workload_model());

    let mut g = c.benchmark_group("e01_tco");
    for kind in DeploymentKind::ALL {
        let d = Deployment::canonical(kind);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| tco(black_box(&d), black_box(&inputs)))
        });
    }
    g.bench_function("full_size_sweep", |b| {
        b.iter(|| e01::run(black_box(&scenario)))
    });
    g.finish();

    // Print the regenerated table once per bench run.
    println!("\n{}", e01::run(&scenario).section());
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
