//! E12 bench — the exam-day DES under all three capacity strategies.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e12;
use elc_core::scenario::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = Scenario::university(HARNESS_SEED);
    let mut g = c.benchmark_group("e12_elasticity");
    g.bench_function("exam_day_all_strategies", |b| {
        b.iter(|| e12::run(black_box(&scenario)))
    });
    g.finish();

    println!("\n{}", e12::run(&scenario).section());
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
