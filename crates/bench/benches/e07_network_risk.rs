//! E7 bench — outage schedules and session-loss accounting.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e07;
use elc_core::scenario::Scenario;
use elc_net::outage::OutageModel;
use elc_simcore::{SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_network_risk");
    g.bench_function("schedule_one_term", |b| {
        let model = OutageModel::new(SimDuration::from_hours(30), SimDuration::from_mins(12));
        let mut rng = SimRng::seed(HARNESS_SEED);
        b.iter(|| model.schedule(&mut rng, black_box(SimTime::from_secs(17 * 7 * 86_400))))
    });
    g.bench_function("full_experiment", |b| {
        let scenario = Scenario::rural_learners(HARNESS_SEED);
        b.iter(|| e07::run(black_box(&scenario)))
    });
    g.finish();

    println!(
        "\n{}",
        e07::run(&Scenario::rural_learners(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
