//! E11 bench — governance-overhead computation.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e11;
use elc_core::scenario::Scenario;
use elc_deploy::governance::{overhead, setup_consultancy};
use elc_deploy::model::Deployment;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_governance");
    g.bench_function("overhead_hybrid", |b| {
        let d = Deployment::hybrid_default();
        b.iter(|| overhead(black_box(&d), 8))
    });
    g.bench_function("consultancy_curve", |b| {
        b.iter(|| {
            (1..=4u32)
                .map(|p| setup_consultancy(black_box(p)))
                .collect::<Vec<_>>()
        })
    });
    g.finish();

    println!(
        "\n{}",
        e11::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
