//! A2 ablation — autosave interval vs lost work (E7's design knob).
//!
//! Sweeps the autosave interval over a fixed outage schedule and prints
//! the lost-work curve: the bound the paper's "unsaved data" risk lives
//! under is exactly the autosave interval.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_elearn::session::{SessionPolicy, StateLocation, WorkSession};
use elc_net::outage::OutageModel;
use elc_simcore::{SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn lost_minutes(interval: Option<SimDuration>, rng: &SimRng) -> f64 {
    let horizon = SimTime::from_secs(30 * 86_400);
    let mut sched_rng = rng.derive("sched");
    let schedule = OutageModel::new(SimDuration::from_hours(30), SimDuration::from_mins(12))
        .schedule(&mut sched_rng, horizon);
    let mut r = rng.derive("starts");
    let session_len = SimDuration::from_mins(40);
    let policy = SessionPolicy {
        location: StateLocation::Cloud,
        autosave: interval,
    };
    let mut total = 0.0;
    let mut hit = 0u32;
    for _ in 0..5_000 {
        let start = SimTime::from_nanos(r.range_u64(0, (horizon - session_len).as_nanos()));
        let session = WorkSession::new(start, policy);
        let cut = schedule
            .next_outage_after(start)
            .filter(|&(s, _)| s < start + session_len)
            .map(|(s, _)| s)
            .or_else(|| schedule.window_covering(start).map(|_| start));
        if let Some(at) = cut {
            total += session.lost_work(at).as_secs_f64() / 60.0;
            hit += 1;
        }
    }
    if hit == 0 {
        0.0
    } else {
        total / f64::from(hit)
    }
}

fn bench(c: &mut Criterion) {
    let rng = SimRng::seed(HARNESS_SEED).derive("a2");
    let mut g = c.benchmark_group("a2_autosave");
    g.bench_function("sweep_eval_30s", |b| {
        b.iter(|| lost_minutes(black_box(Some(SimDuration::from_secs(30))), &rng))
    });
    g.finish();

    println!("\nA2 ablation — mean lost work vs autosave interval (rural outages):");
    for (label, interval) in [
        ("5s", Some(SimDuration::from_secs(5))),
        ("30s", Some(SimDuration::from_secs(30))),
        ("2min", Some(SimDuration::from_secs(120))),
        ("10min", Some(SimDuration::from_secs(600))),
        ("never", None),
    ] {
        println!(
            "  autosave {label:>6}: {:>7.3} min lost",
            lost_minutes(interval, &rng)
        );
    }
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
