//! E10 bench — the 64-placement unit-distribution sweep.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e10;
use elc_core::scenario::Scenario;
use elc_deploy::cost::CostInputs;
use elc_deploy::hybrid::{pareto, sweep};
use elc_deploy::security::ThreatModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = Scenario::national_platform(HARNESS_SEED);
    let inputs = CostInputs::standard(scenario.workload_model());
    let threat = ThreatModel::standard();

    let mut g = c.benchmark_group("e10_hybrid_split");
    g.bench_function("sweep_64_placements", |b| {
        b.iter(|| sweep(black_box(&inputs), &threat, inputs.stored_bytes))
    });
    let points = sweep(&inputs, &threat, inputs.stored_bytes);
    g.bench_function("pareto_filter", |b| b.iter(|| pareto(black_box(&points))));
    g.finish();

    println!("\n{}", e10::run(&scenario).section());
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
