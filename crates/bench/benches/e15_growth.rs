//! E15 bench — capacity planning under enrollment growth (extension).

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e15;
use elc_core::scenario::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = Scenario::university(HARNESS_SEED);
    let mut g = c.benchmark_group("e15_growth");
    g.bench_function("six_year_three_strategies", |b| {
        b.iter(|| e15::run(black_box(&scenario)))
    });
    g.finish();

    println!("\n{}", e15::run(&scenario).section());
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
