//! E5 bench — continuity evaluation over many device switches.

use elc_bench::crit::{criterion_group, criterion_main, Criterion};
use elc_bench::{quick_criterion, HARNESS_SEED};
use elc_core::experiments::e05;
use elc_core::scenario::Scenario;
use elc_elearn::session::{SessionPolicy, WorkSession};
use elc_simcore::{SimDuration, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e05_device_independence");
    g.bench_function("continuity_10k_switches", |b| {
        let session = WorkSession::new(SimTime::ZERO, SessionPolicy::cloud_default());
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..10_000u64 {
                let t = SimTime::ZERO + SimDuration::from_secs(i);
                acc += session.continuity_after_switch(black_box(t));
            }
            acc
        })
    });
    g.finish();

    println!(
        "\n{}",
        e05::run(&Scenario::university(HARNESS_SEED)).section()
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
