//! Regenerates every table of the reproduction (E1–E12 and T1) for the
//! three harness scenarios, printing the report and writing one CSV per
//! section under `results/<scenario>/`.
//!
//! ```sh
//! cargo run --release -p elc-bench --bin paper-tables
//! # or with a custom seed:
//! cargo run --release -p elc-bench --bin paper-tables -- 7
//! ```

use std::fs;
use std::path::PathBuf;

use elc_analysis::plot::line_chart;
use elc_bench::{harness_scenarios, HARNESS_SEED};
use elc_core::advisor::advise;
use elc_core::experiments::run_all;
use elc_core::requirements::Requirements;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(HARNESS_SEED);

    let out_root = PathBuf::from("results");
    for scenario in harness_scenarios(seed) {
        println!("########################################################");
        println!(
            "## scenario: {} — {} students, seed {}",
            scenario.name(),
            scenario.students(),
            seed
        );
        println!("########################################################\n");

        let outputs = run_all(&scenario);
        let report = outputs.report();
        println!("{report}\n");

        // Figures for the sweep-shaped experiments.
        let e1_series: Vec<Vec<(f64, f64)>> = (0..3)
            .map(|m| {
                outputs
                    .e01
                    .rows
                    .iter()
                    .map(|r| (f64::from(r.students).log10(), r.totals[m].amount()))
                    .collect()
            })
            .collect();
        println!("Figure F1 — 3-year TCO vs log10(students):");
        println!(
            "{}",
            line_chart(
                &[
                    ("public", &e1_series[0]),
                    ("private", &e1_series[1]),
                    ("hybrid", &e1_series[2]),
                ],
                56,
                12,
            )
        );
        let e13_series: Vec<(f64, f64)> = outputs
            .e13
            .sweep
            .iter()
            .map(|a| (f64::from(a.members), a.per_member_tco.amount()))
            .collect();
        println!("Figure F2 — per-member TCO vs consortium size:");
        println!("{}", line_chart(&[("community", &e13_series)], 56, 10));

        // Advisor verdicts for the paper's three customer archetypes.
        let metrics = outputs.metrics();
        for (label, reqs) in [
            ("startup-program", Requirements::startup_program()),
            ("exam-authority", Requirements::exam_authority()),
            ("balanced-university", Requirements::balanced_university()),
        ] {
            println!("[advisor/{label}] {}", advise(&reqs, &metrics));
        }

        // CSV export, one file per section.
        let dir = out_root.join(scenario.name());
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            continue;
        }
        for section in report.sections() {
            let path = dir.join(format!("{}.csv", section.id().to_lowercase()));
            if let Err(e) = fs::write(&path, section.table().to_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        let report_path = dir.join("report.txt");
        if let Err(e) = fs::write(&report_path, report.to_string()) {
            eprintln!("warning: cannot write {}: {e}", report_path.display());
        }
        println!("csv written to {}\n", dir.display());
    }
}
