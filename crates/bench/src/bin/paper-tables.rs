//! Regenerates every table of the reproduction (E1–E12 and T1) for the
//! three harness scenarios, printing the report and writing one CSV per
//! section under `results/<scenario>/`.
//!
//! ```sh
//! cargo run --release -p elc-bench --bin paper-tables
//! # or with a custom seed (positional, kept for back-compat, or --seed):
//! cargo run --release -p elc-bench --bin paper-tables -- 7
//! cargo run --release -p elc-bench --bin paper-tables -- --seed 7
//! # or a single scenario instead of all four:
//! cargo run --release -p elc-bench --bin paper-tables -- --scenario university
//! ```
//!
//! With no arguments the output is unchanged from the original harness:
//! seed 2013, all four scenarios.

use std::fs;
use std::path::PathBuf;
use std::process::exit;

use elc_analysis::plot::line_chart;
use elc_bench::{harness_scenarios, HARNESS_SEED};
use elc_core::advisor::advise;
use elc_core::experiments::run_all;
use elc_core::requirements::Requirements;

/// Parsed command line: a seed and an optional scenario-name filter.
struct Args {
    seed: u64,
    scenario: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: HARNESS_SEED,
        scenario: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed expects a value")?;
                args.seed = v
                    .parse()
                    .map_err(|_| format!("--seed must be a u64, got {v:?}"))?;
            }
            "--scenario" => {
                args.scenario = Some(it.next().ok_or("--scenario expects a name")?);
            }
            other => {
                // Back-compat: a bare positional argument is the seed.
                args.seed = other.parse().map_err(|_| {
                    format!("expected --seed/--scenario or a numeric seed, got {other:?}")
                })?;
            }
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("usage: paper-tables [SEED] [--seed N] [--scenario NAME]");
            exit(2);
        }
    };
    let seed = args.seed;
    let scenarios: Vec<_> = harness_scenarios(seed)
        .into_iter()
        .filter(|s| args.scenario.as_deref().is_none_or(|want| s.name() == want))
        .collect();
    if scenarios.is_empty() {
        eprintln!(
            "unknown scenario {:?}; known: small-college | rural-learners | university | national-platform",
            args.scenario.unwrap_or_default()
        );
        exit(2);
    }

    let out_root = PathBuf::from("results");
    for scenario in scenarios {
        println!("########################################################");
        println!(
            "## scenario: {} — {} students, seed {}",
            scenario.name(),
            scenario.students(),
            seed
        );
        println!("########################################################\n");

        let outputs = run_all(&scenario);
        let report = outputs.report();
        println!("{report}\n");

        // Figures for the sweep-shaped experiments.
        let e1_series: Vec<Vec<(f64, f64)>> = (0..3)
            .map(|m| {
                outputs
                    .e01
                    .rows
                    .iter()
                    .map(|r| (f64::from(r.students).log10(), r.totals[m].amount()))
                    .collect()
            })
            .collect();
        println!("Figure F1 — 3-year TCO vs log10(students):");
        println!(
            "{}",
            line_chart(
                &[
                    ("public", &e1_series[0]),
                    ("private", &e1_series[1]),
                    ("hybrid", &e1_series[2]),
                ],
                56,
                12,
            )
        );
        let e13_series: Vec<(f64, f64)> = outputs
            .e13
            .sweep
            .iter()
            .map(|a| (f64::from(a.members), a.per_member_tco.amount()))
            .collect();
        println!("Figure F2 — per-member TCO vs consortium size:");
        println!("{}", line_chart(&[("community", &e13_series)], 56, 10));

        // Advisor verdicts for the paper's three customer archetypes.
        let metrics = outputs.metrics();
        for (label, reqs) in [
            ("startup-program", Requirements::startup_program()),
            ("exam-authority", Requirements::exam_authority()),
            ("balanced-university", Requirements::balanced_university()),
        ] {
            println!("[advisor/{label}] {}", advise(&reqs, &metrics));
        }

        // CSV export, one file per section.
        let dir = out_root.join(scenario.name());
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            continue;
        }
        for section in report.sections() {
            let path = dir.join(format!("{}.csv", section.id().to_lowercase()));
            if let Err(e) = fs::write(&path, section.table().to_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        let report_path = dir.join("report.txt");
        if let Err(e) = fs::write(&report_path, report.to_string()) {
            eprintln!("warning: cannot write {}: {e}", report_path.display());
        }
        println!("csv written to {}\n", dir.display());
    }
}
