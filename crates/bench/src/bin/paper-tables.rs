//! Regenerates every table of the reproduction (E1–E15, T1, plus the E16
//! resilience, E17 serverless and E19 disaster-recovery appendices) for
//! the harness scenarios, printing the report and writing one CSV per
//! section under `results/<scenario>/`.
//!
//! ```sh
//! cargo run --release -p elc-bench --bin paper-tables
//! # or with a custom seed (positional, kept for back-compat, or --seed):
//! cargo run --release -p elc-bench --bin paper-tables -- 7
//! cargo run --release -p elc-bench --bin paper-tables -- --seed 7
//! # or a single scenario instead of all four:
//! cargo run --release -p elc-bench --bin paper-tables -- --scenario university
//! # list the experiments the report covers:
//! cargo run --release -p elc-bench --bin paper-tables -- --list
//! # additionally record a sim-time trace of every run:
//! cargo run --release -p elc-bench --bin paper-tables -- --trace tables.jsonl
//! # override E16/E17/E19's fault campaign (E16/E17 default: the exam-day
//! # crisis; E19 default: the region-loss drill):
//! cargo run --release -p elc-bench --bin paper-tables -- --chaos disaster@0.5
//! # shard-parallel execution (output is byte-identical at any shard count):
//! cargo run --release -p elc-bench --bin paper-tables -- --shards 4
//! # record the workload into a trace, then replay it (byte-identical report):
//! cargo run --release -p elc-bench --bin paper-tables -- \
//!     --scenario university --record-trace u.elcw
//! cargo run --release -p elc-bench --bin paper-tables -- \
//!     --scenario university --workload trace:u.elcw [--morph stretch=2]
//! ```
//!
//! With no arguments the output is unchanged from the original harness:
//! seed 2013, all four scenarios.

use std::fs;
use std::path::PathBuf;
use std::process::exit;

use elc_analysis::plot::line_chart;
use elc_bench::{harness_scenarios, HARNESS_SEED};
use elc_core::advisor::advise;
use elc_core::cli_args::{
    chaos_from_flags, experiment_list, fidelity_from_flags, flag, parse_or, shards_from_flags,
    split_args, unknown_scenario, with_shards_override, TraceOptions, WorkloadOptions,
};
use elc_core::experiments::{e16, e17, e19, run_all};
use elc_core::requirements::Requirements;

/// Parsed command line: a seed, an optional scenario-name filter, and
/// optional tracing.
struct Args {
    seed: u64,
    scenario: Option<String>,
    trace: Option<TraceOptions>,
    chaos: Option<elc_resil::chaos::ChaosSpec>,
    shards: Option<u32>,
    fidelity: Option<elc_fluid::Fidelity>,
    workload: WorkloadOptions,
}

fn parse_args() -> Result<Option<Args>, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (positional, flags) = split_args(&argv);
    if flag(&flags, "list").is_some() {
        print!("{}", experiment_list());
        return Ok(None);
    }
    let mut seed = parse_or(&flags, "seed", HARNESS_SEED)?;
    // Back-compat: a bare positional argument is the seed.
    if let Some(p) = positional.first() {
        seed = p
            .parse()
            .map_err(|_| format!("expected --seed/--scenario or a numeric seed, got {p:?}"))?;
    }
    let args = Args {
        seed,
        scenario: flag(&flags, "scenario").map(ToString::to_string),
        trace: TraceOptions::from_flags(&flags)?,
        chaos: chaos_from_flags(&flags)?,
        shards: shards_from_flags(&flags)?,
        fidelity: fidelity_from_flags(&flags)?,
        workload: WorkloadOptions::from_flags(&flags)?,
    };
    if args.workload.record.is_some() && (args.scenario.is_none() || args.shards.unwrap_or(1) != 1)
    {
        return Err("--record-trace requires --scenario NAME and --shards 1 \
             (one trace captures one scenario's runs, in source-creation order)"
            .to_string());
    }
    Ok(Some(args))
}

fn main() {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: paper-tables [SEED] [--seed N] [--scenario NAME] [--list] \
                 [--trace PATH.jsonl] [--trace-filter SPEC] [--chaos SPEC] [--shards N] \
                 [--fidelity event|fluid|auto] [--workload trace:PATH] [--morph SPEC] \
                 [--record-trace PATH]"
            );
            exit(2);
        }
    };
    let seed = args.seed;
    let scenarios: Vec<_> = harness_scenarios(seed)
        .into_iter()
        .map(|s| match &args.chaos {
            Some(spec) => s.with_chaos(spec.clone()),
            None => s,
        })
        .map(|s| with_shards_override(s, args.shards))
        .map(|s| match args.fidelity {
            Some(f) => s.with_fidelity(f),
            None => s,
        })
        .filter(|s| args.scenario.as_deref().is_none_or(|want| s.name() == want))
        .map(|s| match args.workload.apply(s) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                exit(2);
            }
        })
        .collect();
    if scenarios.is_empty() {
        eprintln!("{}", unknown_scenario(&args.scenario.unwrap_or_default()));
        exit(2);
    }

    let mut trace_out = match &args.trace {
        None => None,
        Some(opts) => match fs::File::create(&opts.path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("cannot create trace {}: {e}", opts.path.display());
                exit(2);
            }
        },
    };

    let out_root = PathBuf::from("results");
    for mut scenario in scenarios {
        let recorder = args.workload.start_recording(&mut scenario);
        println!("########################################################");
        println!(
            "## scenario: {} — {} students, seed {}",
            scenario.name(),
            scenario.students(),
            seed
        );
        println!("########################################################\n");

        let (outputs, resilience, serverless, recovery) = match &args.trace {
            None => (
                run_all(&scenario),
                e16::run(&scenario),
                e17::run(&scenario),
                e19::run(&scenario),
            ),
            Some(opts) => {
                let ((outputs, resilience, serverless, recovery), tracer) =
                    elc_trace::with_tracer(elc_trace::Tracer::new(opts.filter.clone()), || {
                        (
                            run_all(&scenario),
                            e16::run(&scenario),
                            e17::run(&scenario),
                            e19::run(&scenario),
                        )
                    });
                if let Some(out) = trace_out.as_mut() {
                    let labels = [("scenario", scenario.name())];
                    if let Err(e) = elc_trace::export::write_jsonl(out, &tracer, &labels) {
                        eprintln!("warning: cannot write trace: {e}");
                    }
                }
                (outputs, resilience, serverless, recovery)
            }
        };
        let report = outputs.report();
        println!("{report}\n");
        // E16 and E17 are appendices: their chaos campaign is a knob, so
        // they render outside the pinned E1–E15/T1 report.
        let e16_section = resilience.section();
        println!("{e16_section}\n");
        let e17_section = serverless.section();
        println!("{e17_section}\n");
        let e19_section = recovery.section();
        println!("{e19_section}\n");
        let metrics = outputs.metrics();
        let t1f_section =
            e17::FaasColumn::derive(&scenario, &metrics, &serverless).section(&metrics);
        println!("{t1f_section}\n");

        // Figures for the sweep-shaped experiments.
        let e1_series: Vec<Vec<(f64, f64)>> = (0..3)
            .map(|m| {
                outputs
                    .e01
                    .rows
                    .iter()
                    .map(|r| (f64::from(r.students).log10(), r.totals[m].amount()))
                    .collect()
            })
            .collect();
        println!("Figure F1 — 3-year TCO vs log10(students):");
        println!(
            "{}",
            line_chart(
                &[
                    ("public", &e1_series[0]),
                    ("private", &e1_series[1]),
                    ("hybrid", &e1_series[2]),
                ],
                56,
                12,
            )
        );
        let e13_series: Vec<(f64, f64)> = outputs
            .e13
            .sweep
            .iter()
            .map(|a| (f64::from(a.members), a.per_member_tco.amount()))
            .collect();
        println!("Figure F2 — per-member TCO vs consortium size:");
        println!("{}", line_chart(&[("community", &e13_series)], 56, 10));

        // Advisor verdicts for the paper's three customer archetypes.
        for (label, reqs) in [
            ("startup-program", Requirements::startup_program()),
            ("exam-authority", Requirements::exam_authority()),
            ("balanced-university", Requirements::balanced_university()),
        ] {
            println!("[advisor/{label}] {}", advise(&reqs, &metrics));
        }

        // CSV export, one file per section.
        let dir = out_root.join(scenario.name());
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            continue;
        }
        for section in report.sections() {
            let path = dir.join(format!("{}.csv", section.id().to_lowercase()));
            if let Err(e) = fs::write(&path, section.table().to_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        let e16_csv = dir.join("e16.csv");
        if let Err(e) = fs::write(&e16_csv, e16_section.table().to_csv()) {
            eprintln!("warning: cannot write {}: {e}", e16_csv.display());
        }
        let e17_csv = dir.join("e17.csv");
        if let Err(e) = fs::write(&e17_csv, e17_section.table().to_csv()) {
            eprintln!("warning: cannot write {}: {e}", e17_csv.display());
        }
        let e19_csv = dir.join("e19.csv");
        if let Err(e) = fs::write(&e19_csv, e19_section.table().to_csv()) {
            eprintln!("warning: cannot write {}: {e}", e19_csv.display());
        }
        let t1f_csv = dir.join("t1f.csv");
        if let Err(e) = fs::write(&t1f_csv, t1f_section.table().to_csv()) {
            eprintln!("warning: cannot write {}: {e}", t1f_csv.display());
        }
        let report_path = dir.join("report.txt");
        if let Err(e) = fs::write(&report_path, report.to_string()) {
            eprintln!("warning: cannot write {}: {e}", report_path.display());
        }
        println!("csv written to {}\n", dir.display());

        if let Some(recorder) = &recorder {
            match args.workload.finish_recording(recorder) {
                Ok(line) => eprintln!("{line}"),
                Err(e) => {
                    eprintln!("{e}");
                    exit(1);
                }
            }
        }
    }

    if let (Some(opts), Some(mut out)) = (&args.trace, trace_out.take()) {
        use std::io::Write as _;
        if let Err(e) = out.flush() {
            eprintln!("warning: cannot flush trace {}: {e}", opts.path.display());
        } else {
            println!("trace written to {}", opts.path.display());
        }
    }
}
