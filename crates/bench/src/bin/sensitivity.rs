//! Sensitivity analysis for the E1 cost crossover.
//!
//! EXPERIMENTS.md's threats-to-validity section notes that the *location*
//! of the public→private crossover depends on the calibration. This binary
//! sweeps every knob that is parameterizable at the API surface — cloud
//! prices, workload intensity, stored volume, planning horizon — and
//! reports where the crossover lands under each, so the robustness of the
//! qualitative claim ("public wins small, ownership wins big") is on the
//! record.
//!
//! ```sh
//! cargo run --release -p elc-bench --bin sensitivity
//! ```

use std::collections::BTreeMap;

use elc_analysis::table::Table;
use elc_cloud::billing::{PriceSheet, Usd};
use elc_cloud::resources::VmSize;
use elc_deploy::cost::{tco, CostInputs};
use elc_deploy::model::Deployment;
use elc_elearn::calendar::AcademicCalendar;
use elc_elearn::workload::{PhaseFactors, WorkloadModel};
use elc_net::units::Bytes;
use elc_simcore::SimTime;

/// Geometric scan grid for the crossover search.
fn sizes() -> Vec<u32> {
    let mut v = Vec::new();
    let mut n = 500u32;
    while n <= 400_000 {
        v.push(n);
        n = (f64::from(n) * 1.35) as u32;
    }
    v
}

/// A price sheet with every usage price scaled by `factor`.
fn scaled_prices(factor: f64) -> PriceSheet {
    let base = PriceSheet::public_2013();
    let vm_hour: BTreeMap<VmSize, Usd> = VmSize::ALL
        .iter()
        .map(|&s| (s, base.vm_hour(s) * factor))
        .collect();
    PriceSheet::new(
        vm_hour,
        base.storage_gib_month() * factor,
        base.egress_per_gib() * factor,
    )
}

/// Builds cost inputs for a population under one knob configuration.
struct Knobs {
    price_factor: f64,
    peak_rps_per_kstudent: f64,
    storage_gib_per_kstudent: u64,
    years: f64,
}

impl Knobs {
    fn base() -> Self {
        Knobs {
            price_factor: 1.0,
            peak_rps_per_kstudent: 20.0,
            storage_gib_per_kstudent: 200,
            years: 3.0,
        }
    }

    fn inputs(&self, students: u32) -> CostInputs {
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let workload = WorkloadModel::builder(students, cal)
            .peak_rps_per_kstudent(self.peak_rps_per_kstudent)
            .phase_factors(PhaseFactors::default())
            .build()
            .expect("knob sweep stays within valid workload parameters");
        CostInputs {
            workload,
            stored_bytes: Bytes::from_gib(
                u64::from(students) * self.storage_gib_per_kstudent / 1_000 + 50,
            ),
            years: self.years,
            prices: scaled_prices(self.price_factor),
            reserved: None,
            dr: None,
        }
    }

    /// Smallest scanned size where a non-public model is cheapest.
    fn crossover(&self) -> Option<u32> {
        sizes().into_iter().find(|&n| {
            let inputs = self.inputs(n);
            let public = tco(&Deployment::public(), &inputs).total();
            let private = tco(&Deployment::private(), &inputs).total();
            private < public
        })
    }
}

fn main() {
    println!("E1 crossover sensitivity (public→ownership break-even, students)\n");
    let mut t = Table::new(["knob", "setting", "crossover (students)"]);
    let fmt_cross = |c: Option<u32>| c.map_or_else(|| ">400k".to_string(), |n| n.to_string());

    let base = Knobs::base();
    t.row(["baseline", "2013 calibration", &fmt_cross(base.crossover())]);

    for factor in [0.5, 2.0] {
        let k = Knobs {
            price_factor: factor,
            ..Knobs::base()
        };
        t.row([
            "cloud prices".to_string(),
            format!("x{factor}"),
            fmt_cross(k.crossover()),
        ]);
    }
    for rate in [10.0, 40.0] {
        let k = Knobs {
            peak_rps_per_kstudent: rate,
            ..Knobs::base()
        };
        t.row([
            "workload intensity".to_string(),
            format!("{rate} rps/kstudent"),
            fmt_cross(k.crossover()),
        ]);
    }
    for gib in [100u64, 400] {
        let k = Knobs {
            storage_gib_per_kstudent: gib,
            ..Knobs::base()
        };
        t.row([
            "stored content".to_string(),
            format!("{gib} GiB/kstudent"),
            fmt_cross(k.crossover()),
        ]);
    }
    for years in [1.0, 6.0] {
        let k = Knobs {
            years,
            ..Knobs::base()
        };
        t.row([
            "horizon".to_string(),
            format!("{years} years"),
            fmt_cross(k.crossover()),
        ]);
    }
    println!("{t}");
    println!(
        "\nThe qualitative claim holds everywhere a crossover exists: public wins below it,\n\
         ownership above. Knobs move the break-even point, not the shape."
    );
}
