//! # elc-bench — benchmark harness for the elearn-cloud experiments
//!
//! Two entry points:
//!
//! * the `paper-tables` binary regenerates every table (E1–E12 and T1)
//!   for three scenario sizes and writes CSVs next to the printed report;
//! * `benches/` holds one micro-benchmark per experiment plus the
//!   kernel ablation `a1_kernel` (binary-heap event queue vs the naive
//!   baseline), all on the dependency-free [`crit`] harness.
//!
//! Shared helpers live here so benches and the binary agree on scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crit;

use std::time::Duration;

use crit::Criterion;
use elc_core::scenario::Scenario;

/// A harness configuration tuned so the full bench suite completes in
/// a couple of minutes while still producing stable estimates.
#[must_use]
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

/// The scenarios the harness reports on, smallest first.
#[must_use]
pub fn harness_scenarios(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario::small_college(seed),
        Scenario::rural_learners(seed),
        Scenario::university(seed),
        Scenario::national_platform(seed),
    ]
}

/// The default seed used by `paper-tables` and the benches.
pub const HARNESS_SEED: u64 = 2013; // the paper's year

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_ordered_by_size() {
        let s = harness_scenarios(1);
        assert_eq!(s.len(), 4);
        for w in s.windows(2) {
            assert!(w[0].students() < w[1].students());
        }
    }
}
