//! Minimal, dependency-free micro-benchmark harness.
//!
//! Drop-in stand-in for the subset of the Criterion API the benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros). The container this repo
//! builds in has no crates.io access, so the harness ships its own timing
//! loop instead of depending on the `criterion` crate: per benchmark it
//! warms up, calibrates a batch size, takes `sample_size` wall-clock
//! samples per repetition and reports the minimum over `repetitions` of
//! the per-repetition median ns/iter, with the global min–max spread
//! (min-of-N medians filters transient machine load out of regression
//! comparisons — see [`Criterion::repetitions`]).
//!
//! It intentionally does *not* reproduce Criterion's statistics (outlier
//! classification, regression to baseline); the numbers are for
//! order-of-magnitude comparisons like the A1 heap-vs-naive ablation.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle; mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    repetitions: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            repetitions: 1,
        }
    }
}

/// The timing result of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median ns/iter over the samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total wall-clock budget for the timed samples of one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock spent running the closure untimed before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Number of independent measurement repetitions per benchmark; the
    /// reported median is the **minimum of the per-repetition medians**.
    ///
    /// One repetition's median still carries the machine's transient load
    /// (a background task landing on the sampled core shifts every sample
    /// the same way), so back-to-back runs of an unchanged benchmark can
    /// disagree by a few percent — enough to read as a fake regression.
    /// The minimum over N repetitions is a robust estimate of the
    /// undisturbed cost: noise only ever slows a repetition down.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn repetitions(mut self, n: usize) -> Self {
        assert!(n > 0, "repetitions must be positive");
        self.repetitions = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(self, &id.to_string(), f);
    }

    /// Runs a single benchmark and returns its timing, for harnesses that
    /// post-process results (e.g. `a5_hotpath`'s JSON emitter). `None` if
    /// the closure never called [`Bencher::iter`].
    pub fn bench_measured(
        &mut self,
        id: impl Display,
        f: impl FnMut(&mut Bencher),
    ) -> Option<Measurement> {
        run_one(self, &id.to_string(), f)
    }
}

/// A named set of benchmarks sharing the group prefix in their output.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, f);
    }

    /// Runs one parameterised benchmark; the closure also receives `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs the timing loop.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    repetitions: usize,
    /// Median / min / max ns-per-iteration, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, storing median and extreme ns/iter over the samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run untimed so caches, allocators and branch predictors
        // settle before sampling starts.
        let warm_end = Instant::now() + self.warm_up_time;
        let mut batch: u64 = 1;
        while Instant::now() < warm_end {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            batch = (batch * 2).min(1 << 16);
        }

        // Calibrate a batch size so one sample fills its share of the
        // measurement budget (cheap closures need large batches for the
        // clock to resolve them).
        let target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= target.min(0.05) || iters >= 1 << 30 {
                if elapsed < target {
                    let scale = (target / elapsed.max(1e-9)).min(1024.0);
                    iters = ((iters as f64 * scale) as u64).max(1);
                }
                break;
            }
            iters *= 2;
        }

        // One warm-up and calibration serve all repetitions; each
        // repetition is an independent sample set, and the reported median
        // is the minimum of the per-repetition medians (see
        // [`Criterion::repetitions`]).
        let mut best_median = f64::INFINITY;
        let mut global_min = f64::INFINITY;
        let mut global_max = f64::NEG_INFINITY;
        for _ in 0..self.repetitions {
            let mut samples: Vec<f64> = (0..self.sample_size)
                .map(|_| {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    start.elapsed().as_secs_f64() * 1e9 / iters as f64
                })
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
            best_median = best_median.min(samples[samples.len() / 2]);
            global_min = global_min.min(samples[0]);
            global_max = global_max.max(samples[samples.len() - 1]);
        }
        self.result = Some((best_median, global_min, global_max));
    }
}

fn run_one(
    criterion: &Criterion,
    label: &str,
    mut f: impl FnMut(&mut Bencher),
) -> Option<Measurement> {
    let mut b = Bencher {
        sample_size: criterion.sample_size,
        measurement_time: criterion.measurement_time,
        warm_up_time: criterion.warm_up_time,
        repetitions: criterion.repetitions,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => {
            println!(
                "bench: {label:<48} {:>14} ns/iter (min {}, max {}, {} samples x {} reps)",
                fmt_ns(median),
                fmt_ns(min),
                fmt_ns(max),
                criterion.sample_size,
                criterion.repetitions
            );
            Some(Measurement {
                median_ns: median,
                min_ns: min,
                max_ns: max,
            })
        }
        None => {
            println!("bench: {label:<48} (closure never called Bencher::iter)");
            None
        }
    }
}

/// Renders nanoseconds with thousands separators for scanability.
fn fmt_ns(ns: f64) -> String {
    let whole = ns.round() as u64;
    let digits = whole.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Declares the benchmark entry function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::crit::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = fast_config();
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = fast_config();
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64, 2, 3], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn repetitions_report_the_best_median() {
        let mut c = fast_config().repetitions(3);
        let m = c
            .bench_measured("noop", |b| b.iter(|| std::hint::black_box(1 + 1)))
            .expect("iter was called");
        // The reported median is one of the repetition medians, so it must
        // sit inside the global spread.
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.median_ns > 0.0);
    }

    #[test]
    #[should_panic(expected = "repetitions must be positive")]
    fn zero_repetitions_rejected() {
        let _ = Criterion::default().repetitions(0);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("heap", 1000).label, "heap/1000");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn fmt_ns_groups_digits() {
        assert_eq!(fmt_ns(1234567.0), "1_234_567");
        assert_eq!(fmt_ns(999.0), "999");
    }
}
