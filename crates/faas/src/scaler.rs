//! Scale-from-zero with an account-level burst concurrency cap.
//!
//! Providers never offer unbounded concurrency: an account gets a burst
//! pool shared by all of its functions. The [`FaasScaler`] sizes each
//! function from its offered load (Little's law over the per-invocation
//! service time, padded to a target utilisation) and grants cold starts
//! only while the shared pool has headroom. Functions are scaled in a
//! fixed order, so at an exam-day peak the pool can run dry before the
//! last functions are reached — exactly the starvation E17 measures.

use std::fmt;

use elc_simcore::time::SimDuration;

/// Construction errors for [`FaasScaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerError {
    /// Target utilisation must be in `(0, 1]`.
    InvalidTargetUtil,
    /// The burst concurrency cap must admit at least one sandbox.
    ZeroBurstLimit,
}

impl fmt::Display for ScalerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalerError::InvalidTargetUtil => {
                write!(f, "scaler target utilisation must be in (0, 1]")
            }
            ScalerError::ZeroBurstLimit => {
                write!(f, "burst concurrency limit must be >= 1")
            }
        }
    }
}

/// Account-level scaling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaasScaler {
    target_util: f64,
    burst_limit: u32,
}

impl FaasScaler {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Rejects a target utilisation outside `(0, 1]` and a zero burst cap.
    pub fn try_new(target_util: f64, burst_limit: u32) -> Result<Self, ScalerError> {
        if !(target_util.is_finite() && target_util > 0.0 && target_util <= 1.0) {
            return Err(ScalerError::InvalidTargetUtil);
        }
        if burst_limit == 0 {
            return Err(ScalerError::ZeroBurstLimit);
        }
        Ok(FaasScaler {
            target_util,
            burst_limit,
        })
    }

    /// Panicking constructor; see [`FaasScaler::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on the conditions `try_new` rejects.
    #[must_use]
    pub fn new(target_util: f64, burst_limit: u32) -> Self {
        match Self::try_new(target_util, burst_limit) {
            Ok(s) => s,
            Err(e) => panic!("invalid FaasScaler: {e}"),
        }
    }

    /// The shared burst concurrency cap.
    #[must_use]
    pub fn burst_limit(&self) -> u32 {
        self.burst_limit
    }

    /// Sandboxes one function wants for an offered load of `rate` requests
    /// per second at `service_time` each: Little's law padded to the
    /// target utilisation. Zero rate wants zero sandboxes — that is the
    /// scale-*to*-zero half of the bargain.
    #[must_use]
    pub fn desired_containers(&self, rate: f64, service_time: SimDuration) -> u32 {
        if rate <= 0.0 {
            return 0;
        }
        let in_flight = rate * service_time.as_secs_f64() / self.target_util;
        in_flight.ceil().min(f64::from(u32::MAX)) as u32
    }

    /// Cold starts granted this tick: enough to close the gap between
    /// `desired` and `live`, bounded by what the shared pool has left once
    /// `pool_in_use` sandboxes (all functions, this one included) are
    /// accounted for.
    #[must_use]
    pub fn grant(&self, desired: u32, live: u32, pool_in_use: u32) -> u32 {
        let wanted = desired.saturating_sub(live);
        let headroom = self.burst_limit.saturating_sub(pool_in_use);
        wanted.min(headroom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_bad_util() {
        for bad in [0.0, -0.2, 1.2, f64::NAN] {
            let err = FaasScaler::try_new(bad, 100).unwrap_err();
            assert_eq!(
                err.to_string(),
                "scaler target utilisation must be in (0, 1]"
            );
        }
    }

    #[test]
    fn try_new_rejects_zero_burst() {
        let err = FaasScaler::try_new(0.7, 0).unwrap_err();
        assert_eq!(err.to_string(), "burst concurrency limit must be >= 1");
    }

    #[test]
    fn desired_follows_littles_law() {
        let s = FaasScaler::new(0.5, 1_000);
        // 10 rps x 0.2 s = 2 in flight; at 50% target util -> 4 sandboxes.
        assert_eq!(
            s.desired_containers(10.0, SimDuration::from_secs_f64(0.2)),
            4
        );
        assert_eq!(
            s.desired_containers(0.0, SimDuration::from_secs_f64(0.2)),
            0
        );
    }

    #[test]
    fn grant_respects_the_shared_pool() {
        let s = FaasScaler::new(0.7, 10);
        assert_eq!(s.grant(8, 2, 2), 6);
        // Pool nearly exhausted by other functions.
        assert_eq!(s.grant(8, 2, 9), 1);
        assert_eq!(s.grant(8, 2, 10), 0);
        // Already at desired: nothing to start.
        assert_eq!(s.grant(3, 3, 3), 0);
    }
}
