//! Sandbox lifecycle: cold → initializing → warm → idle → reaped.
//!
//! A [`Container`] is one function sandbox. It begins *cold* (allocated but
//! not started), spends a drawn cold-start interval *initializing*, is
//! *warm* while it executes invocations, parks *idle* between them, and is
//! *reaped* when its keepalive window expires. The struct is a pure state
//! machine — the [`Invoker`](crate::Invoker) drives the transitions and
//! owns every policy decision.

use elc_simcore::time::{SimDuration, SimTime};

/// Lifecycle states of a function sandbox.
///
/// Legal transitions (all driven by the invoker):
///
/// ```text
/// Cold --start--> Initializing --ready--> Idle <--finish/begin--> Warm
///                                          |
///                                          +--keepalive expiry--> Reaped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Allocated by the platform but not yet started.
    Cold,
    /// Running init code; cannot serve until the cold start completes.
    Initializing,
    /// Executing an invocation.
    Warm,
    /// Started and ready, waiting for the next invocation.
    Idle,
    /// Reclaimed by the keepalive reaper; terminal.
    Reaped,
}

/// One function sandbox.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    id: u64,
    state: ContainerState,
    /// When `start` was called; meaningful from `Initializing` on.
    started_at: SimTime,
    /// When initialization completes and the sandbox can first serve.
    ready_at: SimTime,
    /// When the sandbox last went idle; the keepalive clock.
    idle_since: SimTime,
    /// Completed invocations over the sandbox lifetime.
    invocations: u64,
}

impl Container {
    /// Allocates a cold sandbox.
    #[must_use]
    pub fn new(id: u64) -> Self {
        Container {
            id,
            state: ContainerState::Cold,
            started_at: SimTime::ZERO,
            ready_at: SimTime::ZERO,
            idle_since: SimTime::ZERO,
            invocations: 0,
        }
    }

    /// Sandbox identifier (assigned by the invoker).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Completed invocations.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// When the sandbox last went idle.
    #[must_use]
    pub fn idle_since(&self) -> SimTime {
        self.idle_since
    }

    /// Begins the cold start: `Cold -> Initializing`, ready after
    /// `cold_start`.
    ///
    /// # Panics
    ///
    /// Panics unless the sandbox is `Cold`.
    pub fn start(&mut self, now: SimTime, cold_start: SimDuration) {
        assert_eq!(
            self.state,
            ContainerState::Cold,
            "start on a started sandbox"
        );
        self.state = ContainerState::Initializing;
        self.started_at = now;
        self.ready_at = now + cold_start;
    }

    /// Promotes `Initializing -> Idle` once the cold start has elapsed.
    /// Returns `true` when the promotion happened. Other states are left
    /// untouched.
    pub fn poll_ready(&mut self, now: SimTime) -> bool {
        if self.state == ContainerState::Initializing && now >= self.ready_at {
            self.state = ContainerState::Idle;
            self.idle_since = self.ready_at;
            return true;
        }
        false
    }

    /// Marks the sandbox busy for an invocation: `Idle -> Warm`. Returns
    /// the idle gap it waited (for adaptive keepalive learning).
    ///
    /// # Panics
    ///
    /// Panics unless the sandbox is `Idle`.
    pub fn begin_invocation(&mut self, now: SimTime) -> SimDuration {
        assert_eq!(
            self.state,
            ContainerState::Idle,
            "invoke on a non-idle sandbox"
        );
        self.state = ContainerState::Warm;
        now - self.idle_since
    }

    /// Completes the invocation: `Warm -> Idle`.
    ///
    /// # Panics
    ///
    /// Panics unless the sandbox is `Warm`.
    pub fn finish_invocation(&mut self, now: SimTime) {
        assert_eq!(
            self.state,
            ContainerState::Warm,
            "finish on a non-warm sandbox"
        );
        self.state = ContainerState::Idle;
        self.idle_since = now;
        self.invocations += 1;
    }

    /// Reclaims the sandbox: `Idle -> Reaped`.
    ///
    /// # Panics
    ///
    /// Panics unless the sandbox is `Idle` — reaping a sandbox mid-cold-start
    /// or mid-invocation is a platform bug, and the assertion is what the
    /// keepalive proptests lean on.
    pub fn reap(&mut self) {
        assert_eq!(
            self.state,
            ContainerState::Idle,
            "reap on a non-idle sandbox"
        );
        self.state = ContainerState::Reaped;
    }

    /// Chaos kill: `Initializing | Idle -> Reaped`. Unlike [`Container::reap`]
    /// this may interrupt a cold start — a crashing host takes initializing
    /// sandboxes with it.
    ///
    /// # Panics
    ///
    /// Panics if the sandbox is executing an invocation (`Warm`) or not
    /// live — chaos is applied between ticks, never mid-invocation.
    pub fn kill(&mut self) {
        assert!(
            matches!(
                self.state,
                ContainerState::Initializing | ContainerState::Idle
            ),
            "kill on a non-live or executing sandbox"
        );
        self.state = ContainerState::Reaped;
    }

    /// True while the sandbox counts against live concurrency
    /// (anything started and not yet reaped).
    #[must_use]
    pub fn is_live(&self) -> bool {
        matches!(
            self.state,
            ContainerState::Initializing | ContainerState::Warm | ContainerState::Idle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn full_lifecycle() {
        let mut c = Container::new(7);
        assert_eq!(c.state(), ContainerState::Cold);
        assert!(!c.is_live());

        let t0 = SimTime::ZERO + secs(100);
        c.start(t0, secs(2));
        assert_eq!(c.state(), ContainerState::Initializing);
        assert!(c.is_live());

        assert!(!c.poll_ready(t0 + secs(1)));
        assert!(c.poll_ready(t0 + secs(2)));
        assert_eq!(c.state(), ContainerState::Idle);

        let gap = c.begin_invocation(t0 + secs(10));
        assert_eq!(gap, secs(8)); // idle_since = ready_at = t0+2
        c.finish_invocation(t0 + secs(11));
        assert_eq!(c.invocations(), 1);
        assert_eq!(c.idle_since(), t0 + secs(11));

        c.reap();
        assert_eq!(c.state(), ContainerState::Reaped);
        assert!(!c.is_live());
    }

    #[test]
    #[should_panic(expected = "reap on a non-idle sandbox")]
    fn reap_mid_invocation_panics() {
        let mut c = Container::new(0);
        c.start(SimTime::ZERO, secs(1));
        c.poll_ready(SimTime::ZERO + secs(1));
        c.begin_invocation(SimTime::ZERO + secs(1));
        c.reap();
    }

    #[test]
    #[should_panic(expected = "reap on a non-idle sandbox")]
    fn reap_mid_cold_start_panics() {
        let mut c = Container::new(0);
        c.start(SimTime::ZERO, secs(5));
        c.reap();
    }

    #[test]
    fn kill_interrupts_a_cold_start() {
        let mut c = Container::new(0);
        c.start(SimTime::ZERO, secs(5));
        c.kill();
        assert_eq!(c.state(), ContainerState::Reaped);
    }

    #[test]
    #[should_panic(expected = "kill on a non-live or executing sandbox")]
    fn kill_mid_invocation_panics() {
        let mut c = Container::new(0);
        c.start(SimTime::ZERO, secs(1));
        c.poll_ready(SimTime::ZERO + secs(1));
        c.begin_invocation(SimTime::ZERO + secs(1));
        c.kill();
    }

    #[test]
    #[should_panic(expected = "start on a started sandbox")]
    fn double_start_panics() {
        let mut c = Container::new(0);
        c.start(SimTime::ZERO, secs(1));
        c.start(SimTime::ZERO, secs(1));
    }
}
