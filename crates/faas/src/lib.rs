//! # elc-faas — a deterministic serverless platform model
//!
//! The paper's deployment axis stops at public / private / hybrid; this
//! crate models the fourth answer a university IT department hears today:
//! *functions as a service*. Capacity is not provisioned — it materialises
//! per invocation, billed by the GB-second, and disappears when idle. The
//! economics are seductive (zero idle cost through the diurnal trough) and
//! the failure mode is specific (cold-start latency exactly when the whole
//! cohort presses *submit*).
//!
//! The model is a fluid, tick-driven abstraction of a FaaS control plane:
//!
//! * [`Container`] — one sandbox with the lifecycle
//!   cold → initializing → warm → idle → reaped ([`ContainerState`]).
//! * [`StartProfile`] / [`ColdStartProfile`] — per-[`RequestKind`]
//!   cold/warm start times and memory sizing.
//! * [`KeepalivePolicy`] — when idle sandboxes are reclaimed: a
//!   [`FixedWindow`] (provider default) or an [`AdaptiveKeepalive`] that
//!   tracks the observed idle-gap histogram, in the spirit of hybrid
//!   histogram keepalive policies from the serverless literature.
//! * [`Invoker`] — per-function admission: warm containers serve first, a
//!   bounded buffer absorbs overflow, the rest is shed
//!   ([`elc_elearn::request::RequestOutcome`] semantics).
//! * [`FaasScaler`] — scale-from-zero with an account-level burst
//!   concurrency cap shared across functions.
//! * [`InvocationBilling`] — GB-second + per-request metering with a
//!   free-tier knob, priced into an [`elc_cloud::billing::Invoice`].
//!
//! Everything is a pure function of the caller's [`SimRng`] lineage: no
//! wall clock, no global state, byte-identical across thread counts.
//!
//! Tracing lands under the `faas` target ([`TRACE_TARGET`]):
//! `container.cold_start`, `container.reap`, `invoke.buffered`,
//! `invoke.shed`.
//!
//! [`SimRng`]: elc_simcore::rng::SimRng
//! [`RequestKind`]: elc_elearn::request::RequestKind
//!
//! # Examples
//!
//! ```
//! use elc_faas::{ColdStartProfile, FaasScaler, Invoker, InvokerConfig};
//! use elc_simcore::metrics::Histogram;
//! use elc_simcore::rng::SimRng;
//! use elc_simcore::time::{SimDuration, SimTime};
//! use elc_elearn::request::RequestKind;
//!
//! let profile = ColdStartProfile::standard();
//! let config = InvokerConfig::fixed_window(SimDuration::from_mins(5), 1_000, 2_000);
//! let mut invoker = Invoker::new(RequestKind::QuizSubmit, config);
//! let scaler = FaasScaler::new(0.7, 400);
//! let mut rng = SimRng::seed(42).derive("faas");
//! let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
//!
//! let now = SimTime::ZERO;
//! let tick = SimDuration::from_secs(60);
//! let spec = profile.get(RequestKind::QuizSubmit);
//! let desired = scaler.desired_containers(3.0, spec.service_time());
//! let grant = scaler.grant(desired, invoker.live(), 0);
//! let out = invoker.tick(now, tick, 180, grant, spec, &mut rng, &mut warm, &mut cold);
//! assert_eq!(out.cold_starts, u64::from(grant));
//! assert_eq!(out.served_warm + out.served_cold + out.buffered + out.shed, 180);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod container;
pub mod invoker;
pub mod keepalive;
pub mod profile;
pub mod scaler;

pub use billing::{FaasPriceSheet, InvocationBilling, PriceError};
pub use container::{Container, ContainerState};
pub use invoker::{Invoker, InvokerConfig, InvokerError, TickOutcome};
pub use keepalive::{AdaptiveKeepalive, FixedWindow, KeepaliveError, KeepalivePolicy};
pub use profile::{ColdStartProfile, ProfileError, StartProfile};
pub use scaler::{FaasScaler, ScalerError};

/// Trace target for every event this crate records.
pub const TRACE_TARGET: &str = "faas";
