//! Per-function start-time and sizing profiles.
//!
//! Each [`RequestKind`] maps to one deployed function. A [`StartProfile`]
//! carries its cold-start distribution (mean, sampled uniformly in
//! `[0.5, 1.5)× mean` — heavier runtimes boot slower but with bounded
//! spread), warm-start overhead, per-invocation service time and memory
//! sizing; [`ColdStartProfile`] is the per-platform table over all nine
//! kinds.

use std::fmt;

use elc_elearn::request::RequestKind;
use elc_simcore::rng::SimRng;
use elc_simcore::time::SimDuration;

/// Construction errors for [`StartProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// Cold-start mean must be positive.
    NonPositiveColdStart,
    /// Warm-start overhead must be positive.
    NonPositiveWarmStart,
    /// Service time must be positive.
    NonPositiveServiceTime,
    /// Memory must be positive and finite.
    InvalidMemory,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NonPositiveColdStart => {
                write!(f, "cold-start mean must be a positive duration")
            }
            ProfileError::NonPositiveWarmStart => {
                write!(f, "warm-start overhead must be a positive duration")
            }
            ProfileError::NonPositiveServiceTime => {
                write!(f, "service time must be a positive duration")
            }
            ProfileError::InvalidMemory => {
                write!(f, "function memory must be positive and finite GB")
            }
        }
    }
}

/// Start-time and sizing profile of one deployed function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartProfile {
    cold_start_mean: SimDuration,
    warm_start: SimDuration,
    service_time: SimDuration,
    memory_gb: f64,
}

impl StartProfile {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive durations and non-positive or non-finite
    /// memory.
    pub fn try_new(
        cold_start_mean: SimDuration,
        warm_start: SimDuration,
        service_time: SimDuration,
        memory_gb: f64,
    ) -> Result<Self, ProfileError> {
        if cold_start_mean.as_nanos() == 0 {
            return Err(ProfileError::NonPositiveColdStart);
        }
        if warm_start.as_nanos() == 0 {
            return Err(ProfileError::NonPositiveWarmStart);
        }
        if service_time.as_nanos() == 0 {
            return Err(ProfileError::NonPositiveServiceTime);
        }
        if !(memory_gb.is_finite() && memory_gb > 0.0) {
            return Err(ProfileError::InvalidMemory);
        }
        Ok(StartProfile {
            cold_start_mean,
            warm_start,
            service_time,
            memory_gb,
        })
    }

    /// Panicking constructor; see [`StartProfile::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on the conditions `try_new` rejects.
    #[must_use]
    pub fn new(
        cold_start_mean: SimDuration,
        warm_start: SimDuration,
        service_time: SimDuration,
        memory_gb: f64,
    ) -> Self {
        match Self::try_new(cold_start_mean, warm_start, service_time, memory_gb) {
            Ok(p) => p,
            Err(e) => panic!("invalid StartProfile: {e}"),
        }
    }

    /// Returns the profile with its memory sizing replaced — how the
    /// deployment layer overlays component-derived sizing on the platform
    /// defaults.
    ///
    /// # Panics
    ///
    /// Panics unless `memory_gb` is positive and finite.
    #[must_use]
    pub fn with_memory_gb(self, memory_gb: f64) -> Self {
        Self::new(
            self.cold_start_mean,
            self.warm_start,
            self.service_time,
            memory_gb,
        )
    }

    /// Mean cold-start duration.
    #[must_use]
    pub fn cold_start_mean(&self) -> SimDuration {
        self.cold_start_mean
    }

    /// Warm-start overhead added to every invocation on a warm sandbox.
    #[must_use]
    pub fn warm_start(&self) -> SimDuration {
        self.warm_start
    }

    /// Per-invocation execution time.
    #[must_use]
    pub fn service_time(&self) -> SimDuration {
        self.service_time
    }

    /// Configured function memory, in GB (the billing unit).
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Draws one cold-start duration: uniform in `[0.5, 1.5) ×` the mean.
    pub fn sample_cold_start(&self, rng: &mut SimRng) -> SimDuration {
        self.cold_start_mean.mul_f64(rng.range_f64(0.5, 1.5))
    }
}

/// The per-platform table of [`StartProfile`]s, one per [`RequestKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStartProfile {
    profiles: [StartProfile; RequestKind::ALL.len()],
}

/// Per-invocation execution time of the lightest function, in seconds;
/// kinds scale by their [`RequestKind::service_weight`].
const SERVICE_BASE_S: f64 = 0.08;

impl ColdStartProfile {
    /// The standard 2013-era platform table: cold starts around a second
    /// (heavier runtimes slower), millisecond warm starts, service time
    /// proportional to each kind's service weight, and memory sized to the
    /// function's working set.
    #[must_use]
    pub fn standard() -> Self {
        let profiles = RequestKind::ALL.map(|kind| {
            let weight = kind.service_weight();
            let memory_gb = match kind {
                RequestKind::Upload => 1.0,
                RequestKind::QuizSubmit | RequestKind::CoursePage => 0.512,
                RequestKind::VideoChunk | RequestKind::Download => 0.128,
                _ => 0.256,
            };
            StartProfile::new(
                SimDuration::from_secs_f64(0.9 + 0.12 * weight),
                SimDuration::from_secs_f64(0.003),
                SimDuration::from_secs_f64(SERVICE_BASE_S * weight),
                memory_gb,
            )
        });
        ColdStartProfile { profiles }
    }

    /// The profile for `kind`.
    #[must_use]
    pub fn get(&self, kind: RequestKind) -> &StartProfile {
        let idx = RequestKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("every kind is profiled");
        &self.profiles[idx]
    }

    /// Replaces the profile for `kind`.
    pub fn set(&mut self, kind: RequestKind, profile: StartProfile) {
        let idx = RequestKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("every kind is profiled");
        self.profiles[idx] = profile;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StartProfile {
        StartProfile::new(
            SimDuration::from_secs_f64(1.0),
            SimDuration::from_secs_f64(0.003),
            SimDuration::from_secs_f64(0.1),
            0.256,
        )
    }

    #[test]
    fn try_new_rejects_zero_cold_start() {
        let err = StartProfile::try_new(
            SimDuration::from_secs(0),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            0.5,
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "cold-start mean must be a positive duration"
        );
    }

    #[test]
    fn try_new_rejects_zero_warm_start() {
        let err = StartProfile::try_new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(0),
            SimDuration::from_secs(1),
            0.5,
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "warm-start overhead must be a positive duration"
        );
    }

    #[test]
    fn try_new_rejects_zero_service_time() {
        let err = StartProfile::try_new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            SimDuration::from_secs(0),
            0.5,
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "service time must be a positive duration");
    }

    #[test]
    fn try_new_rejects_bad_memory() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = StartProfile::try_new(
                SimDuration::from_secs(1),
                SimDuration::from_secs(1),
                SimDuration::from_secs(1),
                bad,
            )
            .unwrap_err();
            assert_eq!(
                err.to_string(),
                "function memory must be positive and finite GB"
            );
        }
    }

    #[test]
    fn sample_cold_start_stays_within_half_to_three_halves() {
        let p = base();
        let mut rng = SimRng::seed(7).derive("cold");
        for _ in 0..1_000 {
            let d = p.sample_cold_start(&mut rng).as_secs_f64();
            assert!((0.5..1.5).contains(&d), "cold start {d}s out of range");
        }
    }

    #[test]
    fn standard_covers_every_kind_and_scales_with_weight() {
        let table = ColdStartProfile::standard();
        for kind in RequestKind::ALL {
            let p = table.get(kind);
            assert!(p.service_time().as_secs_f64() > 0.0);
            assert!(p.memory_gb() > 0.0);
        }
        let video = table.get(RequestKind::VideoChunk);
        let upload = table.get(RequestKind::Upload);
        assert!(upload.service_time() > video.service_time());
        assert!(upload.cold_start_mean() > video.cold_start_mean());
    }

    #[test]
    fn with_memory_overrides_only_memory() {
        let p = base().with_memory_gb(2.0);
        assert_eq!(p.memory_gb(), 2.0);
        assert_eq!(p.service_time(), base().service_time());
    }

    #[test]
    fn set_replaces_one_entry() {
        let mut table = ColdStartProfile::standard();
        let custom = base().with_memory_gb(4.0);
        table.set(RequestKind::Login, custom);
        assert_eq!(table.get(RequestKind::Login).memory_gb(), 4.0);
        assert_ne!(table.get(RequestKind::CoursePage).memory_gb(), 4.0);
    }
}
