//! Keepalive: how long an idle sandbox survives before the reaper.
//!
//! Two policies. [`FixedWindow`] is the classic provider default — every
//! idle sandbox lives exactly N minutes past its last invocation.
//! [`AdaptiveKeepalive`] is a histogram policy in the spirit of hybrid
//! keepalive from the serverless literature: it records the idle gaps that
//! actually preceded reuse and keeps sandboxes just long enough to cover a
//! chosen percentile of them, clamped to a `[min, max]` band. Bursty
//! workloads earn long windows; dead functions are reclaimed at the floor.

use std::fmt;

use elc_simcore::metrics::Histogram;
use elc_simcore::time::SimDuration;

/// Construction errors for keepalive policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepaliveError {
    /// A fixed window must be a positive duration.
    NonPositiveWindow,
    /// The adaptive target percentile must be in `(0, 1]`.
    InvalidPercentile,
    /// Adaptive bounds must satisfy `0 < min <= max`.
    InvalidBounds,
}

impl fmt::Display for KeepaliveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeepaliveError::NonPositiveWindow => {
                write!(f, "keepalive window must be a positive duration")
            }
            KeepaliveError::InvalidPercentile => {
                write!(f, "keepalive percentile must be in (0, 1]")
            }
            KeepaliveError::InvalidBounds => {
                write!(f, "keepalive bounds must satisfy 0 < min <= max")
            }
        }
    }
}

/// Fixed-window keepalive: idle sandboxes are reaped after `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedWindow {
    window: SimDuration,
}

impl FixedWindow {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Rejects a zero window.
    pub fn try_new(window: SimDuration) -> Result<Self, KeepaliveError> {
        if window.as_nanos() == 0 {
            return Err(KeepaliveError::NonPositiveWindow);
        }
        Ok(FixedWindow { window })
    }

    /// Panicking constructor; see [`FixedWindow::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        match Self::try_new(window) {
            Ok(w) => w,
            Err(e) => panic!("invalid FixedWindow: {e}"),
        }
    }

    /// The configured window.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

/// Histogram-driven keepalive: the window tracks a percentile of the
/// observed idle gaps between invocations, clamped to `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveKeepalive {
    gaps: Histogram,
    percentile: f64,
    min_window: SimDuration,
    max_window: SimDuration,
}

impl AdaptiveKeepalive {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Rejects a percentile outside `(0, 1]` and bounds that are zero or
    /// inverted.
    pub fn try_new(
        percentile: f64,
        min_window: SimDuration,
        max_window: SimDuration,
    ) -> Result<Self, KeepaliveError> {
        if !(percentile.is_finite() && percentile > 0.0 && percentile <= 1.0) {
            return Err(KeepaliveError::InvalidPercentile);
        }
        if min_window.as_nanos() == 0 || min_window > max_window {
            return Err(KeepaliveError::InvalidBounds);
        }
        Ok(AdaptiveKeepalive {
            gaps: Histogram::new(),
            percentile,
            min_window,
            max_window,
        })
    }

    /// Panicking constructor; see [`AdaptiveKeepalive::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on the conditions `try_new` rejects.
    #[must_use]
    pub fn new(percentile: f64, min_window: SimDuration, max_window: SimDuration) -> Self {
        match Self::try_new(percentile, min_window, max_window) {
            Ok(k) => k,
            Err(e) => panic!("invalid AdaptiveKeepalive: {e}"),
        }
    }

    /// Records one observed idle gap that ended in a reuse.
    pub fn observe_gap(&mut self, gap: SimDuration) {
        self.gaps.record_duration(gap);
    }

    /// Gaps observed so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.gaps.count()
    }

    /// Current window: the target percentile of observed gaps, clamped to
    /// the configured band. With no observations yet it starts
    /// conservative, at the band's maximum.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        if self.gaps.count() == 0 {
            return self.max_window;
        }
        let target = SimDuration::from_secs_f64(self.gaps.quantile(self.percentile));
        target.clamp(self.min_window, self.max_window)
    }
}

/// The keepalive policy an [`Invoker`](crate::Invoker) runs.
#[derive(Debug, Clone, PartialEq)]
pub enum KeepalivePolicy {
    /// Fixed idle window.
    Fixed(FixedWindow),
    /// Histogram-adaptive idle window.
    Adaptive(AdaptiveKeepalive),
}

impl KeepalivePolicy {
    /// The idle window currently in force.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        match self {
            KeepalivePolicy::Fixed(w) => w.window(),
            KeepalivePolicy::Adaptive(a) => a.window(),
        }
    }

    /// Feeds an observed reuse gap; a no-op for the fixed policy.
    pub fn observe_gap(&mut self, gap: SimDuration) {
        if let KeepalivePolicy::Adaptive(a) = self {
            a.observe_gap(gap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn try_new_rejects_zero_window() {
        let err = FixedWindow::try_new(SimDuration::from_secs(0)).unwrap_err();
        assert_eq!(
            err.to_string(),
            "keepalive window must be a positive duration"
        );
    }

    #[test]
    fn try_new_rejects_bad_percentile() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = AdaptiveKeepalive::try_new(bad, mins(1), mins(10)).unwrap_err();
            assert_eq!(err.to_string(), "keepalive percentile must be in (0, 1]");
        }
    }

    #[test]
    fn try_new_rejects_bad_bounds() {
        let zero = SimDuration::from_secs(0);
        for (lo, hi) in [(zero, mins(10)), (mins(10), mins(1))] {
            let err = AdaptiveKeepalive::try_new(0.95, lo, hi).unwrap_err();
            assert_eq!(
                err.to_string(),
                "keepalive bounds must satisfy 0 < min <= max"
            );
        }
    }

    #[test]
    fn fixed_window_is_constant() {
        let mut p = KeepalivePolicy::Fixed(FixedWindow::new(mins(5)));
        assert_eq!(p.window(), mins(5));
        p.observe_gap(mins(60));
        assert_eq!(p.window(), mins(5));
    }

    #[test]
    fn adaptive_starts_at_max_then_tracks_gaps() {
        let mut a = AdaptiveKeepalive::new(0.99, mins(1), mins(30));
        assert_eq!(a.window(), mins(30));
        for _ in 0..100 {
            a.observe_gap(SimDuration::from_secs(90));
        }
        let w = a.window().as_secs_f64();
        assert!(
            (80.0..120.0).contains(&w),
            "window {w}s should track ~90s gaps"
        );
    }

    #[test]
    fn adaptive_clamps_to_band() {
        let mut a = AdaptiveKeepalive::new(0.99, mins(2), mins(30));
        for _ in 0..50 {
            a.observe_gap(SimDuration::from_secs(1));
        }
        assert_eq!(a.window(), mins(2));
        let mut b = AdaptiveKeepalive::new(0.99, mins(1), mins(5));
        for _ in 0..50 {
            b.observe_gap(SimDuration::from_hours(2));
        }
        assert_eq!(b.window(), mins(5));
    }
}
