//! Per-function admission: warm serving, bounded buffering, shedding,
//! cold-start grants and keepalive reaping — one tick at a time.
//!
//! The [`Invoker`] owns every sandbox of one function ([`RequestKind`]) and
//! advances in fluid ticks: a tick carries `demand` invocations, and the
//! invoker reports where each went ([`TickOutcome`]) while recording
//! latency into caller-owned histograms split by path — *warm* (an idle
//! sandbox picked the request up immediately) versus *cold* (the request
//! paid a cold start or waited in the buffer). The split is exactly the
//! cold/warm p95 decomposition experiment E17 reports.
//!
//! Tick order matters and is fixed: ready promotions, keepalive reaping,
//! warm serving (buffer drains before fresh arrivals), granted cold
//! starts (a sandbox whose cold start completes intra-tick serves a
//! prorated share), then buffer/shed of the remainder. Reaping runs
//! *before* serving so a gap longer than the keepalive window is a real
//! cold start — the reaper beat the request, which is the whole
//! scale-from-zero story.

use std::collections::VecDeque;
use std::fmt;

use elc_elearn::request::RequestKind;
use elc_simcore::metrics::Histogram;
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::keepalive::{FixedWindow, KeepalivePolicy};
use crate::profile::StartProfile;
use crate::TRACE_TARGET;

/// Construction errors for [`InvokerConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokerError {
    /// The per-function concurrency limit must admit at least one sandbox.
    ZeroConcurrency,
    /// The invocation buffer capacity must not be negative.
    NegativeBuffer,
}

impl fmt::Display for InvokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokerError::ZeroConcurrency => {
                write!(f, "per-function concurrency limit must be >= 1")
            }
            InvokerError::NegativeBuffer => {
                write!(f, "invocation buffer capacity must be >= 0")
            }
        }
    }
}

/// Configuration of one function's invoker.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokerConfig {
    keepalive: KeepalivePolicy,
    concurrency_limit: u32,
    buffer_capacity: u64,
}

impl InvokerConfig {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Rejects a zero concurrency limit and a negative buffer capacity.
    pub fn try_new(
        keepalive: KeepalivePolicy,
        concurrency_limit: u32,
        buffer_capacity: i64,
    ) -> Result<Self, InvokerError> {
        if concurrency_limit == 0 {
            return Err(InvokerError::ZeroConcurrency);
        }
        if buffer_capacity < 0 {
            return Err(InvokerError::NegativeBuffer);
        }
        Ok(InvokerConfig {
            keepalive,
            concurrency_limit,
            buffer_capacity: buffer_capacity as u64,
        })
    }

    /// Panicking constructor; see [`InvokerConfig::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on the conditions `try_new` rejects.
    #[must_use]
    pub fn new(keepalive: KeepalivePolicy, concurrency_limit: u32, buffer_capacity: i64) -> Self {
        match Self::try_new(keepalive, concurrency_limit, buffer_capacity) {
            Ok(c) => c,
            Err(e) => panic!("invalid InvokerConfig: {e}"),
        }
    }

    /// Convenience: a fixed-window keepalive configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero window or the conditions `try_new` rejects.
    #[must_use]
    pub fn fixed_window(window: SimDuration, concurrency_limit: u32, buffer_capacity: i64) -> Self {
        Self::new(
            KeepalivePolicy::Fixed(FixedWindow::new(window)),
            concurrency_limit,
            buffer_capacity,
        )
    }

    /// The keepalive policy.
    #[must_use]
    pub fn keepalive(&self) -> &KeepalivePolicy {
        &self.keepalive
    }

    /// Max live sandboxes for this function.
    #[must_use]
    pub fn concurrency_limit(&self) -> u32 {
        self.concurrency_limit
    }

    /// Max buffered invocations.
    #[must_use]
    pub fn buffer_capacity(&self) -> u64 {
        self.buffer_capacity
    }
}

/// Where one tick's invocations went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickOutcome {
    /// Served immediately by an already-warm sandbox.
    pub served_warm: u64,
    /// Served on the cold path: behind a fresh cold start, or drained
    /// from the buffer after waiting.
    pub served_cold: u64,
    /// Parked in the bounded buffer.
    pub buffered: u64,
    /// Rejected: no capacity, no buffer space.
    pub shed: u64,
    /// Sandboxes that began a cold start this tick.
    pub cold_starts: u64,
    /// Idle sandboxes reclaimed by keepalive this tick.
    pub reaped: u64,
}

/// One buffered batch: arrival time and how many invocations it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Buffered {
    since: SimTime,
    count: u64,
}

/// The per-function admission engine. See the module docs for tick order.
#[derive(Debug, Clone, PartialEq)]
pub struct Invoker {
    kind: RequestKind,
    config: InvokerConfig,
    containers: Vec<crate::Container>,
    buffer: VecDeque<Buffered>,
    buffered_count: u64,
    next_id: u64,
    started_total: u64,
    reaped_total: u64,
}

impl Invoker {
    /// Creates the invoker for one function.
    #[must_use]
    pub fn new(kind: RequestKind, config: InvokerConfig) -> Self {
        Invoker {
            kind,
            config,
            containers: Vec::new(),
            buffer: VecDeque::new(),
            buffered_count: 0,
            next_id: 0,
            started_total: 0,
            reaped_total: 0,
        }
    }

    /// The function this invoker serves.
    #[must_use]
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Live sandboxes (initializing, warm or idle).
    #[must_use]
    pub fn live(&self) -> u32 {
        self.containers.iter().filter(|c| c.is_live()).count() as u32
    }

    /// Sandboxes currently idle and ready to serve.
    #[must_use]
    pub fn idle(&self) -> u32 {
        self.containers
            .iter()
            .filter(|c| c.state() == crate::ContainerState::Idle)
            .count() as u32
    }

    /// Invocations currently parked in the buffer.
    #[must_use]
    pub fn buffered(&self) -> u64 {
        self.buffered_count
    }

    /// Sandboxes ever cold-started.
    #[must_use]
    pub fn started_total(&self) -> u64 {
        self.started_total
    }

    /// Sandboxes ever reaped.
    #[must_use]
    pub fn reaped_total(&self) -> u64 {
        self.reaped_total
    }

    /// Empties the buffer (end-of-run accounting: the abandoned
    /// invocations become `GaveUp` in the caller's books) and returns how
    /// many were waiting.
    pub fn abandon_buffer(&mut self) -> u64 {
        let n = self.buffered_count;
        self.buffer.clear();
        self.buffered_count = 0;
        n
    }

    /// Kills `count` live sandboxes (chaos: host crashes under a cascade).
    /// Initializing sandboxes die first, then idle ones; returns how many
    /// actually died. Sandboxes mid-invocation are not interrupted — at
    /// tick granularity they are between invocations by the time chaos is
    /// applied.
    pub fn kill(&mut self, count: u32) -> u32 {
        let mut killed = 0u32;
        for pass in [
            crate::ContainerState::Initializing,
            crate::ContainerState::Idle,
        ] {
            for c in &mut self.containers {
                if killed >= count {
                    break;
                }
                if c.state() == pass {
                    c.kill();
                    killed += 1;
                    self.reaped_total += 1;
                }
            }
        }
        self.containers.retain(crate::Container::is_live);
        killed
    }

    /// Advances one tick. `demand` invocations arrive uniformly across the
    /// tick, `grant` is the scaler's cold-start allowance, and latency is
    /// recorded into `warm_hist` / `cold_hist` in seconds (see the module
    /// docs for the path split).
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: SimTime,
        tick_len: SimDuration,
        demand: u64,
        grant: u32,
        spec: &StartProfile,
        rng: &mut SimRng,
        warm_hist: &mut Histogram,
        cold_hist: &mut Histogram,
    ) -> TickOutcome {
        let mut out = TickOutcome::default();

        // 1. Cold starts from earlier ticks that have finished initializing.
        for c in &mut self.containers {
            c.poll_ready(now);
        }

        // 2. Keepalive reaping, before serving: if the idle gap outlived
        //    the window, the reaper beat this tick's demand.
        let window = self.config.keepalive.window();
        for c in &mut self.containers {
            if c.state() == crate::ContainerState::Idle
                && c.idle_since() <= now
                && now - c.idle_since() >= window
            {
                let idle_for = now - c.idle_since();
                c.reap();
                self.reaped_total += 1;
                out.reaped += 1;
                if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
                    elc_trace::instant(
                        now.as_nanos(),
                        TRACE_TARGET,
                        "container.reap",
                        Level::Debug,
                        &[
                            Field::str("kind", self.kind.to_string()),
                            Field::u64("container", c.id()),
                            Field::duration_ns("idle", idle_for.as_nanos()),
                        ],
                    );
                }
            }
        }
        self.containers.retain(crate::Container::is_live);

        // 3. Warm serving: each idle sandbox runs back-to-back invocations
        //    for the whole tick; buffered work drains before fresh.
        let per_invocation = spec.warm_start() + spec.service_time();
        let slots_per = (tick_len.as_nanos() / per_invocation.as_nanos()).max(1);
        let warm_latency = per_invocation.as_secs_f64();
        let mut fresh = demand;
        for i in 0..self.containers.len() {
            if self.buffered_count == 0 && fresh == 0 {
                break;
            }
            if self.containers[i].state() != crate::ContainerState::Idle {
                continue;
            }
            let gap = self.containers[i].begin_invocation(now);
            self.config.keepalive.observe_gap(gap);
            let mut slots = slots_per;
            // Buffered invocations: latency = wait + warm path.
            while slots > 0 && self.buffered_count > 0 {
                let head = self.buffer.front_mut().expect("buffered_count > 0");
                let n = head.count.min(slots);
                cold_hist.record_n((now - head.since).as_secs_f64() + warm_latency, n);
                out.served_cold += n;
                self.buffered_count -= n;
                head.count -= n;
                slots -= n;
                if head.count == 0 {
                    self.buffer.pop_front();
                }
            }
            let n = fresh.min(slots);
            if n > 0 {
                warm_hist.record_n(warm_latency, n);
                out.served_warm += n;
                fresh -= n;
            }
            self.containers[i].finish_invocation(now);
        }

        // 4. Granted cold starts. A sandbox whose cold start completes
        //    within the tick serves a prorated share of the leftovers on
        //    the cold path.
        let headroom = self.config.concurrency_limit.saturating_sub(self.live());
        let starts = grant.min(headroom);
        for _ in 0..starts {
            let cold = spec.sample_cold_start(rng);
            let mut c = crate::Container::new(self.next_id);
            self.next_id += 1;
            c.start(now, cold);
            self.started_total += 1;
            out.cold_starts += 1;
            if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
                elc_trace::instant(
                    now.as_nanos(),
                    TRACE_TARGET,
                    "container.cold_start",
                    Level::Debug,
                    &[
                        Field::str("kind", self.kind.to_string()),
                        Field::u64("container", c.id()),
                        Field::duration_ns("cold_start", cold.as_nanos()),
                    ],
                );
            }
            if cold < tick_len {
                let ready = now + cold;
                c.poll_ready(ready);
                let share = 1.0 - cold.as_secs_f64() / tick_len.as_secs_f64();
                let mut slots = (slots_per as f64 * share) as u64;
                if slots > 0 && (self.buffered_count > 0 || fresh > 0) {
                    c.begin_invocation(ready);
                    let cold_latency = cold.as_secs_f64() + warm_latency;
                    while slots > 0 && self.buffered_count > 0 {
                        let head = self.buffer.front_mut().expect("buffered_count > 0");
                        let n = head.count.min(slots);
                        cold_hist.record_n((now - head.since).as_secs_f64() + cold_latency, n);
                        out.served_cold += n;
                        self.buffered_count -= n;
                        head.count -= n;
                        slots -= n;
                        if head.count == 0 {
                            self.buffer.pop_front();
                        }
                    }
                    let n = fresh.min(slots);
                    if n > 0 {
                        cold_hist.record_n(cold_latency, n);
                        out.served_cold += n;
                        fresh -= n;
                    }
                    c.finish_invocation(ready);
                }
            }
            self.containers.push(c);
        }

        // 5. Leftover fresh demand: buffer what fits, shed the rest.
        let space = self.config.buffer_capacity - self.buffered_count;
        let to_buffer = fresh.min(space);
        if to_buffer > 0 {
            self.buffer.push_back(Buffered {
                since: now,
                count: to_buffer,
            });
            self.buffered_count += to_buffer;
            out.buffered = to_buffer;
            fresh -= to_buffer;
            if elc_trace::enabled(TRACE_TARGET, Level::Debug) {
                elc_trace::instant(
                    now.as_nanos(),
                    TRACE_TARGET,
                    "invoke.buffered",
                    Level::Debug,
                    &[
                        Field::str("kind", self.kind.to_string()),
                        Field::u64("count", to_buffer),
                        Field::u64("depth", self.buffered_count),
                    ],
                );
            }
        }
        if fresh > 0 {
            out.shed = fresh;
            if elc_trace::enabled(TRACE_TARGET, Level::Info) {
                elc_trace::instant(
                    now.as_nanos(),
                    TRACE_TARGET,
                    "invoke.shed",
                    Level::Info,
                    &[
                        Field::str("kind", self.kind.to_string()),
                        Field::u64("count", fresh),
                    ],
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: SimDuration = SimDuration::from_secs(60);

    fn config(buffer: i64) -> InvokerConfig {
        InvokerConfig::fixed_window(SimDuration::from_mins(5), 1_000, buffer)
    }

    fn spec() -> StartProfile {
        StartProfile::new(
            SimDuration::from_secs_f64(1.0),
            SimDuration::from_secs_f64(0.003),
            SimDuration::from_secs_f64(0.2),
            0.256,
        )
    }

    fn rng() -> SimRng {
        SimRng::seed(42).derive("invoker-test")
    }

    #[test]
    fn try_new_rejects_zero_concurrency() {
        let keepalive = KeepalivePolicy::Fixed(FixedWindow::new(SimDuration::from_mins(5)));
        let err = InvokerConfig::try_new(keepalive, 0, 10).unwrap_err();
        assert_eq!(
            err.to_string(),
            "per-function concurrency limit must be >= 1"
        );
    }

    #[test]
    fn try_new_rejects_negative_buffer() {
        let keepalive = KeepalivePolicy::Fixed(FixedWindow::new(SimDuration::from_mins(5)));
        let err = InvokerConfig::try_new(keepalive, 4, -1).unwrap_err();
        assert_eq!(err.to_string(), "invocation buffer capacity must be >= 0");
    }

    #[test]
    fn scale_from_zero_serves_on_the_cold_path() {
        let mut inv = Invoker::new(RequestKind::QuizSubmit, config(1_000));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let out = inv.tick(
            SimTime::ZERO,
            TICK,
            100,
            2,
            &spec(),
            &mut rng(),
            &mut warm,
            &mut cold,
        );
        assert_eq!(out.cold_starts, 2);
        assert_eq!(out.served_warm, 0, "nothing was warm at t=0");
        assert!(out.served_cold > 0);
        assert_eq!(
            out.served_warm + out.served_cold + out.buffered + out.shed,
            100
        );
        assert!(cold.min_max().unwrap().0 > spec().service_time().as_secs_f64());
    }

    #[test]
    fn warm_sandboxes_serve_next_tick_cheaply() {
        let mut inv = Invoker::new(RequestKind::CoursePage, config(1_000));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let s = spec();
        let mut r = rng();
        inv.tick(SimTime::ZERO, TICK, 50, 1, &s, &mut r, &mut warm, &mut cold);
        let out = inv.tick(
            SimTime::ZERO + TICK,
            TICK,
            50,
            0,
            &s,
            &mut r,
            &mut warm,
            &mut cold,
        );
        assert_eq!(out.cold_starts, 0);
        assert_eq!(out.served_warm, 50);
        let warm_p95 = warm.p95();
        assert!(
            warm_p95 < 0.5,
            "warm path should be sub-second, got {warm_p95}"
        );
    }

    #[test]
    fn overflow_buffers_then_sheds() {
        let mut inv = Invoker::new(RequestKind::Login, config(30));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        // No grant: nothing can serve, so demand splits buffer/shed.
        let out = inv.tick(
            SimTime::ZERO,
            TICK,
            100,
            0,
            &spec(),
            &mut rng(),
            &mut warm,
            &mut cold,
        );
        assert_eq!(out.buffered, 30);
        assert_eq!(out.shed, 70);
        assert_eq!(inv.buffered(), 30);
        assert_eq!(inv.abandon_buffer(), 30);
        assert_eq!(inv.buffered(), 0);
    }

    #[test]
    fn buffered_work_drains_with_queueing_delay() {
        let mut inv = Invoker::new(RequestKind::QuizFetch, config(500));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let s = spec();
        let mut r = rng();
        inv.tick(SimTime::ZERO, TICK, 40, 0, &s, &mut r, &mut warm, &mut cold);
        assert_eq!(inv.buffered(), 40);
        let out = inv.tick(
            SimTime::ZERO + TICK,
            TICK,
            0,
            1,
            &s,
            &mut r,
            &mut warm,
            &mut cold,
        );
        assert_eq!(out.served_cold, 40, "buffer drains through the new sandbox");
        assert_eq!(inv.buffered(), 0);
        // Waited a full tick: latency must exceed 60 s.
        assert!(cold.min_max().unwrap().0 > TICK.as_secs_f64());
    }

    #[test]
    fn idle_sandboxes_are_reaped_after_the_window() {
        let mut inv = Invoker::new(RequestKind::ForumRead, config(100));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let s = spec();
        let mut r = rng();
        inv.tick(SimTime::ZERO, TICK, 10, 1, &s, &mut r, &mut warm, &mut cold);
        assert_eq!(inv.live(), 1);
        // Six quiet minutes later the 5-minute window has expired.
        let later = SimTime::ZERO + SimDuration::from_mins(6);
        let out = inv.tick(later, TICK, 0, 0, &s, &mut r, &mut warm, &mut cold);
        assert_eq!(out.reaped, 1);
        assert_eq!(inv.live(), 0);
        assert_eq!(inv.started_total(), 1);
        assert_eq!(inv.reaped_total(), 1);
    }

    #[test]
    fn adaptive_keepalive_reaps_on_a_learned_clock() {
        use crate::keepalive::AdaptiveKeepalive;
        // An adaptive policy that has learned ~30 s reuse gaps sits at
        // its 1-minute floor; the classic window is five minutes.
        let fixed_cfg = InvokerConfig::fixed_window(SimDuration::from_mins(5), 10, 100);
        let mut learned =
            AdaptiveKeepalive::new(0.95, SimDuration::from_mins(1), SimDuration::from_mins(20));
        for _ in 0..100 {
            learned.observe_gap(SimDuration::from_secs(30));
        }
        let adaptive_cfg = InvokerConfig::new(KeepalivePolicy::Adaptive(learned), 10, 100);
        let s = spec();
        for (cfg, expect_reaped) in [(fixed_cfg, 0), (adaptive_cfg, 1)] {
            let mut inv = Invoker::new(RequestKind::ForumRead, cfg);
            let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
            let mut r = rng();
            inv.tick(SimTime::ZERO, TICK, 10, 1, &s, &mut r, &mut warm, &mut cold);
            assert_eq!(inv.live(), 1);
            // Two quiet minutes: inside the fixed window, beyond the
            // learned one — only the adaptive reaper fires.
            let later = SimTime::ZERO + SimDuration::from_mins(2);
            let out = inv.tick(later, TICK, 0, 0, &s, &mut r, &mut warm, &mut cold);
            assert_eq!(
                out.reaped, expect_reaped,
                "reap timing must follow the policy"
            );
        }
    }

    #[test]
    fn kill_takes_down_live_sandboxes() {
        let mut inv = Invoker::new(RequestKind::VideoChunk, config(100));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let s = spec();
        let mut r = rng();
        inv.tick(
            SimTime::ZERO,
            TICK,
            500,
            4,
            &s,
            &mut r,
            &mut warm,
            &mut cold,
        );
        let live = inv.live();
        assert!(live >= 2);
        let killed = inv.kill(2);
        assert_eq!(killed, 2);
        assert_eq!(inv.live(), live - 2);
        assert_eq!(inv.reaped_total(), 2);
    }

    #[test]
    fn concurrency_limit_caps_grants() {
        let keepalive = KeepalivePolicy::Fixed(FixedWindow::new(SimDuration::from_mins(30)));
        let cfg = InvokerConfig::new(keepalive, 3, 10_000);
        let mut inv = Invoker::new(RequestKind::Upload, cfg);
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let out = inv.tick(
            SimTime::ZERO,
            TICK,
            10_000,
            50,
            &spec(),
            &mut rng(),
            &mut warm,
            &mut cold,
        );
        assert_eq!(out.cold_starts, 3);
        assert_eq!(inv.live(), 3);
    }

    #[test]
    fn outcome_always_conserves_demand() {
        let mut inv = Invoker::new(RequestKind::ForumPost, config(200));
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let s = spec();
        let mut r = rng();
        let mut now = SimTime::ZERO;
        for step in 0..50u64 {
            let demand = (step * 37) % 400;
            let before = inv.buffered();
            let out = inv.tick(now, TICK, demand, 1, &s, &mut r, &mut warm, &mut cold);
            let drained = before - (inv.buffered() - out.buffered);
            assert_eq!(
                out.served_warm + out.served_cold + out.buffered + out.shed,
                demand + drained,
                "tick {step}: flow must balance"
            );
            now += TICK;
        }
    }
}
