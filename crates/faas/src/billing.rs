//! Per-invocation billing: GB-seconds plus a per-request fee, with a
//! free-tier knob.
//!
//! The economic pitch of FaaS is that the meter only runs while code
//! runs. [`InvocationBilling`] accumulates exactly that — executed
//! GB-seconds and request counts — and prices them against a
//! [`FaasPriceSheet`] into a regular [`elc_cloud::billing::Invoice`], so
//! serverless bills line up next to VM bills in every report.

use std::fmt;

use elc_cloud::billing::{Invoice, InvoiceLine, Usd};
use elc_simcore::time::SimDuration;

/// Construction errors for [`FaasPriceSheet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceError {
    /// Prices must not be negative.
    NegativePrice,
    /// Free-tier quantities must be finite and non-negative.
    InvalidFreeTier,
}

impl fmt::Display for PriceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriceError::NegativePrice => write!(f, "FaaS prices must be >= $0"),
            PriceError::InvalidFreeTier => {
                write!(f, "free-tier quantities must be finite and >= 0")
            }
        }
    }
}

/// Serverless price sheet: GB-second rate, per-million-request fee and the
/// free tier granted per billing period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaasPriceSheet {
    per_gb_s: Usd,
    per_million_requests: Usd,
    free_gb_s: f64,
    free_requests: u64,
}

impl FaasPriceSheet {
    /// Validating constructor.
    ///
    /// # Errors
    ///
    /// Rejects negative prices and non-finite or negative free-tier
    /// quantities.
    pub fn try_new(
        per_gb_s: Usd,
        per_million_requests: Usd,
        free_gb_s: f64,
        free_requests: u64,
    ) -> Result<Self, PriceError> {
        if per_gb_s.amount() < 0.0 || per_million_requests.amount() < 0.0 {
            return Err(PriceError::NegativePrice);
        }
        if !(free_gb_s.is_finite() && free_gb_s >= 0.0) {
            return Err(PriceError::InvalidFreeTier);
        }
        Ok(FaasPriceSheet {
            per_gb_s,
            per_million_requests,
            free_gb_s,
            free_requests,
        })
    }

    /// Panicking constructor; see [`FaasPriceSheet::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on the conditions `try_new` rejects.
    #[must_use]
    pub fn new(
        per_gb_s: Usd,
        per_million_requests: Usd,
        free_gb_s: f64,
        free_requests: u64,
    ) -> Self {
        match Self::try_new(per_gb_s, per_million_requests, free_gb_s, free_requests) {
            Ok(p) => p,
            Err(e) => panic!("invalid FaasPriceSheet: {e}"),
        }
    }

    /// Launch-era public pricing: $0.0000166667 per GB-s, $0.20 per
    /// million requests, with a monthly free tier of 400 000 GB-s and one
    /// million requests.
    #[must_use]
    pub fn public_2014() -> Self {
        Self::new(
            Usd::new(0.000_016_666_7),
            Usd::new(0.20),
            400_000.0,
            1_000_000,
        )
    }

    /// The sheet with its free tier replaced — e.g. pro-rated to a single
    /// simulated day.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative `free_gb_s`.
    #[must_use]
    pub fn with_free_tier(self, free_gb_s: f64, free_requests: u64) -> Self {
        Self::new(
            self.per_gb_s,
            self.per_million_requests,
            free_gb_s,
            free_requests,
        )
    }

    /// Price per executed GB-second.
    #[must_use]
    pub fn per_gb_s(&self) -> Usd {
        self.per_gb_s
    }

    /// Price per million invocations.
    #[must_use]
    pub fn per_million_requests(&self) -> Usd {
        self.per_million_requests
    }

    /// Free GB-seconds per billing period.
    #[must_use]
    pub fn free_gb_s(&self) -> f64 {
        self.free_gb_s
    }

    /// Free requests per billing period.
    #[must_use]
    pub fn free_requests(&self) -> u64 {
        self.free_requests
    }
}

/// Accumulates executed GB-seconds and invocation counts, then prices
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationBilling {
    prices: FaasPriceSheet,
    gb_s: f64,
    requests: u64,
}

impl InvocationBilling {
    /// Creates an empty meter against `prices`.
    #[must_use]
    pub fn new(prices: FaasPriceSheet) -> Self {
        InvocationBilling {
            prices,
            gb_s: 0.0,
            requests: 0,
        }
    }

    /// Meters `invocations` executions of `service_time` each on a
    /// function sized at `memory_gb`.
    ///
    /// # Panics
    ///
    /// Panics unless `memory_gb` is positive and finite.
    pub fn record(&mut self, invocations: u64, service_time: SimDuration, memory_gb: f64) {
        assert!(
            memory_gb.is_finite() && memory_gb > 0.0,
            "memory must be positive GB, got {memory_gb}"
        );
        self.gb_s += invocations as f64 * service_time.as_secs_f64() * memory_gb;
        self.requests += invocations;
    }

    /// Executed GB-seconds so far.
    #[must_use]
    pub fn gb_s(&self) -> f64 {
        self.gb_s
    }

    /// Invocations so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Prices the metered usage, free tier deducted first.
    #[must_use]
    pub fn invoice(&self) -> Invoice {
        let mut lines = Vec::new();
        let billable_gb_s = (self.gb_s - self.prices.free_gb_s).max(0.0);
        if billable_gb_s > 0.0 {
            lines.push(InvoiceLine {
                item: "compute (invocations)".to_string(),
                quantity: billable_gb_s,
                unit: "GB-s",
                amount: self.prices.per_gb_s * billable_gb_s,
            });
        }
        let billable_requests = self.requests.saturating_sub(self.prices.free_requests);
        if billable_requests > 0 {
            let millions = billable_requests as f64 / 1_000_000.0;
            lines.push(InvoiceLine {
                item: "requests".to_string(),
                quantity: millions,
                unit: "million",
                amount: self.prices.per_million_requests * millions,
            });
        }
        Invoice::from_lines(lines)
    }

    /// Grand total of [`InvocationBilling::invoice`].
    #[must_use]
    pub fn total(&self) -> Usd {
        self.invoice().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_negative_prices() {
        let err = FaasPriceSheet::try_new(Usd::new(-0.01), Usd::new(0.2), 0.0, 0).unwrap_err();
        assert_eq!(err.to_string(), "FaaS prices must be >= $0");
        let err = FaasPriceSheet::try_new(Usd::new(0.01), Usd::new(-0.2), 0.0, 0).unwrap_err();
        assert_eq!(err.to_string(), "FaaS prices must be >= $0");
    }

    #[test]
    fn try_new_rejects_bad_free_tier() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let err = FaasPriceSheet::try_new(Usd::new(0.01), Usd::new(0.2), bad, 0).unwrap_err();
            assert_eq!(
                err.to_string(),
                "free-tier quantities must be finite and >= 0"
            );
        }
    }

    #[test]
    fn meter_prices_gb_seconds_and_requests() {
        let prices = FaasPriceSheet::new(Usd::new(0.00002), Usd::new(0.20), 0.0, 0);
        let mut meter = InvocationBilling::new(prices);
        // 1M invocations x 0.1 s x 0.5 GB = 50k GB-s.
        meter.record(1_000_000, SimDuration::from_secs_f64(0.1), 0.5);
        assert!((meter.gb_s() - 50_000.0).abs() < 1e-6);
        assert_eq!(meter.requests(), 1_000_000);
        let total = meter.total().amount();
        // 50k x $0.00002 = $1.00 compute + $0.20 requests.
        assert!((total - 1.20).abs() < 1e-9, "total {total}");
        assert_eq!(meter.invoice().lines().len(), 2);
    }

    #[test]
    fn free_tier_zeroes_a_small_bill() {
        let prices = FaasPriceSheet::public_2014();
        let mut meter = InvocationBilling::new(prices);
        meter.record(500_000, SimDuration::from_secs_f64(0.1), 0.5);
        // 25k GB-s and 0.5M requests: both inside the free tier.
        assert_eq!(meter.total(), Usd::ZERO);
        assert!(meter.invoice().lines().is_empty());
    }

    #[test]
    fn with_free_tier_pro_rates() {
        let prices = FaasPriceSheet::public_2014().with_free_tier(0.0, 0);
        let mut meter = InvocationBilling::new(prices);
        meter.record(1, SimDuration::from_secs_f64(0.1), 0.5);
        assert!(meter.total().amount() > 0.0);
    }
}
