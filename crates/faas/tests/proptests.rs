//! Seed-derived property tests: container-count invariants under random
//! invoke/reap interleavings.
//!
//! Each case derives its own [`SimRng`] stream from the case index, draws
//! a random invoker configuration (fixed-window or adaptive keepalive)
//! and a random demand/grant/chaos walk, and checks the bookkeeping that
//! the fluid model leans on:
//!
//! * warm hits never exceed what the live warm sandboxes could serve,
//! * sandboxes are conserved (`started == live + reaped`),
//! * the per-function concurrency cap and buffer capacity hold,
//! * per-tick flow balances (`demand + drained == served + buffered +
//!   shed`),
//! * and — via the `Container::reap` state assertion — the adaptive
//!   keepalive never reaps a sandbox mid-invocation: any violation
//!   panics the walk.

use elc_elearn::request::RequestKind;
use elc_faas::{
    AdaptiveKeepalive, ColdStartProfile, FixedWindow, Invoker, InvokerConfig, KeepalivePolicy,
};
use elc_simcore::metrics::Histogram;
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

const TICK: SimDuration = SimDuration::from_secs(60);
const CASES: u64 = 150;
const TICKS_PER_CASE: u64 = 120;

fn random_config(rng: &mut SimRng) -> InvokerConfig {
    let keepalive = if rng.chance(0.5) {
        KeepalivePolicy::Fixed(FixedWindow::new(SimDuration::from_secs(
            rng.range_u64(60, 900),
        )))
    } else {
        let min = SimDuration::from_secs(rng.range_u64(30, 120));
        let max = min + SimDuration::from_secs(rng.range_u64(60, 1800));
        KeepalivePolicy::Adaptive(AdaptiveKeepalive::new(rng.range_f64(0.5, 1.0), min, max))
    };
    let concurrency = rng.range_u64(1, 40) as u32;
    let buffer = rng.range_u64(0, 500) as i64;
    InvokerConfig::new(keepalive, concurrency, buffer)
}

#[test]
fn random_interleavings_preserve_container_invariants() {
    let root = SimRng::seed(0xFAA5).derive("proptests");
    for case in 0..CASES {
        let mut rng = root.derive_u64(case);
        let kind = *rng.pick(&RequestKind::ALL).expect("non-empty");
        let config = random_config(&mut rng);
        let cap = u64::from(config.concurrency_limit());
        let buffer_cap = config.buffer_capacity();
        let spec = *ColdStartProfile::standard().get(kind);
        let slots_per =
            (TICK.as_nanos() / (spec.warm_start() + spec.service_time()).as_nanos()).max(1);

        let mut invoker = Invoker::new(kind, config);
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let mut now = SimTime::ZERO;
        for tick in 0..TICKS_PER_CASE {
            // Bursty demand: quiet stretches force reaps, spikes force
            // cold starts and buffering.
            let demand = if rng.chance(0.3) {
                0
            } else {
                rng.range_u64(0, 40 * slots_per)
            };
            let grant = rng.range_u64(0, 10) as u32;
            // Warm serving only ever uses sandboxes that were live at
            // tick start (fresh cold starts serve on the cold path), so
            // live-at-entry bounds the warm capacity.
            let live_before = u64::from(invoker.live());
            let buffered_before = invoker.buffered();

            let out = invoker.tick(
                now, TICK, demand, grant, &spec, &mut rng, &mut warm, &mut cold,
            );

            assert!(
                out.served_warm <= live_before * slots_per,
                "case {case} tick {tick}: {} warm hits from {live_before} live sandboxes",
                out.served_warm
            );
            // Concurrency cap and buffer capacity hold.
            assert!(
                u64::from(invoker.live()) <= cap,
                "case {case} tick {tick}: live {} over cap {cap}",
                invoker.live()
            );
            assert!(
                invoker.buffered() <= buffer_cap,
                "case {case} tick {tick}: buffer {} over cap {buffer_cap}",
                invoker.buffered()
            );
            // Sandbox conservation.
            assert_eq!(
                invoker.started_total(),
                u64::from(invoker.live()) + invoker.reaped_total(),
                "case {case} tick {tick}: sandboxes leaked"
            );
            // Flow balance: everything that arrived or drained is
            // accounted for.
            let drained = buffered_before + out.buffered - invoker.buffered();
            assert_eq!(
                out.served_warm + out.served_cold + out.buffered + out.shed,
                demand + drained,
                "case {case} tick {tick}: flow imbalance"
            );

            // Occasional chaos: kill a few sandboxes between ticks. The
            // Container state machine panics if a kill or reap ever hits
            // a sandbox mid-invocation.
            if rng.chance(0.1) {
                invoker.kill(rng.range_u64(1, 5) as u32);
                assert_eq!(
                    invoker.started_total(),
                    u64::from(invoker.live()) + invoker.reaped_total(),
                    "case {case} tick {tick}: kill broke conservation"
                );
            }
            now += TICK;
        }
    }
}

#[test]
fn adaptive_keepalive_walks_never_reap_inflight_work() {
    // A focused walk on the adaptive policy with tiny windows — the
    // regime where an over-eager reaper would fire mid-invocation if the
    // tick ordering were wrong. Survival (no panic from the Container
    // state assertions) is the property.
    let root = SimRng::seed(0xADA7).derive("adaptive");
    for case in 0..CASES {
        let mut rng = root.derive_u64(case);
        let keepalive = KeepalivePolicy::Adaptive(AdaptiveKeepalive::new(
            0.9,
            SimDuration::from_secs(30),
            SimDuration::from_secs(90),
        ));
        let config = InvokerConfig::new(keepalive, 20, 200);
        let spec = *ColdStartProfile::standard().get(RequestKind::QuizSubmit);
        let mut invoker = Invoker::new(RequestKind::QuizSubmit, config);
        let (mut warm, mut cold) = (Histogram::new(), Histogram::new());
        let mut now = SimTime::ZERO;
        let mut served = 0u64;
        for _ in 0..TICKS_PER_CASE {
            let demand = if rng.chance(0.4) {
                0
            } else {
                rng.range_u64(1, 600)
            };
            let out = invoker.tick(now, TICK, demand, 3, &spec, &mut rng, &mut warm, &mut cold);
            served += out.served_warm + out.served_cold;
            now += TICK;
        }
        assert!(served > 0, "case {case}: walk never served anything");
    }
}
