//! CSV interchange for workload traces.
//!
//! The binary codec is the fidelity format; CSV exists so external
//! datasets (Azure/Huawei-style VM or request traces, LMS access logs)
//! can be mapped onto the simulator without writing Rust. Schema:
//!
//! ```text
//! #students=25000            optional pragmas, before the header
//! #peak_rate=2600
//! stream,time_ns,slot_ns,kind,value
//! 0,3600000000000,60000000000,*,1234      arrival slot, aggregate count
//! 0,3600000000000,60000000000,quiz-submit,17   per-kind count (adds to the
//!                                              slot and defines its mix)
//! 0,3600000000000,0,~rate,12.5            explicit rate sample (rps)
//! 0,3600000000000,0,video-chunk,45        mix weight (slot_ns = 0)
//! ```
//!
//! Rates and weights round-trip exactly: floats are printed with Rust's
//! shortest-round-trip formatting. When a stream has no `~rate` rows, rates
//! are derived from its slots (`count / slot`); when no `#peak_rate`
//! pragma is given, the peak is the maximum rate seen. Rows may appear in
//! any order — streams are sorted while building the trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use elc_elearn::request::RequestKind;

use crate::trace::{
    dedup_stream, MixSample, RateSample, SlotSample, Stream, TraceError, WorkloadTrace,
};

/// Default cohort when a CSV has no `#students=` pragma.
pub const DEFAULT_STUDENTS: u32 = 1_000;

/// Renders a trace to the CSV schema above.
#[must_use]
pub fn to_csv(trace: &WorkloadTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#students={}", trace.students);
    let _ = writeln!(out, "#peak_rate={}", trace.peak_rate());
    out.push_str("stream,time_ns,slot_ns,kind,value\n");
    for (i, stream) in trace.streams.iter().enumerate() {
        for r in &stream.rates {
            let _ = writeln!(out, "{i},{},0,~rate,{}", r.t_ns, r.rate());
        }
        for m in &stream.mixes {
            if let Some(entry) = trace.mixes.get(m.mix as usize) {
                for &(kind, bits) in entry {
                    let _ = writeln!(out, "{i},{},0,{kind},{}", m.t_ns, f64::from_bits(bits));
                }
            }
        }
        for s in &stream.slots {
            let _ = writeln!(out, "{i},{},{},*,{}", s.t_ns, s.slot_ns, s.count);
        }
    }
    out
}

/// Parses the CSV schema into a validated trace.
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] on schema violations and
/// [`TraceError::Empty`] when no demand rows survive.
pub fn from_csv(text: &str) -> Result<WorkloadTrace, TraceError> {
    let mut students: Option<u32> = None;
    let mut peak_rate: Option<f64> = None;
    // stream -> accumulated samples; BTreeMap keeps stream order stable.
    let mut rates: BTreeMap<u64, Vec<RateSample>> = BTreeMap::new();
    // (stream, t) -> mix weight pairs.
    let mut mix_rows: BTreeMap<(u64, u64), Vec<(RequestKind, u64)>> = BTreeMap::new();
    // (stream, t, slot) -> (aggregate count, per-kind counts).
    #[allow(clippy::type_complexity)]
    let mut slot_rows: BTreeMap<(u64, u64, u64), (u64, Vec<(RequestKind, u64)>)> = BTreeMap::new();

    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(pragma) = line.strip_prefix('#') {
            if let Some(v) = pragma.strip_prefix("students=") {
                students = Some(v.trim().parse().map_err(|_| {
                    TraceError::Malformed(format!("line {}: bad #students", lineno + 1))
                })?);
            } else if let Some(v) = pragma.strip_prefix("peak_rate=") {
                peak_rate = Some(v.trim().parse().map_err(|_| {
                    TraceError::Malformed(format!("line {}: bad #peak_rate", lineno + 1))
                })?);
            }
            // Unknown pragmas are comments.
            continue;
        }
        if !saw_header {
            if line != "stream,time_ns,slot_ns,kind,value" {
                return Err(TraceError::Malformed(format!(
                    "line {}: expected header stream,time_ns,slot_ns,kind,value",
                    lineno + 1
                )));
            }
            saw_header = true;
            continue;
        }
        let mut cols = line.split(',');
        let (stream, t_ns, slot_ns, kind, value) = match (
            cols.next(),
            cols.next(),
            cols.next(),
            cols.next(),
            cols.next(),
            cols.next(),
        ) {
            (Some(s), Some(t), Some(w), Some(k), Some(v), None) => (s, t, w, k, v),
            _ => {
                return Err(TraceError::Malformed(format!(
                    "line {}: expected 5 columns",
                    lineno + 1
                )))
            }
        };
        let parse_u64 = |s: &str, what: &str| -> Result<u64, TraceError> {
            s.trim().parse().map_err(|_| {
                TraceError::Malformed(format!("line {}: bad {what} {s:?}", lineno + 1))
            })
        };
        let stream = parse_u64(stream, "stream")?;
        let t_ns = parse_u64(t_ns, "time_ns")?;
        let slot_ns = parse_u64(slot_ns, "slot_ns")?;
        match kind.trim() {
            "~rate" => {
                let rate: f64 = value.trim().parse().map_err(|_| {
                    TraceError::Malformed(format!("line {}: bad rate {value:?}", lineno + 1))
                })?;
                if !rate.is_finite() || rate < 0.0 {
                    return Err(TraceError::Malformed(format!(
                        "line {}: rate must be non-negative",
                        lineno + 1
                    )));
                }
                rates.entry(stream).or_default().push(RateSample {
                    t_ns,
                    rate_bits: rate.to_bits(),
                });
            }
            "*" => {
                if slot_ns == 0 {
                    return Err(TraceError::Malformed(format!(
                        "line {}: aggregate slot needs slot_ns > 0",
                        lineno + 1
                    )));
                }
                let count = parse_u64(value, "count")?;
                slot_rows.entry((stream, t_ns, slot_ns)).or_default().0 += count;
            }
            name => {
                let kind = RequestKind::from_name(name)
                    .ok_or_else(|| TraceError::UnknownKind(name.into()))?;
                if slot_ns == 0 {
                    // Mix weight row.
                    let weight: f64 = value.trim().parse().map_err(|_| {
                        TraceError::Malformed(format!("line {}: bad weight {value:?}", lineno + 1))
                    })?;
                    if !weight.is_finite() || weight < 0.0 {
                        return Err(TraceError::Malformed(format!(
                            "line {}: weight must be non-negative",
                            lineno + 1
                        )));
                    }
                    mix_rows
                        .entry((stream, t_ns))
                        .or_default()
                        .push((kind, weight.to_bits()));
                } else {
                    // Per-kind count: adds to the slot and to its mix.
                    let count = parse_u64(value, "count")?;
                    let entry = slot_rows.entry((stream, t_ns, slot_ns)).or_default();
                    entry.0 += count;
                    entry.1.push((kind, count));
                }
            }
        }
    }

    let stream_ids: Vec<u64> = {
        let mut ids: Vec<u64> = rates
            .keys()
            .copied()
            .chain(mix_rows.keys().map(|&(s, _)| s))
            .chain(slot_rows.keys().map(|&(s, _, _)| s))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    if stream_ids.is_empty() {
        return Err(TraceError::Empty);
    }

    let mut trace = WorkloadTrace::empty(students.unwrap_or(DEFAULT_STUDENTS), 0.0);
    let mut max_rate = 0.0f64;
    for &id in &stream_ids {
        let mut stream = Stream::default();
        if let Some(mut r) = rates.remove(&id) {
            r.sort_by_key(|s| s.t_ns);
            stream.rates = r;
        }
        for ((_, t_ns), pairs) in mix_rows.iter().filter(|((s, _), _)| *s == id) {
            let mix = trace.intern_mix(pairs.clone());
            stream.mixes.push(MixSample { t_ns: *t_ns, mix });
        }
        for (&(_, t_ns, slot_ns), &(count, ref kinds)) in
            slot_rows.iter().filter(|((s, _, _), _)| *s == id)
        {
            stream.slots.push(SlotSample {
                t_ns,
                slot_ns,
                count,
            });
            // Per-kind counts double as the mix in force for that slot.
            if !kinds.is_empty() {
                let pairs: Vec<(RequestKind, u64)> = kinds
                    .iter()
                    .map(|&(k, c)| (k, (c as f64).to_bits()))
                    .collect();
                let mix = trace.intern_mix(pairs);
                stream.mixes.push(MixSample { t_ns, mix });
            }
        }
        stream.mixes.sort_by_key(|m| m.t_ns);
        stream.slots.sort_by_key(|s| (s.t_ns, s.slot_ns));
        // Streams without explicit rate rows derive rates from slots.
        if stream.rates.is_empty() {
            stream.rates = stream
                .slots
                .iter()
                .map(|s| RateSample {
                    t_ns: s.t_ns,
                    rate_bits: (s.count as f64 / (s.slot_ns as f64 / 1e9)).to_bits(),
                })
                .collect();
        }
        dedup_stream(&mut stream);
        for r in &stream.rates {
            max_rate = max_rate.max(r.rate());
        }
        trace.streams.push(stream);
    }
    trace.peak_rate_bits = peak_rate.unwrap_or(max_rate).to_bits();
    trace.validate()?;
    Ok(trace)
}

/// Writes the CSV form to `path`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] with the path on failure.
pub fn write_file(trace: &WorkloadTrace, path: &Path) -> Result<(), TraceError> {
    std::fs::write(path, to_csv(trace))
        .map_err(|e| TraceError::Io(format!("write {}: {e}", path.display())))
}

/// Reads and parses a CSV trace from `path`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on read failure, or any parse error.
pub fn read_file(path: &Path) -> Result<WorkloadTrace, TraceError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TraceError::Io(format!("read {}: {e}", path.display())))?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> WorkloadTrace {
        let mut t = WorkloadTrace::empty(2_000, 160.0);
        let mix = t.intern_mix(vec![
            (RequestKind::VideoChunk, 45.0f64.to_bits()),
            (RequestKind::QuizSubmit, 4.5f64.to_bits()),
        ]);
        t.streams.push(Stream {
            rates: vec![
                RateSample {
                    t_ns: 1_000,
                    rate_bits: 12.125f64.to_bits(),
                },
                RateSample {
                    t_ns: 61_000,
                    rate_bits: 13.626_262f64.to_bits(),
                },
            ],
            mixes: vec![MixSample { t_ns: 1_000, mix }],
            slots: vec![SlotSample {
                t_ns: 1_000,
                slot_ns: 60_000,
                count: 7,
            }],
        });
        t
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let t = trace();
        let csv = to_csv(&t);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn external_dataset_with_counts_only_derives_rates_and_mix() {
        let csv = "\
#students=500
stream,time_ns,slot_ns,kind,value
0,0,1000000000,quiz-submit,30
0,0,1000000000,video-chunk,10
0,2000000000,1000000000,*,80
";
        let t = from_csv(csv).unwrap();
        assert_eq!(t.students, 500);
        assert_eq!(t.streams.len(), 1);
        let s = &t.streams[0];
        assert_eq!(s.slots.len(), 2);
        assert_eq!(s.slots[0].count, 40, "per-kind counts sum into the slot");
        assert_eq!(s.slots[1].count, 80);
        // Derived rates: 40 rps then 80 rps; peak defaults to the max.
        assert_eq!(s.rates[0].rate(), 40.0);
        assert_eq!(s.rates[1].rate(), 80.0);
        assert_eq!(t.peak_rate(), 80.0);
        // The per-kind slot defined a mix.
        assert_eq!(s.mixes.len(), 1);
        let mix = t.mix(s.mixes[0].mix).unwrap();
        assert_eq!(mix.pairs().len(), 2);
    }

    #[test]
    fn rejects_bad_schema() {
        assert!(matches!(from_csv(""), Err(TraceError::Empty)));
        assert!(from_csv("bad,header\n").is_err());
        let hdr = "stream,time_ns,slot_ns,kind,value\n";
        assert!(from_csv(&format!("{hdr}0,0,0,*,5\n")).is_err());
        assert!(from_csv(&format!("{hdr}0,0,1,nope,5\n")).is_err());
        assert!(from_csv(&format!("{hdr}0,0,1,*\n")).is_err());
        assert!(from_csv(&format!("{hdr}0,x,1,*,5\n")).is_err());
        assert!(from_csv(&format!("{hdr}0,0,0,~rate,-3\n")).is_err());
        assert!(from_csv("#students=zero\nstream,time_ns,slot_ns,kind,value\n").is_err());
    }

    #[test]
    fn csv_file_round_trip() {
        let t = trace();
        let dir = std::env::temp_dir().join("elc-wltrace-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_file(&t, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), t);
        assert!(matches!(
            read_file(&dir.join("missing.csv")),
            Err(TraceError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
