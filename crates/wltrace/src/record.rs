//! Recording: tee a generator-driven run into a trace.
//!
//! [`TraceRecorder::wrap`] interposes a recording shim in front of any
//! `WorkloadSource`. The shim delegates every query to the inner source —
//! consuming the caller's RNG exactly as an unwrapped run would, so
//! recording never perturbs the run being recorded — and logs the answers:
//! rates as raw f64 bits, mixes interned, arrival slots as counts. Each
//! wrapped source gets its own [`Stream`], in creation order; `split`
//! wraps every per-site source so sharded runs record too.
//!
//! Record with a single shard (`--shards 1`): parallel arms create their
//! sources in a racy order, and the stream order in the file is the
//! replayer's hand-out order. (The replayer also time-matches streams on
//! first query, which rescues arms whose demand starts at distinct
//! instants — but creation order is the contract.)

use std::sync::{Arc, Mutex};

use elc_elearn::request::RequestMix;
use elc_elearn::source::WorkloadSource;
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::trace::{
    dedup_stream, MixSample, RateSample, SlotSample, Stream, TraceError, WorkloadTrace,
};

#[derive(Debug, Default)]
struct RecorderInner {
    header: Option<(u32, u64)>,
    conflict: Option<(u32, u32)>,
    mixes: Vec<Vec<(elc_elearn::request::RequestKind, u64)>>,
    streams: Vec<Stream>,
}

/// Collects the demand streams of one run; cheap to clone (all clones
/// share the same buffer).
///
/// # Examples
///
/// ```
/// use elc_elearn::calendar::AcademicCalendar;
/// use elc_elearn::source::WorkloadSource;
/// use elc_elearn::workload::WorkloadModel;
/// use elc_simcore::{SimDuration, SimRng, SimTime};
/// use elc_wltrace::TraceRecorder;
///
/// let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
/// let model = WorkloadModel::builder(1_000, cal).build().unwrap();
/// let recorder = TraceRecorder::new();
/// let source = recorder.wrap(Box::new(model));
/// let mut rng = SimRng::seed(7);
/// let t = cal.exams_start() + SimDuration::from_hours(20);
/// let n = source.sample_arrivals(&mut rng, t, SimDuration::from_secs(60));
/// let trace = recorder.finish().unwrap();
/// assert_eq!(trace.streams[0].slots[0].count, n);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl TraceRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Wraps `source` in a recording shim that opens the next stream.
    #[must_use]
    pub fn wrap(&self, source: Box<dyn WorkloadSource>) -> Box<dyn WorkloadSource> {
        self.wrap_stream(source, true)
    }

    /// `note_header = false` for per-site sources produced by `split`,
    /// whose cohorts legitimately differ from the institution header.
    fn wrap_stream(
        &self,
        source: Box<dyn WorkloadSource>,
        note_header: bool,
    ) -> Box<dyn WorkloadSource> {
        let students = source.students();
        let peak_bits = source.peak_rate().to_bits();
        let stream = {
            let mut inner = self.inner.lock().expect("recorder lock");
            if note_header {
                match inner.header {
                    None => inner.header = Some((students, peak_bits)),
                    Some((s, p)) => {
                        if (s, p) != (students, peak_bits) && inner.conflict.is_none() {
                            inner.conflict = Some((s, students));
                        }
                    }
                }
            }
            inner.streams.push(Stream::default());
            inner.streams.len() - 1
        };
        if elc_trace::enabled(crate::TRACE_TARGET, Level::Info) {
            elc_trace::instant(
                0,
                crate::TRACE_TARGET,
                "record.stream",
                Level::Info,
                &[
                    Field::u64("stream", stream as u64),
                    Field::u64("students", u64::from(students)),
                ],
            );
        }
        Box::new(RecordingSource {
            recorder: self.clone(),
            stream,
            source,
        })
    }

    /// Number of streams opened so far.
    #[must_use]
    pub fn streams(&self) -> usize {
        self.inner.lock().expect("recorder lock").streams.len()
    }

    /// Snapshots the recording into a validated trace. The recorder stays
    /// usable; wrapped sources keep appending.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when nothing was recorded;
    /// [`TraceError::HeaderConflict`] when wrapped sources came from
    /// different institutions.
    pub fn finish(&self) -> Result<WorkloadTrace, TraceError> {
        let inner = self.inner.lock().expect("recorder lock");
        if let Some((first, other)) = inner.conflict {
            return Err(TraceError::HeaderConflict { first, other });
        }
        let Some((students, peak_rate_bits)) = inner.header else {
            return Err(TraceError::Empty);
        };
        let mut trace = WorkloadTrace {
            students,
            peak_rate_bits,
            mixes: inner.mixes.clone(),
            streams: inner.streams.clone(),
        };
        drop(inner);
        for stream in &mut trace.streams {
            stream.rates.sort_by_key(|r| r.t_ns);
            stream.mixes.sort_by_key(|m| m.t_ns);
            stream.slots.sort_by_key(|s| (s.t_ns, s.slot_ns));
            dedup_stream(stream);
        }
        // Empty streams (sources wrapped but never queried) are kept so
        // stream indices still mirror source-creation order on replay.
        if trace.streams.iter().all(|s| s.first_t_ns().is_none()) {
            return Err(TraceError::Empty);
        }
        trace.validate()?;
        Ok(trace)
    }
}

/// The shim: delegates to the wrapped source and logs every answer.
#[derive(Debug)]
struct RecordingSource {
    recorder: TraceRecorder,
    stream: usize,
    source: Box<dyn WorkloadSource>,
}

impl RecordingSource {
    fn with_stream(&self, f: impl FnOnce(&mut RecorderInner, usize)) {
        let mut inner = self.recorder.inner.lock().expect("recorder lock");
        let stream = self.stream;
        f(&mut inner, stream);
    }

    fn log_rate(&self, t: SimTime, rate: f64) {
        self.with_stream(|inner, stream| {
            inner.streams[stream].rates.push(RateSample {
                t_ns: t.as_nanos(),
                rate_bits: rate.to_bits(),
            });
        });
    }
}

impl WorkloadSource for RecordingSource {
    fn students(&self) -> u32 {
        self.source.students()
    }

    fn peak_rate(&self) -> f64 {
        self.source.peak_rate()
    }

    fn rate_at(&self, t: SimTime) -> f64 {
        let rate = self.source.rate_at(t);
        self.log_rate(t, rate);
        rate
    }

    fn mix_at(&self, t: SimTime) -> RequestMix {
        let mix = self.source.mix_at(t);
        let pairs: Vec<_> = mix.pairs().iter().map(|&(k, w)| (k, w.to_bits())).collect();
        self.with_stream(|inner, stream| {
            let id = if let Some(i) = inner.mixes.iter().position(|m| *m == pairs) {
                i as u32
            } else {
                inner.mixes.push(pairs);
                (inner.mixes.len() - 1) as u32
            };
            inner.streams[stream].mixes.push(MixSample {
                t_ns: t.as_nanos(),
                mix: id,
            });
        });
        mix
    }

    fn sample_arrivals(&self, rng: &mut SimRng, t: SimTime, slot: SimDuration) -> u64 {
        let count = self.source.sample_arrivals(rng, t, slot);
        // Also log the rate in force, so a replay of this trace can answer
        // rate queries the recorded run never made (cross-experiment
        // replay, autoscalers probing between slots).
        let rate = self.source.rate_at(t);
        self.with_stream(|inner, stream| {
            let s = &mut inner.streams[stream];
            s.rates.push(RateSample {
                t_ns: t.as_nanos(),
                rate_bits: rate.to_bits(),
            });
            s.slots.push(SlotSample {
                t_ns: t.as_nanos(),
                slot_ns: slot.as_nanos(),
                count,
            });
        });
        if elc_trace::enabled(crate::TRACE_TARGET, Level::Debug) {
            elc_trace::instant(
                t.as_nanos(),
                crate::TRACE_TARGET,
                "record.slot",
                Level::Debug,
                &[
                    Field::u64("stream", self.stream as u64),
                    Field::u64("count", count),
                ],
            );
        }
        count
    }

    // `sample_arrival_offsets` and `mean_rate` intentionally use the trait
    // defaults: they route through `sample_arrivals`/`rate_at` above, so
    // their queries are recorded while consuming the RNG exactly like the
    // unwrapped generator.

    fn split(&self, sites: u32) -> Vec<Box<dyn WorkloadSource>> {
        self.source
            .split(sites)
            .into_iter()
            .map(|site| self.recorder.wrap_stream(site, false))
            .collect()
    }

    fn clone_source(&self) -> Box<dyn WorkloadSource> {
        // A cloned consumer is a new demand stream.
        self.recorder.wrap(self.source.clone_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elc_elearn::calendar::AcademicCalendar;
    use elc_elearn::workload::WorkloadModel;

    fn model(students: u32) -> WorkloadModel {
        WorkloadModel::builder(students, AcademicCalendar::standard_semester(SimTime::ZERO))
            .build()
            .unwrap()
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let recorder = TraceRecorder::new();
        let wrapped = recorder.wrap(Box::new(model(10_000)));
        let bare = model(10_000);
        let mut rng_a = SimRng::seed(42);
        let mut rng_b = SimRng::seed(42);
        let slot = SimDuration::from_secs(60);
        let mut offsets_a = Vec::new();
        let mut offsets_b = Vec::new();
        for i in 0..48u64 {
            let t = SimTime::from_secs(5 * 7 * 86_400 + i * 1_800);
            assert_eq!(
                wrapped.sample_arrivals(&mut rng_a, t, slot),
                bare.sample_arrivals(&mut rng_b, t, slot)
            );
            wrapped.sample_arrival_offsets(&mut rng_a, t, slot, &mut offsets_a);
            bare.sample_arrival_offsets(&mut rng_b, t, slot, &mut offsets_b);
            assert_eq!(offsets_a, offsets_b);
            assert_eq!(wrapped.rate_at(t).to_bits(), bare.rate_at(t).to_bits());
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "same RNG consumption");
    }

    #[test]
    fn finish_snapshots_sorted_streams() {
        let recorder = TraceRecorder::new();
        let wrapped = recorder.wrap(Box::new(model(2_000)));
        let mut rng = SimRng::seed(1);
        let slot = SimDuration::from_secs(60);
        // Query out of order; finish() sorts.
        for t in [7_200u64, 3_600, 10_800] {
            wrapped.sample_arrivals(&mut rng, SimTime::from_secs(5 * 7 * 86_400 + t), slot);
        }
        let _ = wrapped.mix_at(SimTime::from_secs(5 * 7 * 86_400));
        let trace = recorder.finish().unwrap();
        assert_eq!(trace.students, 2_000);
        assert_eq!(trace.streams.len(), 1);
        let s = &trace.streams[0];
        assert!(s.slots.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
        assert_eq!(s.mixes.len(), 1);
        assert_eq!(trace.mixes.len(), 1);
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn split_sources_record_into_their_own_streams() {
        let recorder = TraceRecorder::new();
        let wrapped = recorder.wrap(Box::new(model(9_000)));
        let sites = wrapped.split(3);
        assert_eq!(recorder.streams(), 4, "root plus three sites");
        let mut rng = SimRng::seed(2);
        for site in &sites {
            site.sample_arrivals(
                &mut rng,
                SimTime::from_secs(5 * 7 * 86_400 + 72_000),
                SimDuration::from_secs(60),
            );
        }
        let trace = recorder.finish().unwrap();
        // The unqueried root stream stays (empty) so indices keep mirroring
        // creation order; the three sites carry the demand.
        assert_eq!(trace.streams.len(), 4);
        assert!(trace.streams[0].first_t_ns().is_none());
        assert!(trace.streams[1..].iter().all(|s| !s.slots.is_empty()));
    }

    #[test]
    fn header_conflicts_and_empty_recorders_error() {
        let recorder = TraceRecorder::new();
        assert_eq!(recorder.finish(), Err(TraceError::Empty));
        let a = recorder.wrap(Box::new(model(1_000)));
        let mut rng = SimRng::seed(3);
        a.sample_arrivals(
            &mut rng,
            SimTime::from_secs(86_400 * 40),
            SimDuration::from_secs(60),
        );
        let _ = recorder.wrap(Box::new(model(2_000)));
        assert_eq!(
            recorder.finish(),
            Err(TraceError::HeaderConflict {
                first: 1_000,
                other: 2_000
            })
        );
    }

    #[test]
    fn unqueried_recorder_is_empty() {
        let recorder = TraceRecorder::new();
        let _source = recorder.wrap(Box::new(model(1_000)));
        assert_eq!(recorder.finish(), Err(TraceError::Empty));
    }
}
