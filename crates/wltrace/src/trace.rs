//! In-memory workload trace model and morphing combinators.
//!
//! A [`WorkloadTrace`] is what a [`TraceRecorder`](crate::TraceRecorder)
//! produces and a [`TraceReplayer`](crate::TraceReplayer) consumes: a
//! header (cohort size, analytic peak rate) plus one [`Stream`] per demand
//! source the recorded run created, each holding the exact queries that
//! source answered — rate samples (as raw f64 bits, so replay reproduces
//! them bit-for-bit), request-mix changes (interned in a mix table), and
//! sampled arrival slots `(time, slot, count)`.
//!
//! Morphs ([`WorkloadTrace::time_stretch`], [`amplitude_scale`], [`clip`])
//! derive new traces from recorded ones — scale a recorded 1k-student day
//! to millions of students, or replay only the worst recorded minute.
//! [`MorphSpec`] parses the `--morph` CLI syntax into a morph pipeline.
//!
//! [`amplitude_scale`]: WorkloadTrace::amplitude_scale
//! [`clip`]: WorkloadTrace::clip

use std::fmt;
use std::sync::Arc;

use elc_elearn::request::{RequestKind, RequestMix};
use elc_simcore::time::SimDuration;

/// Errors from trace validation, codecs, morphing or recording.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The byte stream did not start with the `ELCW` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    BadVersion(u8),
    /// The byte stream ended mid-record.
    Truncated,
    /// A structural invariant failed while decoding or validating.
    Malformed(String),
    /// The kind table named a request kind this build does not know.
    UnknownKind(String),
    /// A morph operation or `--morph` spec was invalid.
    BadMorph(String),
    /// A file operation failed (message includes the path).
    Io(String),
    /// Two recorded sources disagreed on the trace header — they came
    /// from different institutions and cannot share one trace file.
    HeaderConflict {
        /// Students reported by the first recorded source.
        first: u32,
        /// Students reported by the conflicting source.
        other: u32,
    },
    /// The trace has no streams (nothing was recorded).
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a workload trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace ends mid-record"),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
            TraceError::UnknownKind(name) => write!(f, "unknown request kind {name:?}"),
            TraceError::BadMorph(msg) => write!(f, "bad morph: {msg}"),
            TraceError::Io(msg) => write!(f, "trace io: {msg}"),
            TraceError::HeaderConflict { first, other } => write!(
                f,
                "recorded sources disagree on the cohort ({first} vs {other} students)"
            ),
            TraceError::Empty => write!(f, "trace has no streams"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One recorded rate query: the instant and the returned rate's raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSample {
    /// Query instant, nanoseconds on the simulation clock.
    pub t_ns: u64,
    /// `f64::to_bits` of the returned requests/second — stored as bits so
    /// replay is exact, not merely close.
    pub rate_bits: u64,
}

impl RateSample {
    /// The recorded rate as a float.
    #[must_use]
    pub fn rate(self) -> f64 {
        f64::from_bits(self.rate_bits)
    }
}

/// One recorded mix query: the instant and an index into the trace's
/// interned mix table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSample {
    /// Query instant, nanoseconds on the simulation clock.
    pub t_ns: u64,
    /// Index into [`WorkloadTrace::mixes`].
    pub mix: u32,
}

/// One recorded arrival slot: how many requests the source reported for
/// `[t, t + slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSample {
    /// Slot start, nanoseconds on the simulation clock.
    pub t_ns: u64,
    /// Slot width in nanoseconds.
    pub slot_ns: u64,
    /// Sampled (or replayed) arrival count for the slot.
    pub count: u64,
}

/// An interned request mix: `(kind, weight-bits)` pairs in construction
/// order. Weights keep their raw f64 bits so a decoded mix equals the
/// recorded one exactly.
pub type MixEntry = Vec<(RequestKind, u64)>;

/// The recorded demand of one `WorkloadSource` instance: every rate, mix
/// and slot query it answered, sorted by time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stream {
    /// Rate samples, ascending by `t_ns`, unique instants.
    pub rates: Vec<RateSample>,
    /// Mix-change samples, ascending by `t_ns`, unique instants.
    pub mixes: Vec<MixSample>,
    /// Arrival slots, ascending by `(t_ns, slot_ns)`.
    pub slots: Vec<SlotSample>,
}

impl Stream {
    /// Earliest recorded instant across rates, mixes and slots.
    #[must_use]
    pub fn first_t_ns(&self) -> Option<u64> {
        let r = self.rates.first().map(|s| s.t_ns);
        let m = self.mixes.first().map(|s| s.t_ns);
        let s = self.slots.first().map(|s| s.t_ns);
        [r, m, s].into_iter().flatten().min()
    }

    /// Latest recorded instant (slot ends count as `t + slot`).
    #[must_use]
    pub fn last_t_ns(&self) -> Option<u64> {
        let r = self.rates.last().map(|s| s.t_ns);
        let m = self.mixes.last().map(|s| s.t_ns);
        let s = self.slots.last().map(|s| s.t_ns.saturating_add(s.slot_ns));
        [r, m, s].into_iter().flatten().max()
    }

    fn is_sorted(&self) -> bool {
        self.rates.windows(2).all(|w| w[0].t_ns < w[1].t_ns)
            && self.mixes.windows(2).all(|w| w[0].t_ns < w[1].t_ns)
            && self
                .slots
                .windows(2)
                .all(|w| (w[0].t_ns, w[0].slot_ns) <= (w[1].t_ns, w[1].slot_ns))
    }
}

/// A recorded workload: header plus per-source demand streams.
///
/// The on-disk forms live in [`codec`](crate::codec) (compact binary) and
/// [`csvio`](crate::csvio) (interchange CSV).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// Enrolled students behind the recorded demand (drives analytic
    /// fleet sizing on replay, exactly as it did when recording).
    pub students: u32,
    /// `f64::to_bits` of the recorded source's peak rate.
    pub peak_rate_bits: u64,
    /// Interned mix table; [`MixSample::mix`] indexes into this.
    pub mixes: Vec<MixEntry>,
    /// One stream per demand source the recorded run created, in source
    /// creation order.
    pub streams: Vec<Stream>,
}

impl WorkloadTrace {
    /// An empty trace shell for the given header.
    #[must_use]
    pub fn empty(students: u32, peak_rate: f64) -> Self {
        WorkloadTrace {
            students,
            peak_rate_bits: peak_rate.to_bits(),
            mixes: Vec::new(),
            streams: Vec::new(),
        }
    }

    /// The recorded peak rate as a float.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        f64::from_bits(self.peak_rate_bits)
    }

    /// Earliest recorded instant across all streams (ns).
    #[must_use]
    pub fn start_ns(&self) -> Option<u64> {
        self.streams.iter().filter_map(Stream::first_t_ns).min()
    }

    /// Latest recorded instant across all streams (ns).
    #[must_use]
    pub fn end_ns(&self) -> Option<u64> {
        self.streams.iter().filter_map(Stream::last_t_ns).max()
    }

    /// Interns `pairs`, returning the existing index when an identical
    /// mix is already in the table.
    pub fn intern_mix(&mut self, pairs: MixEntry) -> u32 {
        if let Some(i) = self.mixes.iter().position(|m| *m == pairs) {
            return u32::try_from(i).expect("mix table fits u32");
        }
        self.mixes.push(pairs);
        u32::try_from(self.mixes.len() - 1).expect("mix table fits u32")
    }

    /// Rebuilds the [`RequestMix`] interned at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] when the index is out of range
    /// or the recorded weights no longer form a valid mix.
    pub fn mix(&self, index: u32) -> Result<RequestMix, TraceError> {
        let entry = self
            .mixes
            .get(index as usize)
            .ok_or_else(|| TraceError::Malformed(format!("mix index {index} out of range")))?;
        let pairs: Vec<(RequestKind, f64)> = entry
            .iter()
            .map(|&(k, bits)| (k, f64::from_bits(bits)))
            .collect();
        RequestMix::new(&pairs)
            .map_err(|e| TraceError::Malformed(format!("interned mix {index} invalid: {e}")))
    }

    /// Checks structural invariants: non-empty cohort, sorted streams,
    /// mix indices in range.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.students == 0 {
            return Err(TraceError::Malformed("zero students".into()));
        }
        if !self.peak_rate().is_finite() || self.peak_rate() < 0.0 {
            return Err(TraceError::Malformed("peak rate not finite".into()));
        }
        let n_mixes = self.mixes.len() as u32;
        for (i, stream) in self.streams.iter().enumerate() {
            if !stream.is_sorted() {
                return Err(TraceError::Malformed(format!("stream {i} not sorted")));
            }
            if let Some(bad) = stream.mixes.iter().find(|m| m.mix >= n_mixes) {
                return Err(TraceError::Malformed(format!(
                    "stream {i} references mix {} of {n_mixes}",
                    bad.mix
                )));
            }
        }
        Ok(())
    }

    /// Stretches time by `factor` around the trace start: a factor of 2
    /// plays the recorded day at half speed (twice the wall-span), so
    /// rates halve while every slot keeps its recorded arrival count.
    /// Times are scaled in fixed-point (ns ÷ 10⁹ resolution) to stay
    /// deterministic across platforms.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMorph`] unless `factor` is positive and
    /// finite.
    pub fn time_stretch(&self, factor: f64) -> Result<WorkloadTrace, TraceError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(TraceError::BadMorph(format!(
                "stretch factor must be positive, got {factor}"
            )));
        }
        let t0 = self.start_ns().unwrap_or(0);
        let num = (factor * 1e9).round() as u128;
        if num == 0 {
            return Err(TraceError::BadMorph(format!(
                "stretch factor {factor} underflows fixed-point"
            )));
        }
        let scale_t = |t: u64| -> u64 {
            let rel = u128::from(t.saturating_sub(t0));
            let scaled = rel * num / 1_000_000_000u128;
            t0.saturating_add(u64::try_from(scaled).unwrap_or(u64::MAX))
        };
        let scale_span = |d: u64| -> u64 {
            let scaled = u128::from(d) * num / 1_000_000_000u128;
            u64::try_from(scaled).unwrap_or(u64::MAX).max(1)
        };
        let inv = 1.0 / factor;
        let mut out = self.clone();
        out.peak_rate_bits = (self.peak_rate() * inv).to_bits();
        for stream in &mut out.streams {
            for r in &mut stream.rates {
                r.t_ns = scale_t(r.t_ns);
                r.rate_bits = (r.rate() * inv).to_bits();
            }
            for m in &mut stream.mixes {
                m.t_ns = scale_t(m.t_ns);
            }
            for s in &mut stream.slots {
                s.t_ns = scale_t(s.t_ns);
                s.slot_ns = scale_span(s.slot_ns);
            }
            dedup_stream(stream);
        }
        Ok(out)
    }

    /// Scales demand amplitude by `factor`: slot counts round
    /// deterministically, rates and the peak scale exactly, and the
    /// cohort scales with a floor of one student — turning a recorded
    /// 1k-student day into a synthetic million-student one.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMorph`] unless `factor` is positive and
    /// finite.
    pub fn amplitude_scale(&self, factor: f64) -> Result<WorkloadTrace, TraceError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(TraceError::BadMorph(format!(
                "scale factor must be positive, got {factor}"
            )));
        }
        let mut out = self.clone();
        out.peak_rate_bits = (self.peak_rate() * factor).to_bits();
        let students = (f64::from(self.students) * factor).round();
        out.students = if students >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            (students as u32).max(1)
        };
        for stream in &mut out.streams {
            for r in &mut stream.rates {
                r.rate_bits = (r.rate() * factor).to_bits();
            }
            for s in &mut stream.slots {
                s.count = (s.count as f64 * factor).round() as u64;
            }
        }
        Ok(out)
    }

    /// Keeps only the window `[from, to)` measured from the trace start,
    /// re-anchoring each stream's rate and mix so a replay inside the
    /// window still sees the value that was in force when it opens.
    /// Absolute instants are preserved — a clipped trace replays against
    /// the same simulation calendar as the original.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMorph`] when the window is empty.
    pub fn clip(&self, from: SimDuration, to: SimDuration) -> Result<WorkloadTrace, TraceError> {
        if to <= from {
            return Err(TraceError::BadMorph(format!(
                "clip window is empty ({from} >= {to})"
            )));
        }
        let t0 = self.start_ns().unwrap_or(0);
        let lo = t0.saturating_add(from.as_nanos());
        let hi = t0.saturating_add(to.as_nanos());
        let mut out = self.clone();
        for stream in &mut out.streams {
            let anchor_rate = stream
                .rates
                .iter()
                .take_while(|r| r.t_ns <= lo)
                .last()
                .map(|r| RateSample {
                    t_ns: lo,
                    rate_bits: r.rate_bits,
                });
            let anchor_mix = stream
                .mixes
                .iter()
                .take_while(|m| m.t_ns <= lo)
                .last()
                .map(|m| MixSample {
                    t_ns: lo,
                    mix: m.mix,
                });
            stream.rates.retain(|r| r.t_ns > lo && r.t_ns < hi);
            stream.mixes.retain(|m| m.t_ns > lo && m.t_ns < hi);
            stream.slots.retain(|s| s.t_ns >= lo && s.t_ns < hi);
            // Anchor only when the window actually contains demand;
            // otherwise the stream is dropped below.
            if stream.first_t_ns().is_some() {
                if let Some(anchor) = anchor_rate {
                    stream.rates.insert(0, anchor);
                }
                if let Some(anchor) = anchor_mix {
                    stream.mixes.insert(0, anchor);
                }
            }
        }
        out.streams.retain(|s| s.first_t_ns().is_some());
        if out.streams.is_empty() {
            return Err(TraceError::BadMorph(
                "clip window contains no recorded demand".into(),
            ));
        }
        Ok(out)
    }

    /// Shares the trace for replay fan-out.
    #[must_use]
    pub fn into_shared(self) -> Arc<WorkloadTrace> {
        Arc::new(self)
    }
}

/// Collapses duplicate instants after a morph rounded distinct recorded
/// times onto one nanosecond: last-in-force wins for rates/mixes, slot
/// counts merge by addition.
pub(crate) fn dedup_stream(stream: &mut Stream) {
    stream.rates.dedup_by(|next, prev| {
        if next.t_ns == prev.t_ns {
            prev.rate_bits = next.rate_bits;
            true
        } else {
            false
        }
    });
    stream.mixes.dedup_by(|next, prev| {
        if next.t_ns == prev.t_ns {
            prev.mix = next.mix;
            true
        } else {
            false
        }
    });
    stream.slots.dedup_by(|next, prev| {
        if next.t_ns == prev.t_ns && next.slot_ns == prev.slot_ns {
            prev.count += next.count;
            true
        } else {
            false
        }
    });
}

/// One parsed morph operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Morph {
    /// `stretch=F` — [`WorkloadTrace::time_stretch`].
    TimeStretch(f64),
    /// `scale=F` — [`WorkloadTrace::amplitude_scale`].
    AmplitudeScale(f64),
    /// `clip=H1..H2` (hours from trace start) — [`WorkloadTrace::clip`].
    Clip {
        /// Window start, hours from the trace start.
        from_hours: f64,
        /// Window end, hours from the trace start.
        to_hours: f64,
    },
}

/// A `--morph` pipeline: comma-separated operations applied in order,
/// e.g. `clip=8..10,scale=40,stretch=0.5`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MorphSpec {
    /// Operations in application order.
    pub ops: Vec<Morph>,
}

impl MorphSpec {
    /// Parses a `--morph` argument.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMorph`] with the offending fragment.
    pub fn parse(spec: &str) -> Result<Self, TraceError> {
        let mut ops = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| TraceError::BadMorph(format!("expected key=value, got {part:?}")))?;
            let op = match key.trim() {
                "stretch" => Morph::TimeStretch(parse_factor(value)?),
                "scale" => Morph::AmplitudeScale(parse_factor(value)?),
                "clip" => {
                    let (lo, hi) = value.split_once("..").ok_or_else(|| {
                        TraceError::BadMorph(format!("clip wants H1..H2 hours, got {value:?}"))
                    })?;
                    Morph::Clip {
                        from_hours: parse_hours(lo)?,
                        to_hours: parse_hours(hi)?,
                    }
                }
                other => {
                    return Err(TraceError::BadMorph(format!(
                        "unknown morph {other:?} (try stretch=, scale=, clip=)"
                    )))
                }
            };
            ops.push(op);
        }
        if ops.is_empty() {
            return Err(TraceError::BadMorph("empty morph spec".into()));
        }
        Ok(MorphSpec { ops })
    }

    /// Applies the pipeline to `trace`, left to right.
    ///
    /// # Errors
    ///
    /// Propagates the first failing operation.
    pub fn apply(&self, trace: &WorkloadTrace) -> Result<WorkloadTrace, TraceError> {
        let mut out = trace.clone();
        for op in &self.ops {
            out = match *op {
                Morph::TimeStretch(f) => out.time_stretch(f)?,
                Morph::AmplitudeScale(f) => out.amplitude_scale(f)?,
                Morph::Clip {
                    from_hours,
                    to_hours,
                } => {
                    let from = SimDuration::from_secs_f64(from_hours * 3_600.0);
                    let to = SimDuration::from_secs_f64(to_hours * 3_600.0);
                    out.clip(from, to)?
                }
            };
        }
        Ok(out)
    }
}

fn parse_factor(s: &str) -> Result<f64, TraceError> {
    let v: f64 = s
        .trim()
        .parse()
        .map_err(|_| TraceError::BadMorph(format!("not a number: {s:?}")))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(TraceError::BadMorph(format!(
            "factor must be positive, got {s}"
        )));
    }
    Ok(v)
}

fn parse_hours(s: &str) -> Result<f64, TraceError> {
    let v: f64 = s
        .trim()
        .parse()
        .map_err(|_| TraceError::BadMorph(format!("not a number: {s:?}")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(TraceError::BadMorph(format!(
            "hours must be non-negative, got {s}"
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> WorkloadTrace {
        let mut trace = WorkloadTrace::empty(1_000, 104.0);
        let mix = trace.intern_mix(vec![
            (RequestKind::VideoChunk, 45.0f64.to_bits()),
            (RequestKind::QuizSubmit, 4.0f64.to_bits()),
        ]);
        trace.streams.push(Stream {
            rates: vec![
                RateSample {
                    t_ns: 3_600_000_000_000,
                    rate_bits: 10.0f64.to_bits(),
                },
                RateSample {
                    t_ns: 7_200_000_000_000,
                    rate_bits: 20.0f64.to_bits(),
                },
            ],
            mixes: vec![MixSample {
                t_ns: 3_600_000_000_000,
                mix,
            }],
            slots: vec![
                SlotSample {
                    t_ns: 3_600_000_000_000,
                    slot_ns: 60_000_000_000,
                    count: 600,
                },
                SlotSample {
                    t_ns: 7_200_000_000_000,
                    slot_ns: 60_000_000_000,
                    count: 1_200,
                },
            ],
        });
        trace
    }

    #[test]
    fn validate_accepts_the_sample_and_rejects_breakage() {
        let trace = sample_trace();
        assert_eq!(trace.validate(), Ok(()));
        let mut bad = trace.clone();
        bad.streams[0].mixes[0].mix = 7;
        assert!(matches!(bad.validate(), Err(TraceError::Malformed(_))));
        let mut unsorted = trace.clone();
        unsorted.streams[0].rates.reverse();
        assert!(matches!(unsorted.validate(), Err(TraceError::Malformed(_))));
        let mut empty = trace;
        empty.students = 0;
        assert!(empty.validate().is_err());
    }

    #[test]
    fn intern_mix_dedups() {
        let mut trace = WorkloadTrace::empty(10, 1.0);
        let a = trace.intern_mix(vec![(RequestKind::Login, 1.0f64.to_bits())]);
        let b = trace.intern_mix(vec![(RequestKind::Login, 1.0f64.to_bits())]);
        let c = trace.intern_mix(vec![(RequestKind::Login, 2.0f64.to_bits())]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(trace.mixes.len(), 2);
    }

    #[test]
    fn stretch_slows_time_and_preserves_counts() {
        let trace = sample_trace();
        let slow = trace.time_stretch(2.0).unwrap();
        // Start anchored, the second sample lands twice as far out.
        assert_eq!(slow.streams[0].rates[0].t_ns, 3_600_000_000_000);
        assert_eq!(
            slow.streams[0].rates[1].t_ns,
            3_600_000_000_000 + 2 * 3_600_000_000_000
        );
        assert_eq!(slow.streams[0].rates[0].rate(), 5.0);
        assert_eq!(slow.streams[0].slots[0].count, 600);
        assert_eq!(slow.streams[0].slots[0].slot_ns, 120_000_000_000);
        assert_eq!(slow.peak_rate(), 52.0);
        assert!(trace.time_stretch(0.0).is_err());
        assert!(trace.time_stretch(f64::NAN).is_err());
    }

    #[test]
    fn scale_amplifies_counts_rates_and_cohort() {
        let trace = sample_trace();
        let big = trace.amplitude_scale(1_000.0).unwrap();
        assert_eq!(big.students, 1_000_000);
        assert_eq!(big.streams[0].slots[0].count, 600_000);
        assert_eq!(big.streams[0].rates[0].rate(), 10_000.0);
        assert_eq!(big.peak_rate(), 104_000.0);
        let tiny = trace.amplitude_scale(1e-9).unwrap();
        assert_eq!(tiny.students, 1, "cohort floors at one student");
        assert!(trace.amplitude_scale(-1.0).is_err());
    }

    #[test]
    fn clip_keeps_the_window_and_anchors_the_rate() {
        let trace = sample_trace();
        // Window [0.5h, 1.5h) from trace start (start is at 1h absolute).
        let clipped = trace
            .clip(SimDuration::from_mins(30), SimDuration::from_mins(90))
            .unwrap();
        let s = &clipped.streams[0];
        // The 2h-absolute sample is outside; the 1h one is in force at the
        // window start and re-anchored there.
        assert_eq!(s.rates.len(), 2);
        assert_eq!(s.rates[0].t_ns, 3_600_000_000_000 + 1_800_000_000_000);
        assert_eq!(s.rates[0].rate(), 10.0);
        assert_eq!(s.slots.len(), 1);
        assert!(trace
            .clip(SimDuration::from_hours(2), SimDuration::from_hours(1))
            .is_err());
        assert!(trace
            .clip(SimDuration::from_hours(90), SimDuration::from_hours(91))
            .is_err());
    }

    #[test]
    fn morph_spec_parses_and_applies_in_order() {
        let spec = MorphSpec::parse("scale=2, stretch=0.5").unwrap();
        assert_eq!(
            spec.ops,
            vec![Morph::AmplitudeScale(2.0), Morph::TimeStretch(0.5)]
        );
        let trace = sample_trace();
        let morphed = spec.apply(&trace).unwrap();
        assert_eq!(morphed.streams[0].slots[0].count, 1_200);
        // scale doubles the rate, stretch=0.5 doubles it again.
        assert_eq!(morphed.streams[0].rates[0].rate(), 40.0);

        let clip = MorphSpec::parse("clip=0.5..1.5").unwrap();
        assert_eq!(
            clip.ops,
            vec![Morph::Clip {
                from_hours: 0.5,
                to_hours: 1.5
            }]
        );
        assert!(MorphSpec::parse("").is_err());
        assert!(MorphSpec::parse("stretch").is_err());
        assert!(MorphSpec::parse("warp=2").is_err());
        assert!(MorphSpec::parse("clip=5").is_err());
        assert!(MorphSpec::parse("scale=zero").is_err());
    }

    #[test]
    fn error_display_is_informative() {
        for err in [
            TraceError::BadMagic,
            TraceError::BadVersion(9),
            TraceError::Truncated,
            TraceError::Malformed("x".into()),
            TraceError::UnknownKind("y".into()),
            TraceError::BadMorph("z".into()),
            TraceError::Io("p".into()),
            TraceError::HeaderConflict { first: 1, other: 2 },
            TraceError::Empty,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
