//! # elc-wltrace — workload trace record, replay and morphing
//!
//! The paper's core question — which cloud deployment model serves an
//! e-learning system best — demands apples-to-apples comparisons, and the
//! synthetic [`WorkloadModel`](elc_elearn::workload::WorkloadModel) cannot
//! drive two experiments with the *same exact* request stream: every run
//! re-samples its Poisson arrivals. This crate closes that gap:
//!
//! * [`trace`] — the in-memory [`WorkloadTrace`] model and the morphing
//!   combinators ([`time_stretch`](WorkloadTrace::time_stretch),
//!   [`amplitude_scale`](WorkloadTrace::amplitude_scale),
//!   [`clip`](WorkloadTrace::clip)) plus the [`MorphSpec`] `--morph`
//!   parser,
//! * [`codec`] — the compact binary format (`ELCW` magic, interned
//!   request-kind table, delta-encoded samples),
//! * [`csvio`] — CSV interchange for external datasets,
//! * [`record`] — [`TraceRecorder`], a tee that records any
//!   generator-driven run without perturbing it,
//! * [`replay`] — [`TraceReplayer`] and [`TraceHandout`], which drive any
//!   experiment from a trace while re-jittering recorded counts through
//!   the caller's RNG so shard/thread byte-identity holds.
//!
//! Replay events are emitted under the `wltrace` trace target.
//!
//! # Record → morph → replay
//!
//! ```
//! use std::sync::Arc;
//! use elc_elearn::calendar::AcademicCalendar;
//! use elc_elearn::source::WorkloadSource;
//! use elc_elearn::workload::WorkloadModel;
//! use elc_simcore::{SimDuration, SimRng, SimTime};
//! use elc_wltrace::{MorphSpec, TraceRecorder, TraceReplayer};
//!
//! // Record a generator-driven exam evening.
//! let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
//! let recorder = TraceRecorder::new();
//! let source = recorder.wrap(Box::new(WorkloadModel::builder(1_000, cal).build().unwrap()));
//! let mut rng = SimRng::seed(42);
//! let start = cal.exams_start() + SimDuration::from_hours(19);
//! for i in 0..60 {
//!     source.sample_arrivals(&mut rng, start + SimDuration::from_mins(i), SimDuration::from_mins(1));
//! }
//! let trace = recorder.finish().unwrap();
//!
//! // Scale the recorded thousand students to forty thousand and replay.
//! let big = MorphSpec::parse("scale=40").unwrap().apply(&trace).unwrap();
//! let replay = TraceReplayer::stream(Arc::new(big), 0).unwrap();
//! assert_eq!(replay.students(), 40_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trace target every `elc-wltrace` event is recorded under.
pub(crate) const TRACE_TARGET: &str = "wltrace";

pub mod codec;
pub mod csvio;
pub mod record;
pub mod replay;
pub mod trace;

pub use record::TraceRecorder;
pub use replay::{TraceHandout, TraceReplayer};
pub use trace::{
    MixEntry, MixSample, Morph, MorphSpec, RateSample, SlotSample, Stream, TraceError,
    WorkloadTrace,
};
