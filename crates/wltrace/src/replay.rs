//! Replay: drive any experiment from a recorded trace.
//!
//! [`TraceReplayer`] implements `WorkloadSource` over one [`Stream`] of a
//! [`WorkloadTrace`]:
//!
//! * `rate_at` returns the recorded bits on an exact hit and the last
//!   recorded rate before `t` otherwise (piecewise-constant), so replays
//!   are exact where the recording queried and sensible in between;
//! * `sample_arrivals` returns the recorded count on an exact
//!   `(t, slot)` hit **without touching the RNG** — the caller's stream
//!   stays aligned with the recording run — and falls back to a Poisson
//!   draw over the replayed rate off-trace (consuming the RNG exactly as
//!   the generator would have);
//! * `sample_arrival_offsets` (trait default) re-jitters replayed counts
//!   into uniform offsets through the *caller's* `SimRng`, which is what
//!   keeps shard/thread byte-identity: the count is data, the jitter is
//!   the caller's seed lineage;
//! * `split` apportions every slot count over sites by largest remainder
//!   (deterministic, sum-exact) and scales rates by cohort share.
//!
//! [`TraceHandout`] hands streams to consumers the way the recorder saw
//! sources get created: each `source()` call yields an unbound replayer
//! that binds to a concrete stream on its first time-keyed query —
//! preferring an unclaimed stream whose first recorded instant matches
//! the query (so parallel arms with distinct start days find their own
//! stream regardless of creation races), then falling back to creation
//! order.

use std::sync::{Arc, Mutex, OnceLock};

use elc_elearn::request::RequestMix;
use elc_elearn::source::WorkloadSource;
use elc_elearn::workload::split_cohort;
use elc_simcore::dist::{Distribution, Poisson};
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::trace::{RateSample, Stream, TraceError, WorkloadTrace};

#[derive(Debug, Default)]
struct HandoutState {
    claimed: Vec<bool>,
    cycle: usize,
}

/// Hands a trace's streams to replay consumers, one per
/// [`source`](TraceHandout::source) call. Clones share claim state; a
/// fresh handout (e.g. per runner replication) restarts the hand-out.
#[derive(Debug, Clone)]
pub struct TraceHandout {
    trace: Arc<WorkloadTrace>,
    state: Arc<Mutex<HandoutState>>,
}

impl TraceHandout {
    /// A handout over `trace`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when the trace has no streams.
    pub fn new(trace: Arc<WorkloadTrace>) -> Result<Self, TraceError> {
        if trace.streams.is_empty() {
            return Err(TraceError::Empty);
        }
        let state = HandoutState {
            claimed: vec![false; trace.streams.len()],
            cycle: 0,
        };
        Ok(TraceHandout {
            trace,
            state: Arc::new(Mutex::new(state)),
        })
    }

    /// The shared trace.
    #[must_use]
    pub fn trace(&self) -> &Arc<WorkloadTrace> {
        &self.trace
    }

    /// The next replay source (unbound until its first time-keyed query).
    #[must_use]
    pub fn source(&self) -> TraceReplayer {
        TraceReplayer {
            trace: self.trace.clone(),
            students: self.trace.students,
            peak_rate_bits: self.trace.peak_rate_bits,
            handout: Some(self.clone()),
            bound: Arc::new(OnceLock::new()),
        }
    }

    /// Forgets all claims, so the next consumers start from stream 0
    /// again (used when a scenario is reseeded for a new replication).
    pub fn reset(&self) {
        let mut state = self.state.lock().expect("handout lock");
        state.claimed.iter_mut().for_each(|c| *c = false);
        state.cycle = 0;
    }

    fn bind(&self, t_ns: u64) -> usize {
        let streams = &self.trace.streams;
        let mut state = self.state.lock().expect("handout lock");
        // 1. An unclaimed stream that starts exactly at the query instant
        //    — parallel arms find their own stream whatever the creation
        //    race did.
        if let Some(i) =
            (0..streams.len()).find(|&i| !state.claimed[i] && streams[i].first_t_ns() == Some(t_ns))
        {
            state.claimed[i] = true;
            return i;
        }
        // 2. A claimed stream with that exact start: repeated runs over
        //    one handout still bind by time.
        if let Some(i) = (0..streams.len()).find(|&i| streams[i].first_t_ns() == Some(t_ns)) {
            return i;
        }
        // 3. Creation order: the lowest unclaimed stream.
        if let Some(i) = (0..streams.len()).find(|&i| !state.claimed[i]) {
            state.claimed[i] = true;
            return i;
        }
        // 4. All claimed: cycle.
        let i = state.cycle % streams.len();
        state.cycle += 1;
        i
    }
}

/// Replays one recorded demand stream through the `WorkloadSource` trait.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: Arc<WorkloadTrace>,
    students: u32,
    peak_rate_bits: u64,
    handout: Option<TraceHandout>,
    bound: Arc<OnceLock<usize>>,
}

impl TraceReplayer {
    /// A replayer bound to stream `index` (taken modulo the stream
    /// count).
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when the trace has no streams.
    pub fn stream(trace: Arc<WorkloadTrace>, index: usize) -> Result<Self, TraceError> {
        if trace.streams.is_empty() {
            return Err(TraceError::Empty);
        }
        let bound = OnceLock::new();
        let _ = bound.set(index % trace.streams.len());
        Ok(TraceReplayer {
            students: trace.students,
            peak_rate_bits: trace.peak_rate_bits,
            handout: None,
            bound: Arc::new(bound),
            trace,
        })
    }

    fn stream_for(&self, t_ns: u64) -> &Stream {
        let idx = *self.bound.get_or_init(|| {
            let idx = match &self.handout {
                Some(handout) => handout.bind(t_ns),
                None => 0,
            };
            if elc_trace::enabled(crate::TRACE_TARGET, Level::Info) {
                elc_trace::instant(
                    t_ns,
                    crate::TRACE_TARGET,
                    "replay.bind",
                    Level::Info,
                    &[Field::u64("stream", idx as u64)],
                );
            }
            idx
        });
        &self.trace.streams[idx]
    }

    fn lookup_rate(stream: &Stream, t_ns: u64) -> f64 {
        let idx = stream.rates.partition_point(|r| r.t_ns <= t_ns);
        if idx == 0 {
            return 0.0;
        }
        let RateSample { rate_bits, .. } = stream.rates[idx - 1];
        f64::from_bits(rate_bits)
    }
}

impl WorkloadSource for TraceReplayer {
    fn students(&self) -> u32 {
        self.students
    }

    fn peak_rate(&self) -> f64 {
        f64::from_bits(self.peak_rate_bits)
    }

    fn rate_at(&self, t: SimTime) -> f64 {
        Self::lookup_rate(self.stream_for(t.as_nanos()), t.as_nanos())
    }

    fn mix_at(&self, t: SimTime) -> RequestMix {
        let t_ns = t.as_nanos();
        let stream = self.stream_for(t_ns);
        let idx = stream.mixes.partition_point(|m| m.t_ns <= t_ns);
        let sample = if idx > 0 {
            Some(stream.mixes[idx - 1])
        } else {
            stream.mixes.first().copied()
        };
        sample
            .and_then(|m| self.trace.mix(m.mix).ok())
            .unwrap_or_else(RequestMix::teaching)
    }

    fn sample_arrivals(&self, rng: &mut SimRng, t: SimTime, slot: SimDuration) -> u64 {
        let t_ns = t.as_nanos();
        let slot_ns = slot.as_nanos();
        let stream = self.stream_for(t_ns);
        let idx = stream
            .slots
            .partition_point(|s| (s.t_ns, s.slot_ns) < (t_ns, slot_ns));
        if let Some(s) = stream.slots.get(idx) {
            if s.t_ns == t_ns && s.slot_ns == slot_ns {
                // Exact hit: the count is data, no RNG is consumed.
                if elc_trace::enabled(crate::TRACE_TARGET, Level::Debug) {
                    elc_trace::instant(
                        t_ns,
                        crate::TRACE_TARGET,
                        "replay.slot",
                        Level::Debug,
                        &[Field::u64("count", s.count)],
                    );
                }
                return s.count;
            }
        }
        // Off-trace query: fall back to the generator's sampling rule over
        // the replayed rate, consuming the RNG just like a generator.
        let lambda = Self::lookup_rate(stream, t_ns) * slot.as_secs_f64();
        Poisson::new(lambda.max(0.0))
            .expect("replayed rate is finite and non-negative")
            .sample(rng)
    }

    fn split(&self, sites: u32) -> Vec<Box<dyn WorkloadSource>> {
        let shares = split_cohort(self.students, sites);
        let total = u128::from(self.students);
        let my_stream = self.stream_for(self.trace.start_ns().unwrap_or(0)).clone();
        shares
            .iter()
            .enumerate()
            .map(|(site, &share)| {
                let frac = f64::from(share) / self.students as f64;
                let mut stream = my_stream.clone();
                for r in &mut stream.rates {
                    r.rate_bits = (f64::from_bits(r.rate_bits) * frac).to_bits();
                }
                for slot in &mut stream.slots {
                    slot.count = apportion(slot.count, &shares, total, site);
                }
                let trace = WorkloadTrace {
                    students: share,
                    peak_rate_bits: (self.peak_rate() * frac).to_bits(),
                    mixes: self.trace.mixes.clone(),
                    streams: vec![stream],
                };
                let site_replayer =
                    TraceReplayer::stream(Arc::new(trace), 0).expect("site trace has one stream");
                Box::new(site_replayer) as Box<dyn WorkloadSource>
            })
            .collect()
    }

    fn clone_source(&self) -> Box<dyn WorkloadSource> {
        Box::new(self.clone())
    }
}

/// Site `site`'s share of `count` under a largest-remainder apportionment
/// over `shares` (which sum to `total`): deterministic, and the site
/// shares sum exactly to `count`.
fn apportion(count: u64, shares: &[u32], total: u128, site: usize) -> u64 {
    let count = u128::from(count);
    let floor_of = |s: u32| (count * u128::from(s)) / total;
    let rem_of = |s: u32| (count * u128::from(s)) % total;
    let assigned: u128 = shares.iter().map(|&s| floor_of(s)).sum();
    let mut extras = count - assigned;
    // Hand the leftovers to the largest remainders, lowest site first on
    // ties.
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(rem_of(shares[i])), i));
    let mut mine = floor_of(shares[site]);
    for i in order {
        if extras == 0 {
            break;
        }
        if rem_of(shares[i]) == 0 {
            break;
        }
        if i == site {
            mine += 1;
        }
        extras -= 1;
    }
    u64::try_from(mine).expect("site count fits u64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecorder;
    use elc_elearn::calendar::AcademicCalendar;
    use elc_elearn::workload::WorkloadModel;

    fn recorded_trace(students: u32, seed: u64) -> (WorkloadModel, Arc<WorkloadTrace>) {
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let model = WorkloadModel::builder(students, cal).build().unwrap();
        let recorder = TraceRecorder::new();
        let wrapped = recorder.wrap(Box::new(model.clone()));
        let mut rng = SimRng::seed(seed);
        let slot = SimDuration::from_secs(60);
        let start = SimTime::from_secs(15 * 7 * 86_400 + 12 * 3_600);
        for i in 0..240u64 {
            let t = start + SimDuration::from_secs(i * 60);
            wrapped.sample_arrivals(&mut rng, t, slot);
            if i % 30 == 0 {
                let _ = wrapped.mix_at(t);
            }
        }
        (model, Arc::new(recorder.finish().unwrap()))
    }

    #[test]
    fn replay_returns_recorded_counts_without_consuming_rng() {
        let (model, trace) = recorded_trace(10_000, 42);
        let replay = TraceReplayer::stream(trace, 0).unwrap();
        // Regenerate the recording run to know the expected counts.
        let mut gen_rng = SimRng::seed(42);
        let mut replay_rng = SimRng::seed(123); // deliberately different
        let slot = SimDuration::from_secs(60);
        let start = SimTime::from_secs(15 * 7 * 86_400 + 12 * 3_600);
        for i in 0..240u64 {
            let t = start + SimDuration::from_secs(i * 60);
            let expect = model.sample_arrivals(&mut gen_rng, t, slot);
            let got = replay.sample_arrivals(&mut replay_rng, t, slot);
            assert_eq!(got, expect, "tick {i}");
        }
        assert_eq!(
            replay_rng.next_u64(),
            SimRng::seed(123).next_u64(),
            "exact hits must not touch the caller's RNG"
        );
    }

    #[test]
    fn replayed_rates_and_header_are_bit_exact() {
        let (model, trace) = recorded_trace(10_000, 7);
        let replay = TraceReplayer::stream(trace, 0).unwrap();
        assert_eq!(replay.students(), model.students());
        assert_eq!(replay.peak_rate().to_bits(), model.peak_rate().to_bits());
        let t = SimTime::from_secs(15 * 7 * 86_400 + 12 * 3_600 + 50 * 60);
        assert_eq!(replay.rate_at(t).to_bits(), model.rate_at(t).to_bits());
        // Between recorded samples: piecewise-constant floor.
        let between = t + SimDuration::from_secs(30);
        assert_eq!(
            replay.rate_at(between).to_bits(),
            model.rate_at(t).to_bits()
        );
        // Before the first sample: quiet.
        assert_eq!(replay.rate_at(SimTime::ZERO), 0.0);
        // Exam-window mix replays as recorded.
        assert_eq!(replay.mix_at(t), model.mix_at(t));
    }

    #[test]
    fn off_trace_queries_fall_back_to_poisson_over_the_replayed_rate() {
        let (_, trace) = recorded_trace(10_000, 9);
        let replay = TraceReplayer::stream(trace, 0).unwrap();
        let t = SimTime::from_secs(15 * 7 * 86_400 + 12 * 3_600 + 10 * 60);
        // A slot width the recording never used misses the exact-hit path.
        let odd_slot = SimDuration::from_secs(17);
        let mut a = SimRng::seed(5);
        let mut b = SimRng::seed(5);
        let x = replay.sample_arrivals(&mut a, t, odd_slot);
        let y = replay.sample_arrivals(&mut b, t, odd_slot);
        assert_eq!(x, y, "fallback is deterministic in the caller's seed");
        assert_ne!(
            a.next_u64(),
            SimRng::seed(5).next_u64(),
            "fallback consumes the RNG like a generator"
        );
    }

    #[test]
    fn split_preserves_totals_per_slot() {
        let (_, trace) = recorded_trace(10_000, 11);
        let replay = TraceReplayer::stream(trace.clone(), 0).unwrap();
        let sites = replay.split(3);
        assert_eq!(sites.iter().map(|s| s.students()).sum::<u32>(), 10_000);
        let slot = SimDuration::from_secs(60);
        let start = SimTime::from_secs(15 * 7 * 86_400 + 12 * 3_600);
        let mut rng = SimRng::seed(1);
        for i in 0..240u64 {
            let t = start + SimDuration::from_secs(i * 60);
            let whole = replay.sample_arrivals(&mut rng, t, slot);
            let parts: u64 = sites
                .iter()
                .map(|s| s.sample_arrivals(&mut rng, t, slot))
                .sum();
            assert_eq!(parts, whole, "tick {i}: site counts must sum exactly");
        }
        let t = start + SimDuration::from_secs(90 * 60);
        let rate_sum: f64 = sites.iter().map(|s| s.rate_at(t)).sum();
        assert!((rate_sum - replay.rate_at(t)).abs() < 1e-9 * replay.rate_at(t).max(1.0));
    }

    #[test]
    fn handout_binds_streams_by_first_query_time_then_creation_order() {
        // Record two sources with distinct start instants.
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let model = WorkloadModel::builder(4_000, cal).build().unwrap();
        let recorder = TraceRecorder::new();
        let early = recorder.wrap(Box::new(model.clone()));
        let late = recorder.wrap(Box::new(model));
        let mut rng = SimRng::seed(3);
        let slot = SimDuration::from_secs(60);
        let t_early = SimTime::from_secs(5 * 7 * 86_400);
        let t_late = SimTime::from_secs(6 * 7 * 86_400);
        let n_early = early.sample_arrivals(&mut rng, t_early, slot);
        let n_late = late.sample_arrivals(&mut rng, t_late, slot);
        let trace = Arc::new(recorder.finish().unwrap());

        let handout = TraceHandout::new(trace.clone()).unwrap();
        // Consumers created in the opposite order still find their stream
        // because first-query instants disambiguate.
        let b = handout.source();
        let a = handout.source();
        let mut replay_rng = SimRng::seed(99);
        assert_eq!(b.sample_arrivals(&mut replay_rng, t_late, slot), n_late);
        assert_eq!(a.sample_arrivals(&mut replay_rng, t_early, slot), n_early);

        // After reset the hand-out starts over.
        handout.reset();
        let c = handout.source();
        assert_eq!(c.sample_arrivals(&mut replay_rng, t_early, slot), n_early);

        // Exhausting the streams cycles in creation order.
        let more: Vec<_> = (0..3).map(|_| handout.source()).collect();
        let probe = SimTime::from_secs(86_400);
        for source in &more {
            let _ = source.rate_at(probe);
        }
        assert!(TraceHandout::new(Arc::new(WorkloadTrace::empty(1, 0.0).clone())).is_err());
    }

    #[test]
    fn apportion_is_exact_for_odd_splits() {
        let shares = split_cohort(10, 3); // [4, 3, 3]
        let total = 10u128;
        for count in [0u64, 1, 2, 7, 100, 12_345] {
            let sum: u64 = (0..3)
                .map(|site| apportion(count, &shares, total, site))
                .sum();
            assert_eq!(sum, count, "count {count} must apportion exactly");
        }
        // Shares of zero remainder take nothing extra.
        assert_eq!(apportion(10, &shares, total, 0), 4);
    }
}
