//! Compact binary trace format.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! "ELCW"                magic, 4 bytes
//! u8                    version (currently 1)
//! varint                students
//! u64 LE (8 bytes)      peak rate, f64 bits
//! varint                kind-table length
//!   varint + bytes      each kind's Display name (length-prefixed UTF-8)
//! varint                mix-table length
//!   varint              each mix: pair count
//!     varint            kind-table index
//!     u64 LE (8 bytes)  weight, f64 bits
//! varint                stream count
//!   per stream, three sections (rates, mixes, slots), each:
//!     varint            sample count
//!     varint            time delta vs previous sample (first = absolute)
//!     ...               section payload per sample:
//!                         rates: u64 LE rate bits
//!                         mixes: varint mix index
//!                         slots: varint slot width (ns), varint count
//! ```
//!
//! Times are delta-encoded against the previous sample in the same
//! section — recorded streams are sorted ascending, so deltas stay small.
//! f64 payloads stay fixed-width: rate bits are high-entropy and a varint
//! would inflate them. The kind table stores `Display` names rather than
//! enum discriminants so a trace survives `RequestKind` reordering; decode
//! fails with [`TraceError::UnknownKind`] when a name is gone.

use std::path::Path;

use elc_elearn::request::RequestKind;

use crate::trace::{MixSample, RateSample, SlotSample, Stream, TraceError, WorkloadTrace};

/// File magic: "ELCW" — ELearn-Cloud Workload.
pub const MAGIC: [u8; 4] = *b"ELCW";
/// Current format version.
pub const VERSION: u8 = 1;

/// Serializes a trace to the binary format.
#[must_use]
pub fn to_bytes(trace: &WorkloadTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + trace.streams.len() * 64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    put_varint(&mut out, u64::from(trace.students));
    out.extend_from_slice(&trace.peak_rate_bits.to_le_bytes());

    // Kind table: union of kinds referenced by the mix table, in first-use
    // order.
    let mut kinds: Vec<RequestKind> = Vec::new();
    for mix in &trace.mixes {
        for &(kind, _) in mix {
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
    }
    put_varint(&mut out, kinds.len() as u64);
    for kind in &kinds {
        let name = kind.to_string();
        put_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }

    put_varint(&mut out, trace.mixes.len() as u64);
    for mix in &trace.mixes {
        put_varint(&mut out, mix.len() as u64);
        for &(kind, weight_bits) in mix {
            let idx = kinds.iter().position(|k| *k == kind).expect("interned");
            put_varint(&mut out, idx as u64);
            out.extend_from_slice(&weight_bits.to_le_bytes());
        }
    }

    put_varint(&mut out, trace.streams.len() as u64);
    for stream in &trace.streams {
        put_varint(&mut out, stream.rates.len() as u64);
        let mut prev = 0u64;
        for r in &stream.rates {
            put_varint(&mut out, r.t_ns.wrapping_sub(prev));
            prev = r.t_ns;
            out.extend_from_slice(&r.rate_bits.to_le_bytes());
        }
        put_varint(&mut out, stream.mixes.len() as u64);
        let mut prev = 0u64;
        for m in &stream.mixes {
            put_varint(&mut out, m.t_ns.wrapping_sub(prev));
            prev = m.t_ns;
            put_varint(&mut out, u64::from(m.mix));
        }
        put_varint(&mut out, stream.slots.len() as u64);
        let mut prev = 0u64;
        for s in &stream.slots {
            put_varint(&mut out, s.t_ns.wrapping_sub(prev));
            prev = s.t_ns;
            put_varint(&mut out, s.slot_ns);
            put_varint(&mut out, s.count);
        }
    }
    out
}

/// Deserializes a trace from the binary format and validates it.
///
/// # Errors
///
/// Returns [`TraceError`] on bad magic/version, truncation, unknown
/// request kinds, or a structurally invalid trace.
pub fn from_bytes(bytes: &[u8]) -> Result<WorkloadTrace, TraceError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = r.take(1)?[0];
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let students = u32::try_from(r.varint()?)
        .map_err(|_| TraceError::Malformed("students overflows u32".into()))?;
    let peak_rate_bits = r.u64_le()?;

    let kind_count = r.len_capped("kind table")?;
    let mut kinds = Vec::with_capacity(kind_count);
    for _ in 0..kind_count {
        let len = r.len_capped("kind name")?;
        let raw = r.take(len)?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| TraceError::Malformed("kind name not utf-8".into()))?;
        let kind =
            RequestKind::from_name(name).ok_or_else(|| TraceError::UnknownKind(name.into()))?;
        kinds.push(kind);
    }

    let mix_count = r.len_capped("mix table")?;
    let mut mixes = Vec::with_capacity(mix_count);
    for _ in 0..mix_count {
        let pair_count = r.len_capped("mix pairs")?;
        let mut pairs = Vec::with_capacity(pair_count);
        for _ in 0..pair_count {
            let idx = r.varint()? as usize;
            let kind = *kinds
                .get(idx)
                .ok_or_else(|| TraceError::Malformed(format!("kind index {idx} out of range")))?;
            pairs.push((kind, r.u64_le()?));
        }
        mixes.push(pairs);
    }

    let stream_count = r.len_capped("streams")?;
    let mut streams = Vec::with_capacity(stream_count);
    for _ in 0..stream_count {
        let rate_count = r.len_capped("rates")?;
        let mut rates = Vec::with_capacity(rate_count);
        let mut prev = 0u64;
        for _ in 0..rate_count {
            prev = prev.wrapping_add(r.varint()?);
            rates.push(RateSample {
                t_ns: prev,
                rate_bits: r.u64_le()?,
            });
        }
        let mix_count = r.len_capped("stream mixes")?;
        let mut stream_mixes = Vec::with_capacity(mix_count);
        let mut prev = 0u64;
        for _ in 0..mix_count {
            prev = prev.wrapping_add(r.varint()?);
            let mix = u32::try_from(r.varint()?)
                .map_err(|_| TraceError::Malformed("mix index overflows u32".into()))?;
            stream_mixes.push(MixSample { t_ns: prev, mix });
        }
        let slot_count = r.len_capped("slots")?;
        let mut slots = Vec::with_capacity(slot_count);
        let mut prev = 0u64;
        for _ in 0..slot_count {
            prev = prev.wrapping_add(r.varint()?);
            slots.push(SlotSample {
                t_ns: prev,
                slot_ns: r.varint()?,
                count: r.varint()?,
            });
        }
        streams.push(Stream {
            rates,
            mixes: stream_mixes,
            slots,
        });
    }
    if r.pos != r.bytes.len() {
        return Err(TraceError::Malformed(format!(
            "{} trailing bytes",
            r.bytes.len() - r.pos
        )));
    }
    let trace = WorkloadTrace {
        students,
        peak_rate_bits,
        mixes,
        streams,
    };
    trace.validate()?;
    Ok(trace)
}

/// Writes the binary form to `path`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] with the path on failure.
pub fn write_file(trace: &WorkloadTrace, path: &Path) -> Result<(), TraceError> {
    std::fs::write(path, to_bytes(trace))
        .map_err(|e| TraceError::Io(format!("write {}: {e}", path.display())))
}

/// Reads and decodes a binary trace from `path`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on read failure, or any decode error.
pub fn read_file(path: &Path) -> Result<WorkloadTrace, TraceError> {
    let bytes =
        std::fs::read(path).map_err(|e| TraceError::Io(format!("read {}: {e}", path.display())))?;
    from_bytes(&bytes)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64_le(&mut self) -> Result<u64, TraceError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceError::Malformed("varint overflows u64".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// A varint used as an element count: capped against the remaining
    /// byte budget so a corrupt length cannot trigger a huge allocation.
    fn len_capped(&mut self, what: &str) -> Result<usize, TraceError> {
        let v = self.varint()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if v > remaining {
            return Err(TraceError::Malformed(format!(
                "{what} count {v} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MixEntry;

    fn trace() -> WorkloadTrace {
        let mut t = WorkloadTrace::empty(25_000, 2_600.0);
        let teaching: MixEntry = vec![
            (RequestKind::VideoChunk, 45.0f64.to_bits()),
            (RequestKind::CoursePage, 22.0f64.to_bits()),
        ];
        let exam: MixEntry = vec![
            (RequestKind::QuizFetch, 40.0f64.to_bits()),
            (RequestKind::QuizSubmit, 35.0f64.to_bits()),
        ];
        let m0 = t.intern_mix(teaching);
        let m1 = t.intern_mix(exam);
        for s in 0..3u64 {
            let base = 1_000_000_000 * (s + 1);
            t.streams.push(Stream {
                rates: (0..40)
                    .map(|i| RateSample {
                        t_ns: base + i * 60_000_000_000,
                        rate_bits: (0.5 + i as f64 * 1.75).to_bits(),
                    })
                    .collect(),
                mixes: vec![
                    MixSample {
                        t_ns: base,
                        mix: m0,
                    },
                    MixSample {
                        t_ns: base + 1_200_000_000_000,
                        mix: m1,
                    },
                ],
                slots: (0..40)
                    .map(|i| SlotSample {
                        t_ns: base + i * 60_000_000_000,
                        slot_ns: 60_000_000_000,
                        count: i * 17 % 400,
                    })
                    .collect(),
            });
        }
        t
    }

    #[test]
    fn round_trip_is_exact() {
        let t = trace();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn format_is_compact() {
        let t = trace();
        let bytes = to_bytes(&t);
        // A naive fixed-width encoding needs 16 B per rate sample and
        // 24 B per slot: 3 streams × 40 × (16 + 24) = 4 800 B before
        // tables. Delta-varint times keep this comfortably below that.
        assert!(
            bytes.len() < 4_000,
            "encoding should beat fixed-width (~4.8 kB), got {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let t = trace();
        let bytes = to_bytes(&t);
        assert_eq!(from_bytes(b"NOPE"), Err(TraceError::BadMagic));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(from_bytes(&wrong_version), Err(TraceError::BadVersion(99)));
        for cut in [3, 5, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            from_bytes(&trailing),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_unknown_kind_names() {
        let t = trace();
        let mut bytes = to_bytes(&t);
        // The first kind name follows magic+version+students+peak+table len.
        let name = RequestKind::VideoChunk.to_string();
        let pos = bytes
            .windows(name.len())
            .position(|w| w == name.as_bytes())
            .unwrap();
        bytes[pos..pos + name.len()].copy_from_slice(b"video-crunch"[..name.len()].as_ref());
        assert!(matches!(
            from_bytes(&bytes),
            Err(TraceError::UnknownKind(_))
        ));
    }

    #[test]
    fn corrupt_length_cannot_allocate_wildly() {
        // magic + version + students=1 + peak bits + kind count huge.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(1);
        bytes.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x0f]); // varint ~4G
        assert!(matches!(from_bytes(&bytes), Err(TraceError::Malformed(_))));
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let t = trace();
        let dir = std::env::temp_dir().join("elc-wltrace-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.elcw");
        write_file(&t, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), t);
        let missing = dir.join("does-not-exist.elcw");
        assert!(matches!(read_file(&missing), Err(TraceError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
