//! Property tests for the trace codec and morph combinators, driven by a
//! seed-derived case generator (the container has no crates.io access, so
//! this mirrors the in-file generator idiom of the workspace's
//! `tests/proptests.rs`): inputs are random but fully deterministic, and a
//! failing case reproduces from the property's fixed seed and case index.

use elc_elearn::request::RequestKind;
use elc_simcore::rng::SimRng;
use elc_simcore::time::SimDuration;
use elc_wltrace::codec;
use elc_wltrace::csvio;
use elc_wltrace::{MixEntry, MixSample, MorphSpec, RateSample, SlotSample, Stream, WorkloadTrace};

/// Runs `f` against `n` independently seeded generators.
fn cases(n: u64, seed: u64, mut f: impl FnMut(&mut SimRng)) {
    let root = SimRng::seed(seed).derive("wltrace-proptest");
    for i in 0..n {
        f(&mut root.derive_u64(i));
    }
}

/// A random but structurally valid trace: sorted sample times, in-range
/// mix indices, 1–4 streams.
fn arb_trace(rng: &mut SimRng) -> WorkloadTrace {
    let mut trace = WorkloadTrace::empty(
        rng.range_u64(1, 200_000) as u32,
        rng.range_f64(0.1, 50_000.0),
    );
    let n_mixes = rng.range_u64(1, 4);
    for _ in 0..n_mixes {
        let n_pairs = rng.range_u64(1, RequestKind::ALL.len() as u64) as usize;
        let mut pairs: MixEntry = Vec::new();
        for k in 0..n_pairs {
            pairs.push((RequestKind::ALL[k], rng.range_f64(0.01, 100.0).to_bits()));
        }
        trace.intern_mix(pairs);
    }
    let n_streams = rng.range_u64(1, 4);
    for _ in 0..n_streams {
        let mut stream = Stream::default();
        let mut t = rng.range_u64(0, 1 << 40);
        for _ in 0..rng.range_u64(0, 60) {
            t += rng.range_u64(1, 1 << 34);
            stream.rates.push(RateSample {
                t_ns: t,
                rate_bits: rng.range_f64(0.0, 10_000.0).to_bits(),
            });
        }
        let mut t = rng.range_u64(0, 1 << 40);
        for _ in 0..rng.range_u64(0, 10) {
            t += rng.range_u64(1, 1 << 34);
            stream.mixes.push(MixSample {
                t_ns: t,
                mix: rng.range_u64(0, trace.mixes.len() as u64 - 1) as u32,
            });
        }
        let mut t = rng.range_u64(0, 1 << 40);
        for _ in 0..rng.range_u64(0, 60) {
            t += rng.range_u64(1, 1 << 34);
            stream.slots.push(SlotSample {
                t_ns: t,
                slot_ns: rng.range_u64(1, 600_000_000_000),
                count: rng.range_u64(0, 1 << 20),
            });
        }
        trace.streams.push(stream);
    }
    assert_eq!(trace.validate(), Ok(()));
    trace
}

#[test]
fn binary_codec_round_trips_arbitrary_traces() {
    cases(64, 0x71AC_E001, |rng| {
        let trace = arb_trace(rng);
        let bytes = codec::to_bytes(&trace);
        let back = codec::from_bytes(&bytes).expect("encoded trace must decode");
        assert_eq!(back, trace, "binary round trip must be lossless");
    });
}

#[test]
fn binary_decoder_never_panics_on_corruption() {
    cases(48, 0x71AC_E002, |rng| {
        let trace = arb_trace(rng);
        let mut bytes = codec::to_bytes(&trace);
        // Flip a handful of bytes anywhere in the payload; decode must
        // return (Ok or Err), never panic or allocate absurdly.
        for _ in 0..8 {
            let i = rng.range_u64(0, bytes.len() as u64 - 1) as usize;
            bytes[i] ^= rng.range_u64(1, 255) as u8;
        }
        let _ = codec::from_bytes(&bytes);
    });
}

#[test]
fn stretch_then_scale_composes_and_preserves_counts() {
    cases(48, 0x71AC_E003, |rng| {
        let trace = arb_trace(rng);
        let stretch = rng.range_f64(0.25, 4.0);
        let scale = rng.range_f64(0.5, 64.0);
        let a = trace
            .time_stretch(stretch)
            .unwrap()
            .amplitude_scale(scale)
            .unwrap();
        let b = trace
            .amplitude_scale(scale)
            .unwrap()
            .time_stretch(stretch)
            .unwrap();
        // The two orders agree on structure: same stream shapes, same
        // instants, same counts.
        assert_eq!(a.streams.len(), b.streams.len());
        for (sa, sb) in a.streams.iter().zip(&b.streams) {
            assert_eq!(sa.slots.len(), sb.slots.len());
            for (x, y) in sa.slots.iter().zip(&sb.slots) {
                assert_eq!(x.t_ns, y.t_ns);
                assert_eq!(x.slot_ns, y.slot_ns);
                assert_eq!(x.count, y.count, "count scaling commutes with stretch");
            }
            for (x, y) in sa.rates.iter().zip(&sb.rates) {
                assert_eq!(x.t_ns, y.t_ns);
                let rx = f64::from_bits(x.rate_bits);
                let ry = f64::from_bits(y.rate_bits);
                assert!(
                    (rx - ry).abs() <= 1e-9 * rx.abs().max(1.0),
                    "rate scaling commutes up to rounding: {rx} vs {ry}"
                );
            }
        }
        // Stretch preserves every count outright.
        let stretched = trace.time_stretch(stretch).unwrap();
        let total = |t: &WorkloadTrace| -> u64 {
            t.streams
                .iter()
                .flat_map(|s| s.slots.iter())
                .map(|s| s.count)
                .sum()
        };
        assert_eq!(total(&stretched), total(&trace));
        // The morphed traces remain structurally valid.
        assert_eq!(a.validate(), Ok(()));
        assert_eq!(b.validate(), Ok(()));
    });
}

#[test]
fn clip_bounds_every_surviving_sample() {
    cases(48, 0x71AC_E004, |rng| {
        let trace = arb_trace(rng);
        let Some(start) = trace.start_ns() else {
            return;
        };
        let span = trace.end_ns().unwrap_or(start).saturating_sub(start);
        if span == 0 {
            return;
        }
        let from = rng.range_u64(0, span / 2);
        let to = rng.range_u64(from + 1, span + 1);
        let clipped = match trace.clip(SimDuration::from_nanos(from), SimDuration::from_nanos(to)) {
            Ok(c) => c,
            // An empty window is a legal outcome for sparse traces.
            Err(_) => return,
        };
        let lo = start + from;
        let hi = start + to;
        for stream in &clipped.streams {
            for r in &stream.rates {
                assert!(r.t_ns >= lo && r.t_ns < hi, "rate outside clip window");
            }
            for m in &stream.mixes {
                assert!(m.t_ns >= lo && m.t_ns < hi, "mix outside clip window");
            }
            for s in &stream.slots {
                assert!(s.t_ns >= lo && s.t_ns < hi, "slot outside clip window");
            }
        }
        assert_eq!(clipped.validate(), Ok(()));
        // Clipping never invents demand.
        let total = |t: &WorkloadTrace| -> u64 {
            t.streams
                .iter()
                .flat_map(|s| s.slots.iter())
                .map(|s| s.count)
                .sum()
        };
        assert!(total(&clipped) <= total(&trace));
    });
}

#[test]
fn morph_spec_round_trips_through_apply() {
    cases(32, 0x71AC_E005, |rng| {
        let trace = arb_trace(rng);
        let stretch = rng.range_f64(0.5, 2.0);
        let scale = rng.range_f64(1.0, 10.0);
        let spec = MorphSpec::parse(&format!("stretch={stretch},scale={scale}")).unwrap();
        let via_spec = spec.apply(&trace).unwrap();
        let by_hand = trace
            .time_stretch(stretch)
            .unwrap()
            .amplitude_scale(scale)
            .unwrap();
        assert_eq!(via_spec, by_hand, "spec application = manual pipeline");
    });
}

#[test]
fn csv_round_trips_single_stream_traces() {
    cases(24, 0x71AC_E006, |rng| {
        let mut trace = arb_trace(rng);
        // CSV re-interns mixes stream-major; restrict to one stream where
        // the round trip is exact.
        trace.streams.truncate(1);
        // Mix samples must reference interned entries actually used; the
        // CSV writer emits per-pair rows, so drop unused mix table slots
        // by re-interning through the writer/parser pair.
        let csv = csvio::to_csv(&trace);
        let back = csvio::from_csv(&csv).expect("exported csv must parse");
        assert_eq!(back.students, trace.students);
        assert_eq!(back.peak_rate_bits, trace.peak_rate_bits);
        assert_eq!(back.streams[0].rates, trace.streams[0].rates);
        assert_eq!(back.streams[0].slots, trace.streams[0].slots);
        // Mixes survive as the same (kind, weight) pairs in force.
        assert_eq!(back.streams[0].mixes.len(), trace.streams[0].mixes.len());
        for (a, b) in back.streams[0].mixes.iter().zip(&trace.streams[0].mixes) {
            assert_eq!(a.t_ns, b.t_ns);
            assert_eq!(
                back.mixes[a.mix as usize], trace.mixes[b.mix as usize],
                "mix pairs must survive the csv round trip"
            );
        }
    });
}
