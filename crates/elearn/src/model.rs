//! Core LMS entities: users, courses, enrollments.

use std::collections::BTreeMap;
use std::fmt;

use elc_simcore::define_id;
use elc_simcore::id::IdGen;

define_id!(
    /// Identifies a user of the LMS.
    pub struct UserId("user")
);

define_id!(
    /// Identifies a course.
    pub struct CourseId("course")
);

/// What a user is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Takes courses, submits work.
    Student,
    /// Authors content, grades.
    Instructor,
    /// Operates the platform.
    Admin,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Student => "student",
            Role::Instructor => "instructor",
            Role::Admin => "admin",
        };
        f.write_str(s)
    }
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    id: UserId,
    role: Role,
}

impl User {
    /// The user id.
    #[must_use]
    pub fn id(&self) -> UserId {
        self.id
    }

    /// The user's role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }
}

/// A course offering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Course {
    id: CourseId,
    name: String,
    instructor: UserId,
}

impl Course {
    /// The course id.
    #[must_use]
    pub fn id(&self) -> CourseId {
        self.id
    }

    /// The course name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructor of record.
    #[must_use]
    pub fn instructor(&self) -> UserId {
        self.instructor
    }
}

/// Error returned for operations on unknown or invalid entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmsError {
    /// The user id is not registered.
    UnknownUser(UserId),
    /// The course id is not registered.
    UnknownCourse(CourseId),
    /// The user's role does not permit the operation.
    RoleMismatch {
        /// Who attempted it.
        user: UserId,
        /// What was required.
        required: Role,
    },
    /// The student is already enrolled.
    AlreadyEnrolled {
        /// The student.
        user: UserId,
        /// The course.
        course: CourseId,
    },
}

impl fmt::Display for LmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmsError::UnknownUser(u) => write!(f, "unknown user {u}"),
            LmsError::UnknownCourse(c) => write!(f, "unknown course {c}"),
            LmsError::RoleMismatch { user, required } => {
                write!(f, "{user} lacks required role {required}")
            }
            LmsError::AlreadyEnrolled { user, course } => {
                write!(f, "{user} already enrolled in {course}")
            }
        }
    }
}

impl std::error::Error for LmsError {}

/// The learning-management system's registrar state.
///
/// # Examples
///
/// ```
/// use elc_elearn::model::{Lms, Role};
///
/// # fn main() -> Result<(), elc_elearn::model::LmsError> {
/// let mut lms = Lms::new();
/// let prof = lms.add_user(Role::Instructor);
/// let alice = lms.add_user(Role::Student);
/// let course = lms.add_course("Distributed Systems", prof)?;
/// lms.enroll(alice, course)?;
/// assert_eq!(lms.roster(course).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Lms {
    users: BTreeMap<UserId, User>,
    courses: BTreeMap<CourseId, Course>,
    /// course → enrolled students, insertion-ordered.
    enrollments: BTreeMap<CourseId, Vec<UserId>>,
    user_ids: IdGen<UserId>,
    course_ids: IdGen<CourseId>,
}

impl Lms {
    /// Creates an empty LMS.
    #[must_use]
    pub fn new() -> Self {
        Lms::default()
    }

    /// Registers a user.
    pub fn add_user(&mut self, role: Role) -> UserId {
        let id = self.user_ids.next_id();
        self.users.insert(id, User { id, role });
        id
    }

    /// Registers `n` students and returns their ids.
    pub fn add_students(&mut self, n: usize) -> Vec<UserId> {
        (0..n).map(|_| self.add_user(Role::Student)).collect()
    }

    /// Creates a course taught by `instructor`.
    ///
    /// # Errors
    ///
    /// Returns an error if the instructor is unknown or not an
    /// [`Role::Instructor`].
    pub fn add_course(
        &mut self,
        name: impl Into<String>,
        instructor: UserId,
    ) -> Result<CourseId, LmsError> {
        let user = self
            .users
            .get(&instructor)
            .ok_or(LmsError::UnknownUser(instructor))?;
        if user.role != Role::Instructor {
            return Err(LmsError::RoleMismatch {
                user: instructor,
                required: Role::Instructor,
            });
        }
        let id = self.course_ids.next_id();
        self.courses.insert(
            id,
            Course {
                id,
                name: name.into(),
                instructor,
            },
        );
        self.enrollments.insert(id, Vec::new());
        Ok(id)
    }

    /// Enrolls a student in a course.
    ///
    /// # Errors
    ///
    /// Returns an error if either id is unknown, the user is not a student,
    /// or the student is already enrolled.
    pub fn enroll(&mut self, student: UserId, course: CourseId) -> Result<(), LmsError> {
        let user = self
            .users
            .get(&student)
            .ok_or(LmsError::UnknownUser(student))?;
        if user.role != Role::Student {
            return Err(LmsError::RoleMismatch {
                user: student,
                required: Role::Student,
            });
        }
        let roster = self
            .enrollments
            .get_mut(&course)
            .ok_or(LmsError::UnknownCourse(course))?;
        if roster.contains(&student) {
            return Err(LmsError::AlreadyEnrolled {
                user: student,
                course,
            });
        }
        roster.push(student);
        Ok(())
    }

    /// Looks up a user.
    #[must_use]
    pub fn user(&self, id: UserId) -> Option<&User> {
        self.users.get(&id)
    }

    /// Looks up a course.
    #[must_use]
    pub fn course(&self, id: CourseId) -> Option<&Course> {
        self.courses.get(&id)
    }

    /// Enrolled students of a course (empty for unknown courses).
    #[must_use]
    pub fn roster(&self, course: CourseId) -> &[UserId] {
        self.enrollments.get(&course).map_or(&[], Vec::as_slice)
    }

    /// Total users.
    #[must_use]
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Users with a given role.
    #[must_use]
    pub fn count_by_role(&self, role: Role) -> usize {
        self.users.values().filter(|u| u.role == role).count()
    }

    /// Total courses.
    #[must_use]
    pub fn course_count(&self) -> usize {
        self.courses.len()
    }

    /// Iterates over course ids in creation order.
    pub fn course_ids(&self) -> impl Iterator<Item = CourseId> + '_ {
        self.courses.keys().copied()
    }

    /// Total enrollments across all courses.
    #[must_use]
    pub fn enrollment_count(&self) -> usize {
        self.enrollments.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lms_with_course() -> (Lms, UserId, CourseId) {
        let mut lms = Lms::new();
        let prof = lms.add_user(Role::Instructor);
        let course = lms.add_course("CS101", prof).unwrap();
        (lms, prof, course)
    }

    #[test]
    fn enroll_students() {
        let (mut lms, _, course) = lms_with_course();
        let students = lms.add_students(3);
        for &s in &students {
            lms.enroll(s, course).unwrap();
        }
        assert_eq!(lms.roster(course), students.as_slice());
        assert_eq!(lms.enrollment_count(), 3);
    }

    #[test]
    fn double_enrollment_rejected() {
        let (mut lms, _, course) = lms_with_course();
        let s = lms.add_user(Role::Student);
        lms.enroll(s, course).unwrap();
        let err = lms.enroll(s, course).unwrap_err();
        assert!(matches!(err, LmsError::AlreadyEnrolled { .. }));
    }

    #[test]
    fn only_students_enroll() {
        let (mut lms, prof, course) = lms_with_course();
        let err = lms.enroll(prof, course).unwrap_err();
        assert!(matches!(
            err,
            LmsError::RoleMismatch {
                required: Role::Student,
                ..
            }
        ));
    }

    #[test]
    fn only_instructors_teach() {
        let mut lms = Lms::new();
        let s = lms.add_user(Role::Student);
        let err = lms.add_course("X", s).unwrap_err();
        assert!(matches!(
            err,
            LmsError::RoleMismatch {
                required: Role::Instructor,
                ..
            }
        ));
    }

    #[test]
    fn unknown_ids_error() {
        let mut lms = Lms::new();
        assert!(matches!(
            lms.add_course("X", UserId::new(99)),
            Err(LmsError::UnknownUser(_))
        ));
        let s = lms.add_user(Role::Student);
        assert!(matches!(
            lms.enroll(s, CourseId::new(99)),
            Err(LmsError::UnknownCourse(_))
        ));
        assert!(matches!(
            lms.enroll(UserId::new(99), CourseId::new(0)),
            Err(LmsError::UnknownUser(_))
        ));
    }

    #[test]
    fn counts_by_role() {
        let (mut lms, _, _) = lms_with_course();
        lms.add_students(5);
        lms.add_user(Role::Admin);
        assert_eq!(lms.count_by_role(Role::Student), 5);
        assert_eq!(lms.count_by_role(Role::Instructor), 1);
        assert_eq!(lms.count_by_role(Role::Admin), 1);
        assert_eq!(lms.user_count(), 7);
    }

    #[test]
    fn course_lookup_and_accessors() {
        let (lms, prof, course) = lms_with_course();
        let c = lms.course(course).unwrap();
        assert_eq!(c.name(), "CS101");
        assert_eq!(c.instructor(), prof);
        assert_eq!(c.id(), course);
        assert_eq!(lms.user(prof).unwrap().role(), Role::Instructor);
        assert_eq!(lms.course_count(), 1);
        assert_eq!(lms.course_ids().collect::<Vec<_>>(), vec![course]);
    }

    #[test]
    fn roster_of_unknown_course_is_empty() {
        let lms = Lms::new();
        assert!(lms.roster(CourseId::new(7)).is_empty());
    }

    #[test]
    fn errors_display() {
        let e = LmsError::UnknownUser(UserId::new(1));
        assert!(e.to_string().contains("unknown user"));
        let e = LmsError::AlreadyEnrolled {
            user: UserId::new(1),
            course: CourseId::new(2),
        };
        assert!(e.to_string().contains("already enrolled"));
    }
}
