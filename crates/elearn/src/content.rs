//! Course content and digital assets.
//!
//! The paper singles out "digital assets (tests, exam questions, results)"
//! as the data whose confidentiality and survival matter (§III.6, §IV.B).
//! Every content item therefore carries a [`Sensitivity`], which the
//! security model in `elc-deploy` uses to weigh incidents, and a size, which
//! drives storage and transfer costs.

use elc_net::units::Bytes;
use elc_simcore::dist::{DistError, Distribution, LogNormal};
use elc_simcore::rng::SimRng;

use crate::model::CourseId;

/// What kind of material a content item is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentKind {
    /// Recorded lecture video — large, public to the course.
    LectureVideo,
    /// Slide deck or reading — small, public to the course.
    Document,
    /// Quiz/exam question bank — small, confidential.
    QuestionBank,
    /// Student submissions — medium, internal.
    Submission,
    /// Grades and transcripts — tiny, confidential.
    GradeRecord,
}

impl ContentKind {
    /// All kinds, for sweeps.
    pub const ALL: [ContentKind; 5] = [
        ContentKind::LectureVideo,
        ContentKind::Document,
        ContentKind::QuestionBank,
        ContentKind::Submission,
        ContentKind::GradeRecord,
    ];

    /// The confidentiality class of this kind.
    #[must_use]
    pub fn sensitivity(self) -> Sensitivity {
        match self {
            ContentKind::LectureVideo | ContentKind::Document => Sensitivity::CourseMembers,
            ContentKind::Submission => Sensitivity::Internal,
            ContentKind::QuestionBank | ContentKind::GradeRecord => Sensitivity::Confidential,
        }
    }

    /// A size distribution for this kind (heavy-tailed).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in parameters; the `Result` mirrors the
    /// distribution constructor.
    pub fn size_distribution(self) -> Result<LogNormal, DistError> {
        // (mean bytes, log-space sigma)
        let (mean, sigma) = match self {
            ContentKind::LectureVideo => (300.0 * 1024.0 * 1024.0, 0.6),
            ContentKind::Document => (2.0 * 1024.0 * 1024.0, 1.0),
            ContentKind::QuestionBank => (256.0 * 1024.0, 0.8),
            ContentKind::Submission => (4.0 * 1024.0 * 1024.0, 1.2),
            ContentKind::GradeRecord => (16.0 * 1024.0, 0.3),
        };
        LogNormal::with_mean(mean, sigma)
    }
}

impl std::fmt::Display for ContentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ContentKind::LectureVideo => "lecture-video",
            ContentKind::Document => "document",
            ContentKind::QuestionBank => "question-bank",
            ContentKind::Submission => "submission",
            ContentKind::GradeRecord => "grade-record",
        };
        f.write_str(s)
    }
}

/// Confidentiality classes, least to most sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sensitivity {
    /// Visible to enrolled users.
    CourseMembers,
    /// Visible to staff.
    Internal,
    /// Exam questions, results — the paper's critical assets.
    Confidential,
}

/// One item in the content repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentItem {
    kind: ContentKind,
    course: CourseId,
    size: Bytes,
}

impl ContentItem {
    /// Creates an item.
    #[must_use]
    pub fn new(kind: ContentKind, course: CourseId, size: Bytes) -> Self {
        ContentItem { kind, course, size }
    }

    /// The item kind.
    #[must_use]
    pub fn kind(&self) -> ContentKind {
        self.kind
    }

    /// The owning course.
    #[must_use]
    pub fn course(&self) -> CourseId {
        self.course
    }

    /// The item size.
    #[must_use]
    pub fn size(&self) -> Bytes {
        self.size
    }

    /// The item's confidentiality class.
    #[must_use]
    pub fn sensitivity(&self) -> Sensitivity {
        self.kind.sensitivity()
    }
}

/// The catalog of all content for an institution.
#[derive(Debug, Default)]
pub struct Catalog {
    items: Vec<ContentItem>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Generates a realistic catalog for a course: a semester's worth of
    /// lectures, documents, one question bank, and per-student grade
    /// records.
    pub fn populate_course(
        &mut self,
        rng: &mut SimRng,
        course: CourseId,
        weeks: u32,
        students: usize,
    ) {
        let mut add = |kind: ContentKind, rng: &mut SimRng| {
            let dist = kind.size_distribution().expect("built-in parameters");
            let size = Bytes::new(dist.sample(rng).max(1.0) as u64);
            self.items.push(ContentItem::new(kind, course, size));
        };
        for _ in 0..weeks {
            add(ContentKind::LectureVideo, rng);
            add(ContentKind::Document, rng);
            add(ContentKind::Document, rng);
        }
        add(ContentKind::QuestionBank, rng);
        for _ in 0..students {
            add(ContentKind::Submission, rng);
            add(ContentKind::GradeRecord, rng);
        }
    }

    /// All items.
    #[must_use]
    pub fn items(&self) -> &[ContentItem] {
        &self.items
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total stored bytes.
    #[must_use]
    pub fn total_bytes(&self) -> Bytes {
        self.items.iter().map(ContentItem::size).sum()
    }

    /// Bytes in items at or above a sensitivity class.
    #[must_use]
    pub fn bytes_at_least(&self, level: Sensitivity) -> Bytes {
        self.items
            .iter()
            .filter(|i| i.sensitivity() >= level)
            .map(ContentItem::size)
            .sum()
    }

    /// Items of one kind.
    #[must_use]
    pub fn count_of(&self, kind: ContentKind) -> usize {
        self.items.iter().filter(|i| i.kind() == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_mapping_matches_paper() {
        // The paper's critical assets: tests, exam questions, results.
        assert_eq!(
            ContentKind::QuestionBank.sensitivity(),
            Sensitivity::Confidential
        );
        assert_eq!(
            ContentKind::GradeRecord.sensitivity(),
            Sensitivity::Confidential
        );
        assert_eq!(
            ContentKind::LectureVideo.sensitivity(),
            Sensitivity::CourseMembers
        );
    }

    #[test]
    fn sensitivity_is_ordered() {
        assert!(Sensitivity::Confidential > Sensitivity::Internal);
        assert!(Sensitivity::Internal > Sensitivity::CourseMembers);
    }

    #[test]
    fn size_distributions_have_sane_means() {
        let mut rng = SimRng::seed(1);
        for kind in ContentKind::ALL {
            let dist = kind.size_distribution().unwrap();
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(mean > 0.0);
            // Video is by far the largest.
            if kind == ContentKind::LectureVideo {
                assert!(mean > 100.0 * 1024.0 * 1024.0);
            }
        }
    }

    #[test]
    fn populate_course_counts() {
        let mut cat = Catalog::new();
        let mut rng = SimRng::seed(2);
        cat.populate_course(&mut rng, CourseId::new(0), 14, 100);
        assert_eq!(cat.count_of(ContentKind::LectureVideo), 14);
        assert_eq!(cat.count_of(ContentKind::Document), 28);
        assert_eq!(cat.count_of(ContentKind::QuestionBank), 1);
        assert_eq!(cat.count_of(ContentKind::Submission), 100);
        assert_eq!(cat.count_of(ContentKind::GradeRecord), 100);
        assert_eq!(cat.len(), 14 + 28 + 1 + 200);
        assert!(!cat.is_empty());
    }

    #[test]
    fn confidential_bytes_are_a_small_fraction() {
        let mut cat = Catalog::new();
        let mut rng = SimRng::seed(3);
        cat.populate_course(&mut rng, CourseId::new(0), 14, 200);
        let total = cat.total_bytes().as_u64() as f64;
        let confidential = cat.bytes_at_least(Sensitivity::Confidential).as_u64() as f64;
        assert!(confidential > 0.0);
        assert!(
            confidential / total < 0.05,
            "confidential share {}",
            confidential / total
        );
    }

    #[test]
    fn deterministic_catalog() {
        let build = |seed| {
            let mut cat = Catalog::new();
            let mut rng = SimRng::seed(seed);
            cat.populate_course(&mut rng, CourseId::new(0), 4, 10);
            cat.total_bytes()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn item_accessors() {
        let item = ContentItem::new(ContentKind::Document, CourseId::new(3), Bytes::from_kib(10));
        assert_eq!(item.kind(), ContentKind::Document);
        assert_eq!(item.course(), CourseId::new(3));
        assert_eq!(item.size(), Bytes::from_kib(10));
        assert_eq!(item.sensitivity(), Sensitivity::CourseMembers);
    }

    #[test]
    fn kinds_display() {
        for kind in ContentKind::ALL {
            assert!(!kind.to_string().is_empty());
        }
    }
}
