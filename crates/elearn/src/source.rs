//! The demand-source abstraction behind every experiment.
//!
//! [`WorkloadSource`] is the trait through which deployment experiments see
//! demand: an offered rate curve, a phase-appropriate request mix, and
//! Poisson-or-replayed arrival samples. Two families implement it:
//!
//! * [`WorkloadModel`](crate::workload::WorkloadModel) — the synthetic
//!   generator combining the academic calendar, diurnal curve and cohort
//!   size,
//! * `TraceReplayer` (in `elc-wltrace`) — replays a recorded trace so the
//!   *same exact* request stream can drive several deployment models.
//!
//! The trait is object safe; experiments hold a `Box<dyn WorkloadSource>`
//! and cannot tell a generator from a replay. Determinism contract: given
//! the same `SimRng` state and the same call sequence, every implementation
//! must consume the same number of RNG draws for the same outcome, so that
//! shard/thread byte-identity is preserved (see DESIGN.md §4g).

use std::fmt;

use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::request::RequestMix;

/// A source of offered demand: rate curve, request mix and arrival samples.
///
/// Implementations must be deterministic: all randomness comes from the
/// caller-supplied [`SimRng`], never from ambient state, and two sources
/// built from the same inputs must answer every query identically.
pub trait WorkloadSource: fmt::Debug + Send + Sync {
    /// Enrolled students behind this demand stream (used for analytic
    /// fleet sizing; replayers report the recorded cohort).
    fn students(&self) -> u32;

    /// Offered request rate at instant `t`, in requests/second.
    fn rate_at(&self, t: SimTime) -> f64;

    /// The request mix appropriate at instant `t`.
    fn mix_at(&self, t: SimTime) -> RequestMix;

    /// Peak offered rate over the whole horizon (analytic for generators,
    /// recorded for replays). Deployments size fixed fleets from this.
    fn peak_rate(&self) -> f64;

    /// Samples the number of requests arriving in `[t, t + slot)`.
    ///
    /// Generators draw Poisson(`rate_at(t) × slot`) from `rng`; replayers
    /// return the recorded count without touching `rng` so the caller's
    /// stream stays aligned with the recording run.
    fn sample_arrivals(&self, rng: &mut SimRng, t: SimTime, slot: SimDuration) -> u64;

    /// Splits this source over `sites` campuses whose cohorts partition the
    /// total per [`split_cohort`](crate::workload::split_cohort); per-site
    /// rates sum to the whole. Sites are the shard key of
    /// `elc_simcore::shard`, so each returned source must be driven by its
    /// own RNG lineage.
    fn split(&self, sites: u32) -> Vec<Box<dyn WorkloadSource>>;

    /// Clones into a boxed trait object (`Box<dyn WorkloadSource>` is
    /// `Clone` through this).
    fn clone_source(&self) -> Box<dyn WorkloadSource>;

    /// Samples one slot's arrivals as sorted offsets from `t`, appended to
    /// `out` (cleared first, so callers reuse one buffer across slots).
    /// Conditioned on the count from [`sample_arrivals`], arrival instants
    /// are i.i.d. uniform over the slot — replayed counts are re-jittered
    /// through the caller's `rng` by the same rule, which is what keeps a
    /// replay byte-identical at any shard count.
    ///
    /// [`sample_arrivals`]: WorkloadSource::sample_arrivals
    fn sample_arrival_offsets(
        &self,
        rng: &mut SimRng,
        t: SimTime,
        slot: SimDuration,
        out: &mut Vec<SimDuration>,
    ) {
        let n = self.sample_arrivals(rng, t, slot);
        jitter_offsets(rng, n, t, slot, out);
    }

    /// Mean offered rate over `[from, to)`, sampled at `step` resolution
    /// and duration-weighted, so a trailing partial step counts only for
    /// the span it actually covers.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or the interval is empty.
    fn mean_rate(&self, from: SimTime, to: SimTime, step: SimDuration) -> f64 {
        assert!(!step.is_zero(), "step must be positive");
        assert!(to > from, "empty interval");
        let mut t = from;
        let mut weighted = 0.0;
        let mut total = 0.0;
        while t < to {
            let span = if to - t < step { to - t } else { step };
            let w = span.as_secs_f64();
            weighted += self.rate_at(t) * w;
            total += w;
            t += step;
        }
        weighted / total
    }
}

impl Clone for Box<dyn WorkloadSource> {
    fn clone(&self) -> Self {
        self.clone_source()
    }
}

/// Turns a sampled arrival count into sorted uniform offsets within the
/// slot, replacing `out`'s contents. Shared by the generator's inherent
/// path and the trait's default so both consume `rng` identically.
pub(crate) fn jitter_offsets(
    rng: &mut SimRng,
    n: u64,
    t: SimTime,
    slot: SimDuration,
    out: &mut Vec<SimDuration>,
) {
    out.clear();
    out.reserve(usize::try_from(n).unwrap_or(usize::MAX));
    let span = slot.as_secs_f64();
    for _ in 0..n {
        out.push(SimDuration::from_secs_f64(rng.range_f64(0.0, span)));
    }
    out.sort_unstable();
    if elc_trace::enabled(crate::TRACE_TARGET, Level::Debug) {
        elc_trace::instant(
            t.as_nanos(),
            crate::TRACE_TARGET,
            "arrivals",
            Level::Debug,
            &[
                Field::u64("count", n),
                Field::duration_ns("slot", slot.as_nanos()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::AcademicCalendar;
    use crate::workload::WorkloadModel;

    fn model() -> WorkloadModel {
        WorkloadModel::builder(10_000, AcademicCalendar::standard_semester(SimTime::ZERO))
            .build()
            .unwrap()
    }

    fn source() -> Box<dyn WorkloadSource> {
        Box::new(model())
    }

    fn at(week: u64, day: u64, hour: u64) -> SimTime {
        SimTime::from_secs(week * 7 * 86_400 + day * 86_400 + hour * 3_600)
    }

    #[test]
    fn boxed_source_answers_like_the_model() {
        let s = source();
        let m = model();
        let t = at(5, 2, 20);
        assert_eq!(s.rate_at(t).to_bits(), m.rate_at(t).to_bits());
        assert_eq!(s.peak_rate().to_bits(), m.peak_rate().to_bits());
        assert_eq!(s.students(), m.students());
        assert_eq!(s.mix_at(t), m.mix_at(t));
    }

    #[test]
    fn boxed_clone_preserves_answers() {
        let s = source();
        let c = s.clone();
        let t = at(15, 2, 12);
        assert_eq!(s.rate_at(t).to_bits(), c.rate_at(t).to_bits());
        assert_eq!(s.mix_at(t), c.mix_at(t));
    }

    #[test]
    fn trait_sampling_matches_inherent_sampling() {
        let s = source();
        let m = model();
        let t = at(5, 2, 20);
        let slot = SimDuration::from_secs(10);
        let mut a = SimRng::seed(11);
        let mut b = SimRng::seed(11);
        for _ in 0..20 {
            assert_eq!(
                s.sample_arrivals(&mut a, t, slot),
                m.sample_arrivals(&mut b, t, slot)
            );
        }
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        s.sample_arrival_offsets(&mut a, t, slot, &mut out_a);
        m.sample_arrival_offsets(&mut b, t, slot, &mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn trait_split_partitions_the_cohort() {
        let s = source();
        let parts = s.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.students()).sum::<u32>(), 10_000);
        let t = at(5, 2, 20);
        let sum: f64 = parts.iter().map(|p| p.rate_at(t)).sum();
        let whole = s.rate_at(t);
        assert!((sum - whole).abs() < 1e-9 * whole);
    }
}
