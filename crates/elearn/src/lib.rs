//! # elc-elearn — the e-learning system model
//!
//! Models the application whose deployment the paper debates: a Moodle-class
//! learning-management system plus the workload its users generate.
//!
//! * [`model`] — users, roles, courses, enrollments,
//! * [`content`] — course materials and the paper's critical "digital
//!   assets" with confidentiality classes,
//! * [`assessment`] — timed exams, submissions, gradebook,
//! * [`session`] — autosave, lost work on disconnect, device continuity,
//! * [`forum`] — discussion threads and interactivity metrics (§I's
//!   "interactivity and collaboration"),
//! * [`request`] — the LMS request taxonomy and phase-specific mixes,
//! * [`calendar`] — semester phases (registration, teaching, exams),
//! * [`workload`] — calendar- and diurnal-shaped offered load,
//! * [`source`] — the [`WorkloadSource`] trait experiments consume demand
//!   through (generator or trace replay),
//! * [`client`] — thin cloud client vs desktop install.
//!
//! # Examples
//!
//! ```
//! use elc_elearn::calendar::AcademicCalendar;
//! use elc_elearn::workload::WorkloadModel;
//! use elc_simcore::SimTime;
//!
//! let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
//! let load = WorkloadModel::builder(20_000, cal).build().unwrap();
//! // Exam-week evening traffic dwarfs a teaching-week night.
//! let exam_peak = load.rate_at(cal.exams_start() + elc_simcore::SimDuration::from_hours(20));
//! assert!(exam_peak > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trace target every `elc-elearn` event is recorded under.
pub(crate) const TRACE_TARGET: &str = "elearn";

pub mod assessment;
pub mod calendar;
pub mod client;
pub mod content;
pub mod forum;
pub mod model;
pub mod request;
pub mod session;
pub mod source;
pub mod workload;

pub use assessment::{Assessments, Exam, ExamId, Submission};
pub use calendar::{AcademicCalendar, Phase};
pub use client::{ClientKind, ClientModel};
pub use content::{Catalog, ContentItem, ContentKind, Sensitivity};
pub use forum::{Forum, Interactivity, Post, Thread, ThreadId};
pub use model::{Course, CourseId, Lms, LmsError, Role, User, UserId};
pub use request::{RequestKind, RequestLifecycle, RequestMix};
pub use session::{LossLedger, SessionPolicy, StateLocation, WorkSession};
pub use source::WorkloadSource;
pub use workload::{PhaseFactors, WorkloadError, WorkloadModel, WorkloadModelBuilder};
