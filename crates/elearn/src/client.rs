//! Client device models: thin cloud client vs desktop install.
//!
//! §III.1–2 of the paper claim the cloud client needs no "high-powered and
//! high-priced computer" and that cloud systems "boot and run faster because
//! they have fewer programs and processes loaded into device memory". The
//! two models here make those claims measurable: startup latency, page
//! actions, memory footprint and update behaviour.

use elc_net::link::Link;
use elc_net::units::Bytes;
use elc_simcore::rng::SimRng;
use elc_simcore::time::SimDuration;

use crate::request::RequestKind;

/// How the learner reaches the LMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// Browser hitting a cloud-hosted LMS.
    ThinCloud,
    /// Locally installed desktop application with a local content cache.
    DesktopInstall,
    /// Mobile browser/app on a cellular link (the paper's ref.\[5\]
    /// mobile-learning scenario).
    MobileBrowser,
}

impl std::fmt::Display for ClientKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ClientKind::ThinCloud => "thin-cloud",
            ClientKind::DesktopInstall => "desktop-install",
            ClientKind::MobileBrowser => "mobile-browser",
        };
        f.write_str(s)
    }
}

/// A parameterized client device model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientModel {
    kind: ClientKind,
    /// Local process start time (browser tab vs fat app cold start).
    local_start: SimDuration,
    /// Resident memory while running.
    memory: Bytes,
    /// One-time install/download size (zero for the thin client).
    install_size: Bytes,
    /// Fraction of page actions served from local cache without a network
    /// round trip.
    cache_hit: f64,
}

impl ClientModel {
    /// The thin cloud client: fast start, small footprint, no install,
    /// every action goes to the server.
    #[must_use]
    pub fn thin_cloud() -> Self {
        ClientModel {
            kind: ClientKind::ThinCloud,
            local_start: SimDuration::from_millis(1_200),
            memory: Bytes::from_mib(180),
            install_size: Bytes::ZERO,
            cache_hit: 0.10,
        }
    }

    /// The mobile browser: near-instant start, tiny footprint, a small
    /// offline cache for downloaded content.
    #[must_use]
    pub fn mobile_browser() -> Self {
        ClientModel {
            kind: ClientKind::MobileBrowser,
            local_start: SimDuration::from_millis(800),
            memory: Bytes::from_mib(90),
            install_size: Bytes::from_mib(15), // a small app, not a stack
            cache_hit: 0.25,
        }
    }

    /// The desktop install: slow cold start and a big install, but a local
    /// cache absorbs most reads.
    #[must_use]
    pub fn desktop_install() -> Self {
        ClientModel {
            kind: ClientKind::DesktopInstall,
            local_start: SimDuration::from_millis(9_000),
            memory: Bytes::from_mib(850),
            install_size: Bytes::from_mib(400),
            cache_hit: 0.70,
        }
    }

    /// Which model this is.
    #[must_use]
    pub fn kind(&self) -> ClientKind {
        self.kind
    }

    /// Resident memory while running.
    #[must_use]
    pub fn memory(&self) -> Bytes {
        self.memory
    }

    /// One-time install payload.
    #[must_use]
    pub fn install_size(&self) -> Bytes {
        self.install_size
    }

    /// Time until the learner sees a usable dashboard: local start plus the
    /// login exchange over `link`.
    pub fn startup_time(&self, link: &Link, rng: &mut SimRng) -> SimDuration {
        let login = link.sample_exchange(
            rng,
            RequestKind::Login.request_size(),
            RequestKind::Login.response_size(),
        );
        self.local_start + login
    }

    /// Time for one page action of `kind`. Cache hits skip the network.
    pub fn action_time(&self, kind: RequestKind, link: &Link, rng: &mut SimRng) -> SimDuration {
        // Writes always reach the server.
        if !kind.is_write() && rng.chance(self.cache_hit) {
            return SimDuration::from_millis(80); // local render only
        }
        let network = link.sample_exchange(rng, kind.request_size(), kind.response_size());
        SimDuration::from_millis(50) + network
    }

    /// One-time setup cost before first use: downloading and installing the
    /// app (zero for the thin client), at the link's bandwidth.
    #[must_use]
    pub fn install_time(&self, link: &Link) -> SimDuration {
        if self.install_size.is_zero() {
            SimDuration::ZERO
        } else {
            // Installation ≈ download + an equal local unpack/configure cost.
            link.transfer_time(self.install_size) * 2
        }
    }

    /// True if a machine with `available_memory` can run this client
    /// comfortably (the paper's "high-powered computer" requirement).
    #[must_use]
    pub fn runs_on(&self, available_memory: Bytes) -> bool {
        available_memory.as_u64() >= self.memory.as_u64() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elc_net::link::LinkProfile;

    fn metro() -> Link {
        Link::from_profile(LinkProfile::MetroInternet)
    }

    #[test]
    fn thin_client_starts_faster() {
        let link = metro();
        let mut rng = SimRng::seed(1);
        let thin: SimDuration = ClientModel::thin_cloud().startup_time(&link, &mut rng);
        let fat: SimDuration = ClientModel::desktop_install().startup_time(&link, &mut rng);
        assert!(thin < fat, "thin {thin} vs fat {fat}");
    }

    #[test]
    fn thin_client_needs_less_memory() {
        let thin = ClientModel::thin_cloud();
        let fat = ClientModel::desktop_install();
        assert!(thin.memory() < fat.memory());
        // A modest 1 GiB machine runs the thin client but not the fat one.
        let budget = Bytes::from_mib(1_024);
        assert!(thin.runs_on(budget));
        assert!(!fat.runs_on(budget));
    }

    #[test]
    fn thin_client_installs_instantly() {
        let link = metro();
        assert_eq!(
            ClientModel::thin_cloud().install_time(&link),
            SimDuration::ZERO
        );
        assert!(ClientModel::desktop_install().install_time(&link) > SimDuration::from_secs(30));
    }

    #[test]
    fn desktop_cache_makes_reads_faster_on_average() {
        let link = Link::from_profile(LinkProfile::RuralInternet);
        let mut rng = SimRng::seed(2);
        let mean = |model: &ClientModel, rng: &mut SimRng| {
            let n = 2_000;
            (0..n)
                .map(|_| {
                    model
                        .action_time(RequestKind::CoursePage, &link, rng)
                        .as_secs_f64()
                })
                .sum::<f64>()
                / n as f64
        };
        let thin = mean(&ClientModel::thin_cloud(), &mut rng);
        let fat = mean(&ClientModel::desktop_install(), &mut rng);
        assert!(fat < thin, "cached desktop reads {fat} vs thin {thin}");
    }

    #[test]
    fn writes_never_hit_cache() {
        let link = metro();
        let mut rng = SimRng::seed(3);
        let fat = ClientModel::desktop_install();
        // Minimum possible network exchange takes at least 2×latency.
        let floor = link.latency() * 2;
        for _ in 0..500 {
            let t = fat.action_time(RequestKind::QuizSubmit, &link, &mut rng);
            assert!(t >= floor, "write bypassed the network: {t}");
        }
    }

    #[test]
    fn mobile_is_lightest() {
        let mobile = ClientModel::mobile_browser();
        let thin = ClientModel::thin_cloud();
        assert!(mobile.memory() < thin.memory());
        assert!(mobile.runs_on(Bytes::from_mib(256)));
        let link = Link::from_profile(LinkProfile::Mobile3g);
        let mut rng = SimRng::seed(8);
        // Startup is dominated by the 3G exchange but still beats the
        // desktop cold start.
        let m = mobile.startup_time(&link, &mut rng);
        let d = ClientModel::desktop_install().startup_time(&link, &mut rng);
        assert!(m < d);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(ClientKind::ThinCloud.to_string(), "thin-cloud");
        assert_eq!(ClientKind::DesktopInstall.to_string(), "desktop-install");
        assert_eq!(ClientKind::MobileBrowser.to_string(), "mobile-browser");
        assert_eq!(ClientModel::thin_cloud().kind(), ClientKind::ThinCloud);
    }

    #[test]
    fn deterministic_given_seed() {
        let link = metro();
        let model = ClientModel::thin_cloud();
        let mut a = SimRng::seed(5);
        let mut b = SimRng::seed(5);
        for _ in 0..20 {
            assert_eq!(
                model.action_time(RequestKind::CoursePage, &link, &mut a),
                model.action_time(RequestKind::CoursePage, &link, &mut b)
            );
        }
    }
}
