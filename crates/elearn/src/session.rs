//! Learner work sessions: autosave, lost work, device continuity.
//!
//! Two of the paper's claims live here:
//!
//! * the network risk — "if a Cloud connection gets terminated during a
//!   session, users may lose time, work, or even unsaved data" (§III) —
//!   quantified by [`WorkSession::lost_work`];
//! * device independence — "change computers, and your existing applications
//!   and documents follow you through the cloud" (§III.5) — quantified by
//!   [`WorkSession::continuity_after_switch`].

use elc_simcore::time::{SimDuration, SimTime};

/// Where the authoritative copy of in-progress work lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateLocation {
    /// Server-side state, synced by autosave — the cloud model.
    Cloud,
    /// Device-local files, moved manually — the desktop model.
    Device,
}

/// Persistence policy of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPolicy {
    /// Where state lives.
    pub location: StateLocation,
    /// Interval between automatic saves; `None` means never (manual only).
    pub autosave: Option<SimDuration>,
}

impl SessionPolicy {
    /// Cloud LMS defaults: server state, 30-second autosave.
    #[must_use]
    pub fn cloud_default() -> Self {
        SessionPolicy {
            location: StateLocation::Cloud,
            autosave: Some(SimDuration::from_secs(30)),
        }
    }

    /// Desktop defaults: local state, no autosave to the server.
    #[must_use]
    pub fn desktop_default() -> Self {
        SessionPolicy {
            location: StateLocation::Device,
            autosave: None,
        }
    }
}

/// A continuous work session (answering a quiz, writing a submission).
///
/// Work accrues linearly with time; saves checkpoint it.
///
/// # Examples
///
/// ```
/// use elc_elearn::session::{SessionPolicy, WorkSession};
/// use elc_simcore::{SimDuration, SimTime};
///
/// let s = WorkSession::new(SimTime::ZERO, SessionPolicy::cloud_default());
/// // A drop 95 seconds in loses only the seconds since the last autosave.
/// let lost = s.lost_work(SimTime::from_secs(95));
/// assert_eq!(lost, SimDuration::from_secs(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkSession {
    started_at: SimTime,
    policy: SessionPolicy,
}

impl WorkSession {
    /// Starts a session at `started_at`.
    #[must_use]
    pub fn new(started_at: SimTime, policy: SessionPolicy) -> Self {
        WorkSession { started_at, policy }
    }

    /// When the session started.
    #[must_use]
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// The persistence policy.
    #[must_use]
    pub fn policy(&self) -> SessionPolicy {
        self.policy
    }

    /// Instant of the last save at or before `t`, if any save happened.
    #[must_use]
    pub fn last_save_before(&self, t: SimTime) -> Option<SimTime> {
        let interval = self.policy.autosave?;
        let elapsed = t.saturating_since(self.started_at);
        let periods = elapsed.as_nanos() / interval.as_nanos();
        if periods == 0 {
            None
        } else {
            Some(self.started_at + interval * periods)
        }
    }

    /// Work lost if the connection (or device) dies at `t`: the time since
    /// the last checkpoint — the whole session when nothing was ever saved.
    #[must_use]
    pub fn lost_work(&self, t: SimTime) -> SimDuration {
        match self.last_save_before(t) {
            Some(save) => t.saturating_since(save),
            None => t.saturating_since(self.started_at),
        }
    }

    /// Fraction of accumulated work available after switching devices at
    /// `t` (the paper's device-independence scenario).
    ///
    /// Cloud state: everything up to the last autosave follows the user.
    /// Device state: nothing does — the files sit on the old machine.
    #[must_use]
    pub fn continuity_after_switch(&self, t: SimTime) -> f64 {
        let total = t.saturating_since(self.started_at);
        if total.is_zero() {
            return 1.0;
        }
        match self.policy.location {
            StateLocation::Device => 0.0,
            StateLocation::Cloud => {
                let lost = self.lost_work(t);
                1.0 - lost.ratio(total)
            }
        }
    }
}

/// Aggregates lost-work outcomes over many sessions for reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LossLedger {
    sessions: u64,
    interrupted: u64,
    total_lost: SimDuration,
    unsaved_losses: u64,
}

impl LossLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        LossLedger::default()
    }

    /// Records a session that completed without interruption.
    pub fn record_clean(&mut self) {
        self.sessions += 1;
    }

    /// Records an interrupted session and what it lost.
    pub fn record_interrupted(&mut self, lost: SimDuration) {
        self.sessions += 1;
        self.interrupted += 1;
        self.total_lost += lost;
        if !lost.is_zero() {
            self.unsaved_losses += 1;
        }
    }

    /// Sessions recorded.
    #[must_use]
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Interrupted sessions.
    #[must_use]
    pub fn interrupted(&self) -> u64 {
        self.interrupted
    }

    /// Sessions that lost a nonzero amount of work.
    #[must_use]
    pub fn unsaved_losses(&self) -> u64 {
        self.unsaved_losses
    }

    /// Total lost work time.
    #[must_use]
    pub fn total_lost(&self) -> SimDuration {
        self.total_lost
    }

    /// Mean lost work per interrupted session.
    #[must_use]
    pub fn mean_loss(&self) -> SimDuration {
        if self.interrupted == 0 {
            SimDuration::ZERO
        } else {
            self.total_lost / self.interrupted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn autosave_checkpoints_periodically() {
        let s = WorkSession::new(secs(100), SessionPolicy::cloud_default());
        assert_eq!(s.last_save_before(secs(100)), None);
        assert_eq!(s.last_save_before(secs(129)), None);
        assert_eq!(s.last_save_before(secs(130)), Some(secs(130)));
        assert_eq!(s.last_save_before(secs(199)), Some(secs(190)));
    }

    #[test]
    fn lost_work_with_autosave_is_bounded() {
        let s = WorkSession::new(secs(0), SessionPolicy::cloud_default());
        for t in [1u64, 29, 30, 31, 59, 60, 3_599] {
            let lost = s.lost_work(secs(t));
            assert!(lost <= SimDuration::from_secs(30), "lost {lost} at t={t}");
        }
    }

    #[test]
    fn lost_work_without_autosave_is_everything() {
        let s = WorkSession::new(secs(0), SessionPolicy::desktop_default());
        assert_eq!(s.lost_work(secs(3_600)), SimDuration::from_hours(1));
    }

    #[test]
    fn lost_work_before_start_is_zero() {
        let s = WorkSession::new(secs(100), SessionPolicy::cloud_default());
        assert_eq!(s.lost_work(secs(50)), SimDuration::ZERO);
    }

    #[test]
    fn cloud_continuity_is_high() {
        let s = WorkSession::new(secs(0), SessionPolicy::cloud_default());
        let c = s.continuity_after_switch(secs(3_600));
        assert!(c >= 1.0 - 30.0 / 3_600.0 - 1e-9, "continuity {c}");
        assert!(c <= 1.0);
    }

    #[test]
    fn device_continuity_is_zero() {
        let s = WorkSession::new(secs(0), SessionPolicy::desktop_default());
        assert_eq!(s.continuity_after_switch(secs(3_600)), 0.0);
    }

    #[test]
    fn zero_length_session_has_full_continuity() {
        let s = WorkSession::new(secs(10), SessionPolicy::desktop_default());
        assert_eq!(s.continuity_after_switch(secs(10)), 1.0);
    }

    #[test]
    fn ledger_aggregates() {
        let mut l = LossLedger::new();
        l.record_clean();
        l.record_interrupted(SimDuration::from_secs(20));
        l.record_interrupted(SimDuration::from_secs(40));
        l.record_interrupted(SimDuration::ZERO); // dropped right after a save
        assert_eq!(l.sessions(), 4);
        assert_eq!(l.interrupted(), 3);
        assert_eq!(l.unsaved_losses(), 2);
        assert_eq!(l.total_lost(), SimDuration::from_secs(60));
        assert_eq!(l.mean_loss(), SimDuration::from_secs(20));
    }

    #[test]
    fn empty_ledger_mean_is_zero() {
        assert_eq!(LossLedger::new().mean_loss(), SimDuration::ZERO);
    }

    #[test]
    fn policies_expose_defaults() {
        let c = SessionPolicy::cloud_default();
        assert_eq!(c.location, StateLocation::Cloud);
        assert_eq!(c.autosave, Some(SimDuration::from_secs(30)));
        let d = SessionPolicy::desktop_default();
        assert_eq!(d.location, StateLocation::Device);
        assert_eq!(d.autosave, None);
    }
}
