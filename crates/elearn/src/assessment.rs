//! Exams, submissions and the gradebook.
//!
//! Assessments are the workload spike generator (everyone connects at the
//! scheduled instant) and the confidentiality crown jewels (the paper's
//! "tests, exam questions, results").

use std::collections::BTreeMap;
use std::fmt;

use elc_simcore::define_id;
use elc_simcore::id::IdGen;
use elc_simcore::time::{SimDuration, SimTime};

use crate::model::{CourseId, UserId};

define_id!(
    /// Identifies an exam.
    pub struct ExamId("exam")
);

/// A scheduled, timed exam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exam {
    id: ExamId,
    course: CourseId,
    opens_at: SimTime,
    duration: SimDuration,
    questions: u32,
}

impl Exam {
    /// The exam id.
    #[must_use]
    pub fn id(&self) -> ExamId {
        self.id
    }

    /// The owning course.
    #[must_use]
    pub fn course(&self) -> CourseId {
        self.course
    }

    /// When the exam window opens.
    #[must_use]
    pub fn opens_at(&self) -> SimTime {
        self.opens_at
    }

    /// Length of the exam window.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// When the window closes.
    #[must_use]
    pub fn closes_at(&self) -> SimTime {
        self.opens_at + self.duration
    }

    /// Number of questions.
    #[must_use]
    pub fn questions(&self) -> u32 {
        self.questions
    }

    /// True if a submission at `t` is within the window.
    #[must_use]
    pub fn accepts_at(&self, t: SimTime) -> bool {
        t >= self.opens_at && t <= self.closes_at()
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No such exam.
    UnknownExam(ExamId),
    /// The submission arrived outside the exam window.
    OutsideWindow {
        /// The exam.
        exam: ExamId,
        /// When the submission arrived.
        at: SimTime,
    },
    /// The student already has a graded submission.
    AlreadySubmitted {
        /// The exam.
        exam: ExamId,
        /// The student.
        student: UserId,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownExam(e) => write!(f, "unknown exam {e}"),
            SubmitError::OutsideWindow { exam, at } => {
                write!(f, "submission to {exam} at {at} is outside the window")
            }
            SubmitError::AlreadySubmitted { exam, student } => {
                write!(f, "{student} already submitted to {exam}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A graded submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Submission {
    /// Who submitted.
    pub student: UserId,
    /// When it landed.
    pub at: SimTime,
    /// Score in `[0, 100]`.
    pub score: f64,
    /// Questions answered before the deadline (partial submissions happen
    /// when an outage ate the session).
    pub answered: u32,
}

/// Exam registry plus gradebook.
#[derive(Debug, Default)]
pub struct Assessments {
    exams: BTreeMap<ExamId, Exam>,
    ids: IdGen<ExamId>,
    /// exam → student → submission.
    submissions: BTreeMap<ExamId, BTreeMap<UserId, Submission>>,
}

impl Assessments {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Assessments::default()
    }

    /// Schedules an exam.
    ///
    /// # Panics
    ///
    /// Panics if `questions` is zero or `duration` is zero.
    pub fn schedule(
        &mut self,
        course: CourseId,
        opens_at: SimTime,
        duration: SimDuration,
        questions: u32,
    ) -> ExamId {
        assert!(questions > 0, "an exam needs questions");
        assert!(!duration.is_zero(), "an exam needs a window");
        let id = self.ids.next_id();
        self.exams.insert(
            id,
            Exam {
                id,
                course,
                opens_at,
                duration,
                questions,
            },
        );
        self.submissions.insert(id, BTreeMap::new());
        id
    }

    /// Looks up an exam.
    #[must_use]
    pub fn exam(&self, id: ExamId) -> Option<&Exam> {
        self.exams.get(&id)
    }

    /// Exams whose window includes `t`.
    #[must_use]
    pub fn open_at(&self, t: SimTime) -> Vec<ExamId> {
        self.exams
            .values()
            .filter(|e| e.accepts_at(t))
            .map(Exam::id)
            .collect()
    }

    /// Records a submission.
    ///
    /// # Errors
    ///
    /// Rejects unknown exams, out-of-window submissions and duplicates.
    pub fn submit(
        &mut self,
        exam_id: ExamId,
        student: UserId,
        at: SimTime,
        score: f64,
        answered: u32,
    ) -> Result<(), SubmitError> {
        let exam = self
            .exams
            .get(&exam_id)
            .ok_or(SubmitError::UnknownExam(exam_id))?;
        if !exam.accepts_at(at) {
            return Err(SubmitError::OutsideWindow { exam: exam_id, at });
        }
        let book = self
            .submissions
            .get_mut(&exam_id)
            .expect("book created with exam");
        if book.contains_key(&student) {
            return Err(SubmitError::AlreadySubmitted {
                exam: exam_id,
                student,
            });
        }
        book.insert(
            student,
            Submission {
                student,
                at,
                score: score.clamp(0.0, 100.0),
                answered: answered.min(exam.questions),
            },
        );
        Ok(())
    }

    /// Submissions to an exam.
    #[must_use]
    pub fn submissions(&self, exam: ExamId) -> Vec<&Submission> {
        self.submissions
            .get(&exam)
            .map(|book| book.values().collect())
            .unwrap_or_default()
    }

    /// Mean score of an exam, `None` if nobody submitted.
    #[must_use]
    pub fn mean_score(&self, exam: ExamId) -> Option<f64> {
        let subs = self.submissions.get(&exam)?;
        if subs.is_empty() {
            return None;
        }
        Some(subs.values().map(|s| s.score).sum::<f64>() / subs.len() as f64)
    }

    /// Completion rate: submissions / expected, clamped to `[0, 1]`.
    #[must_use]
    pub fn completion_rate(&self, exam: ExamId, expected: usize) -> f64 {
        if expected == 0 {
            return 1.0;
        }
        let got = self.submissions.get(&exam).map_or(0, BTreeMap::len);
        (got as f64 / expected as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn setup() -> (Assessments, ExamId) {
        let mut a = Assessments::new();
        let exam = a.schedule(
            CourseId::new(0),
            secs(100),
            SimDuration::from_secs(3_600),
            20,
        );
        (a, exam)
    }

    #[test]
    fn window_semantics() {
        let (a, exam) = setup();
        let e = a.exam(exam).unwrap();
        assert!(!e.accepts_at(secs(99)));
        assert!(e.accepts_at(secs(100)));
        assert!(e.accepts_at(secs(3_700)));
        assert!(!e.accepts_at(secs(3_701)));
        assert_eq!(e.closes_at(), secs(3_700));
    }

    #[test]
    fn submit_within_window() {
        let (mut a, exam) = setup();
        a.submit(exam, UserId::new(1), secs(200), 85.0, 20).unwrap();
        assert_eq!(a.submissions(exam).len(), 1);
        assert_eq!(a.mean_score(exam), Some(85.0));
    }

    #[test]
    fn late_submission_rejected() {
        let (mut a, exam) = setup();
        let err = a
            .submit(exam, UserId::new(1), secs(4_000), 85.0, 20)
            .unwrap_err();
        assert!(matches!(err, SubmitError::OutsideWindow { .. }));
        assert!(err.to_string().contains("outside the window"));
    }

    #[test]
    fn duplicate_submission_rejected() {
        let (mut a, exam) = setup();
        a.submit(exam, UserId::new(1), secs(200), 50.0, 10).unwrap();
        let err = a
            .submit(exam, UserId::new(1), secs(300), 99.0, 20)
            .unwrap_err();
        assert!(matches!(err, SubmitError::AlreadySubmitted { .. }));
    }

    #[test]
    fn unknown_exam_rejected() {
        let mut a = Assessments::new();
        let err = a
            .submit(ExamId::new(9), UserId::new(1), secs(0), 0.0, 0)
            .unwrap_err();
        assert!(matches!(err, SubmitError::UnknownExam(_)));
    }

    #[test]
    fn score_and_answers_clamped() {
        let (mut a, exam) = setup();
        a.submit(exam, UserId::new(1), secs(200), 150.0, 99)
            .unwrap();
        let sub = a.submissions(exam)[0];
        assert_eq!(sub.score, 100.0);
        assert_eq!(sub.answered, 20);
    }

    #[test]
    fn mean_score_averages() {
        let (mut a, exam) = setup();
        a.submit(exam, UserId::new(1), secs(200), 80.0, 20).unwrap();
        a.submit(exam, UserId::new(2), secs(200), 60.0, 20).unwrap();
        assert_eq!(a.mean_score(exam), Some(70.0));
    }

    #[test]
    fn mean_score_none_when_empty() {
        let (a, exam) = setup();
        assert_eq!(a.mean_score(exam), None);
        assert_eq!(a.mean_score(ExamId::new(77)), None);
    }

    #[test]
    fn completion_rate() {
        let (mut a, exam) = setup();
        for i in 0..30 {
            a.submit(exam, UserId::new(i), secs(200), 70.0, 20).unwrap();
        }
        assert!((a.completion_rate(exam, 40) - 0.75).abs() < 1e-12);
        assert_eq!(a.completion_rate(exam, 0), 1.0);
    }

    #[test]
    fn open_at_filters() {
        let mut a = Assessments::new();
        let e1 = a.schedule(CourseId::new(0), secs(0), SimDuration::from_secs(100), 5);
        let e2 = a.schedule(CourseId::new(1), secs(500), SimDuration::from_secs(100), 5);
        assert_eq!(a.open_at(secs(50)), vec![e1]);
        assert_eq!(a.open_at(secs(550)), vec![e2]);
        assert!(a.open_at(secs(300)).is_empty());
    }

    #[test]
    #[should_panic(expected = "needs questions")]
    fn zero_question_exam_rejected() {
        let mut a = Assessments::new();
        a.schedule(CourseId::new(0), secs(0), SimDuration::from_secs(1), 0);
    }
}
