//! Course discussion forums — the paper's collaboration axis.
//!
//! §I: "Interactivity and collaboration are major points of this new
//! technology." The forum is where that claim becomes workload and
//! measurement: threads and replies generate read/write traffic
//! (see [`crate::request::RequestKind::ForumRead`] /
//! [`RequestKind::ForumPost`](crate::request::RequestKind::ForumPost)),
//! and the reply-latency and participation statistics quantify how
//! "interactive" a course actually is.

use std::collections::{BTreeMap, BTreeSet};

use elc_simcore::define_id;
use elc_simcore::dist::{Distribution, Exp, Poisson};
use elc_simcore::id::IdGen;
use elc_simcore::metrics::Summary;
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

use crate::model::{CourseId, UserId};

define_id!(
    /// Identifies a discussion thread.
    pub struct ThreadId("thread")
);

/// One post in a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Post {
    /// Who wrote it.
    pub author: UserId,
    /// When it was posted.
    pub at: SimTime,
}

/// A discussion thread: an opening post plus replies, in time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread {
    id: ThreadId,
    course: CourseId,
    posts: Vec<Post>,
}

impl Thread {
    /// The thread id.
    #[must_use]
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The owning course.
    #[must_use]
    pub fn course(&self) -> CourseId {
        self.course
    }

    /// All posts, opening post first.
    #[must_use]
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Number of replies (posts beyond the opener).
    #[must_use]
    pub fn reply_count(&self) -> usize {
        self.posts.len().saturating_sub(1)
    }

    /// Time from the opening post to the first reply, if any.
    #[must_use]
    pub fn first_response_latency(&self) -> Option<SimDuration> {
        let first = self.posts.first()?;
        let second = self.posts.get(1)?;
        Some(second.at.saturating_since(first.at))
    }
}

/// The discussion state of one course.
///
/// # Examples
///
/// ```
/// use elc_elearn::forum::Forum;
/// use elc_elearn::model::{CourseId, UserId};
/// use elc_simcore::SimTime;
///
/// let mut forum = Forum::new(CourseId::new(0));
/// let t = forum.start_thread(UserId::new(1), SimTime::ZERO);
/// forum.reply(t, UserId::new(2), SimTime::from_secs(600)).unwrap();
/// assert_eq!(forum.thread(t).unwrap().reply_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Forum {
    course: CourseId,
    threads: BTreeMap<ThreadId, Thread>,
    ids: IdGen<ThreadId>,
}

/// Error returned when replying to a thread that does not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownThread(pub ThreadId);

impl std::fmt::Display for UnknownThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown thread {}", self.0)
    }
}

impl std::error::Error for UnknownThread {}

impl Forum {
    /// Creates an empty forum for a course.
    #[must_use]
    pub fn new(course: CourseId) -> Self {
        Forum {
            course,
            threads: BTreeMap::new(),
            ids: IdGen::new(),
        }
    }

    /// The owning course.
    #[must_use]
    pub fn course(&self) -> CourseId {
        self.course
    }

    /// Starts a thread with its opening post.
    pub fn start_thread(&mut self, author: UserId, at: SimTime) -> ThreadId {
        let id = self.ids.next_id();
        self.threads.insert(
            id,
            Thread {
                id,
                course: self.course,
                posts: vec![Post { author, at }],
            },
        );
        id
    }

    /// Appends a reply.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownThread`] for foreign ids.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the thread's latest post (posts are
    /// time-ordered; the caller drives the clock).
    pub fn reply(
        &mut self,
        thread: ThreadId,
        author: UserId,
        at: SimTime,
    ) -> Result<(), UnknownThread> {
        let t = self.threads.get_mut(&thread).ok_or(UnknownThread(thread))?;
        let last = t.posts.last().expect("threads always have an opener");
        assert!(at >= last.at, "posts must be appended in time order");
        t.posts.push(Post { author, at });
        Ok(())
    }

    /// Looks up a thread.
    #[must_use]
    pub fn thread(&self, id: ThreadId) -> Option<&Thread> {
        self.threads.get(&id)
    }

    /// Iterates over all threads.
    pub fn threads(&self) -> impl Iterator<Item = &Thread> {
        self.threads.values()
    }

    /// Number of threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total posts across all threads.
    #[must_use]
    pub fn post_count(&self) -> usize {
        self.threads.values().map(|t| t.posts.len()).sum()
    }

    /// Interactivity statistics for this forum.
    #[must_use]
    pub fn interactivity(&self, roster_size: usize) -> Interactivity {
        let mut first_response = Summary::new();
        let mut replies = Summary::new();
        let mut participants: BTreeSet<UserId> = BTreeSet::new();
        let mut unanswered = 0u32;
        for t in self.threads.values() {
            match t.first_response_latency() {
                Some(d) => first_response.record(d.as_secs_f64()),
                None => unanswered += 1,
            }
            replies.record(t.reply_count() as f64);
            for p in &t.posts {
                participants.insert(p.author);
            }
        }
        Interactivity {
            threads: self.threads.len() as u32,
            unanswered_threads: unanswered,
            mean_first_response: SimDuration::from_secs_f64(first_response.mean().max(0.0)),
            mean_replies: replies.mean(),
            participation: if roster_size == 0 {
                0.0
            } else {
                (participants.len() as f64 / roster_size as f64).min(1.0)
            },
        }
    }

    /// Simulates a term of forum activity for a course roster.
    ///
    /// Threads open at `threads_per_week` (Poisson per week); each thread
    /// draws its reply count from a Poisson around `mean_replies`, replies
    /// arriving with exponential gaps (mean 4 hours). Authors are drawn
    /// uniformly from the roster.
    pub fn simulate_term(
        &mut self,
        rng: &mut SimRng,
        roster: &[UserId],
        weeks: u32,
        threads_per_week: f64,
        mean_replies: f64,
    ) {
        assert!(!roster.is_empty(), "need a roster to simulate a forum");
        let per_week = Poisson::new(threads_per_week).expect("finite rate");
        let replies_dist = Poisson::new(mean_replies).expect("finite rate");
        let gap = Exp::new(1.0 / (4.0 * 3_600.0)).expect("positive rate");
        for week in 0..weeks {
            let week_start = SimTime::from_secs(u64::from(week) * 7 * 86_400);
            let n_threads = per_week.sample(rng);
            for _ in 0..n_threads {
                let opened = week_start + SimDuration::from_secs(rng.next_below(7 * 86_400));
                let author = *rng.pick(roster).expect("roster non-empty");
                let thread = self.start_thread(author, opened);
                let mut at = opened;
                for _ in 0..replies_dist.sample(rng) {
                    at += SimDuration::from_secs_f64(gap.sample(rng));
                    let replier = *rng.pick(roster).expect("roster non-empty");
                    self.reply(thread, replier, at).expect("thread exists");
                }
            }
        }
    }
}

/// Summary of how interactive a course forum is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interactivity {
    /// Threads opened.
    pub threads: u32,
    /// Threads that never got a reply.
    pub unanswered_threads: u32,
    /// Mean time to the first reply (answered threads only).
    pub mean_first_response: SimDuration,
    /// Mean replies per thread.
    pub mean_replies: f64,
    /// Fraction of the roster that posted at least once.
    pub participation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(n: u64) -> Vec<UserId> {
        (0..n).map(UserId::new).collect()
    }

    #[test]
    fn thread_lifecycle() {
        let mut f = Forum::new(CourseId::new(0));
        let t = f.start_thread(UserId::new(1), SimTime::ZERO);
        assert_eq!(f.thread_count(), 1);
        assert_eq!(f.post_count(), 1);
        f.reply(t, UserId::new(2), SimTime::from_secs(100)).unwrap();
        f.reply(t, UserId::new(3), SimTime::from_secs(200)).unwrap();
        let thread = f.thread(t).unwrap();
        assert_eq!(thread.reply_count(), 2);
        assert_eq!(
            thread.first_response_latency(),
            Some(SimDuration::from_secs(100))
        );
        assert_eq!(thread.course(), CourseId::new(0));
    }

    #[test]
    fn unknown_thread_rejected() {
        let mut f = Forum::new(CourseId::new(0));
        let err = f
            .reply(ThreadId::new(9), UserId::new(1), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, UnknownThread(ThreadId::new(9)));
        assert!(err.to_string().contains("unknown thread"));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_reply_panics() {
        let mut f = Forum::new(CourseId::new(0));
        let t = f.start_thread(UserId::new(1), SimTime::from_secs(100));
        let _ = f.reply(t, UserId::new(2), SimTime::from_secs(50));
    }

    #[test]
    fn unanswered_thread_has_no_latency() {
        let mut f = Forum::new(CourseId::new(0));
        let t = f.start_thread(UserId::new(1), SimTime::ZERO);
        assert_eq!(f.thread(t).unwrap().first_response_latency(), None);
    }

    #[test]
    fn interactivity_statistics() {
        let mut f = Forum::new(CourseId::new(0));
        let a = f.start_thread(UserId::new(1), SimTime::ZERO);
        f.reply(a, UserId::new(2), SimTime::from_secs(600)).unwrap();
        f.start_thread(UserId::new(3), SimTime::from_secs(50)); // unanswered
        let stats = f.interactivity(10);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.unanswered_threads, 1);
        assert_eq!(stats.mean_first_response, SimDuration::from_secs(600));
        assert!((stats.mean_replies - 0.5).abs() < 1e-12);
        assert!((stats.participation - 0.3).abs() < 1e-12); // 3 of 10
    }

    #[test]
    fn participation_handles_empty_roster() {
        let f = Forum::new(CourseId::new(0));
        assert_eq!(f.interactivity(0).participation, 0.0);
    }

    #[test]
    fn simulated_term_is_plausible() {
        let mut f = Forum::new(CourseId::new(0));
        let roster = users(120);
        let mut rng = SimRng::seed(5);
        f.simulate_term(&mut rng, &roster, 14, 6.0, 4.0);
        // ~84 threads, ~4 replies each.
        assert!(
            (50..130).contains(&f.thread_count()),
            "{}",
            f.thread_count()
        );
        let stats = f.interactivity(roster.len());
        assert!(stats.mean_replies > 2.0 && stats.mean_replies < 6.0);
        assert!(
            stats.participation > 0.5,
            "participation {}",
            stats.participation
        );
        // Replies arrive with ~4h mean gaps.
        assert!(stats.mean_first_response > SimDuration::from_mins(30));
        assert!(stats.mean_first_response < SimDuration::from_hours(24));
    }

    #[test]
    fn simulation_is_deterministic() {
        let roster = users(30);
        let run = |seed| {
            let mut f = Forum::new(CourseId::new(0));
            let mut rng = SimRng::seed(seed);
            f.simulate_term(&mut rng, &roster, 4, 3.0, 2.0);
            (f.thread_count(), f.post_count())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "need a roster")]
    fn empty_roster_rejected() {
        let mut f = Forum::new(CourseId::new(0));
        let mut rng = SimRng::seed(1);
        f.simulate_term(&mut rng, &[], 1, 1.0, 1.0);
    }
}
