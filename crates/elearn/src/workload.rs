//! Institution-level workload generation.
//!
//! Combines the calendar phase, a diurnal curve and the student population
//! into an offered request rate, and samples Poisson arrivals per time slot.
//! This is the demand signal the deployment models must serve in E12
//! (elasticity) and the usage input for E1 (cost).

use std::fmt;

use elc_simcore::dist::{Distribution, Poisson};
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

use crate::calendar::{AcademicCalendar, Phase};
use crate::request::RequestMix;
use crate::source::WorkloadSource;

/// Hour-of-day activity multipliers (0 = midnight). Peak at 20:00 — evening
/// study — with a secondary mid-day plateau; near-quiet at 04:00.
const DIURNAL: [f64; 24] = [
    0.25, 0.15, 0.08, 0.05, 0.05, 0.08, 0.15, 0.35, 0.60, 0.80, 0.90, 0.95, 0.90, 0.85, 0.85, 0.90,
    0.95, 1.00, 1.10, 1.25, 1.30, 1.10, 0.75, 0.45,
];

/// Workload parameters for one institution.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    students: u32,
    peak_rps_per_kstudent: f64,
    calendar: AcademicCalendar,
    weekend_factor: f64,
    phase_factors: PhaseFactors,
}

/// Traffic multipliers per calendar phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFactors {
    /// Multiplier during breaks.
    pub break_f: f64,
    /// Multiplier during registration (burst of short sessions).
    pub registration: f64,
    /// Multiplier during teaching weeks (baseline 1.0).
    pub teaching: f64,
    /// Multiplier during exams — the paper-motivating surge.
    pub exams: f64,
}

impl Default for PhaseFactors {
    fn default() -> Self {
        PhaseFactors {
            break_f: 0.08,
            registration: 2.5,
            teaching: 1.0,
            exams: 4.0,
        }
    }
}

/// Why a [`WorkloadModelBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadError {
    /// `students` was zero.
    NoStudents,
    /// `peak_rps_per_kstudent` was not a positive finite number.
    BadRate(f64),
    /// A multiplier (weekend or phase factor) was negative or non-finite.
    BadFactor {
        /// Which knob was out of range.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoStudents => write!(f, "need at least one student"),
            WorkloadError::BadRate(r) => {
                write!(
                    f,
                    "peak rps per kstudent must be positive and finite, got {r}"
                )
            }
            WorkloadError::BadFactor { name, value } => {
                write!(
                    f,
                    "{name} factor must be non-negative and finite, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Validating builder for [`WorkloadModel`], following the
/// `Scenario::builder` convention: knobs default to the calibrated
/// standard, `build` checks every invariant and returns a
/// [`WorkloadError`] instead of panicking.
///
/// # Examples
///
/// ```
/// use elc_elearn::calendar::AcademicCalendar;
/// use elc_elearn::workload::WorkloadModel;
/// use elc_simcore::SimTime;
///
/// let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
/// let load = WorkloadModel::builder(5_000, cal)
///     .peak_rps_per_kstudent(35.0)
///     .build()
///     .unwrap();
/// assert_eq!(load.students(), 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadModelBuilder {
    students: u32,
    peak_rps_per_kstudent: f64,
    calendar: AcademicCalendar,
    weekend_factor: f64,
    phase_factors: PhaseFactors,
}

impl WorkloadModelBuilder {
    /// The request rate per 1000 enrolled students at the diurnal peak of
    /// an ordinary teaching day (default 20.0).
    #[must_use]
    pub fn peak_rps_per_kstudent(mut self, rate: f64) -> Self {
        self.peak_rps_per_kstudent = rate;
        self
    }

    /// Weekend activity multiplier (default 0.45).
    #[must_use]
    pub fn weekend_factor(mut self, factor: f64) -> Self {
        self.weekend_factor = factor;
        self
    }

    /// Traffic multipliers per calendar phase.
    #[must_use]
    pub fn phase_factors(mut self, factors: PhaseFactors) -> Self {
        self.phase_factors = factors;
        self
    }

    /// Validates every knob and builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the population is empty, the rate is
    /// not positive and finite, or any multiplier is negative/non-finite.
    pub fn build(self) -> Result<WorkloadModel, WorkloadError> {
        if self.students == 0 {
            return Err(WorkloadError::NoStudents);
        }
        if !self.peak_rps_per_kstudent.is_finite() || self.peak_rps_per_kstudent <= 0.0 {
            return Err(WorkloadError::BadRate(self.peak_rps_per_kstudent));
        }
        let factors = [
            ("weekend", self.weekend_factor),
            ("break", self.phase_factors.break_f),
            ("registration", self.phase_factors.registration),
            ("teaching", self.phase_factors.teaching),
            ("exams", self.phase_factors.exams),
        ];
        for (name, value) in factors {
            if !value.is_finite() || value < 0.0 {
                return Err(WorkloadError::BadFactor { name, value });
            }
        }
        Ok(WorkloadModel {
            students: self.students,
            peak_rps_per_kstudent: self.peak_rps_per_kstudent,
            calendar: self.calendar,
            weekend_factor: self.weekend_factor,
            phase_factors: self.phase_factors,
        })
    }
}

impl WorkloadModel {
    /// Starts a validating builder with the calibrated defaults (20 rps
    /// per 1000 students, standard weekend and phase factors).
    #[must_use]
    pub fn builder(students: u32, calendar: AcademicCalendar) -> WorkloadModelBuilder {
        WorkloadModelBuilder {
            students,
            peak_rps_per_kstudent: 20.0,
            calendar,
            weekend_factor: 0.45,
            phase_factors: PhaseFactors::default(),
        }
    }

    /// A calibrated default: 20 rps per 1000 students at a teaching-day
    /// peak. LMS "requests" here are heavyweight (a 2 MiB video chunk is
    /// ~10 s of playback), so this corresponds to roughly 15–20% of
    /// students active at peak, each taking an action every 8–10 s —
    /// and to an annual content volume in the tens of TiB per 1000
    /// students, consistent with video-centric course delivery.
    ///
    /// # Panics
    ///
    /// Panics if `students` is zero.
    #[deprecated(
        since = "0.9.0",
        note = "use WorkloadModel::builder(students, cal).build() and handle WorkloadError"
    )]
    #[must_use]
    pub fn standard(students: u32, calendar: AcademicCalendar) -> Self {
        WorkloadModel::builder(students, calendar)
            .build()
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Enrolled students.
    #[must_use]
    pub fn students(&self) -> u32 {
        self.students
    }

    /// Partitions this institution's cohort onto `sites` campuses for a
    /// sharded run: one model per site, identical rate parameters, with
    /// the enrolment split by [`split_cohort`]. Sites are the shard key
    /// of `elc_simcore::shard`, so each site model must be simulated
    /// with its own RNG lineage (`root.derive("shard").derive_u64(i)`)
    /// to keep draws independent of the site-to-shard partition.
    ///
    /// # Panics
    ///
    /// Panics when `sites` is zero or exceeds the student count (an
    /// empty site would violate `WorkloadModel`'s students > 0).
    #[must_use]
    pub fn split(&self, sites: u32) -> Vec<WorkloadModel> {
        split_cohort(self.students, sites)
            .into_iter()
            .map(|share| WorkloadModel {
                students: share,
                ..self.clone()
            })
            .collect()
    }

    /// The calendar driving phase multipliers.
    #[must_use]
    pub fn calendar(&self) -> &AcademicCalendar {
        &self.calendar
    }

    /// Offered request rate at instant `t`, in requests/second.
    #[must_use]
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let phase = self.calendar.phase_at(t);
        let phase_f = match phase {
            Phase::Break => self.phase_factors.break_f,
            Phase::Registration => self.phase_factors.registration,
            Phase::Teaching => self.phase_factors.teaching,
            Phase::Exams => self.phase_factors.exams,
        };
        let diurnal = DIURNAL[self.calendar.hour_of_day(t) as usize];
        let weekend = if self.calendar.is_weekend(t) {
            self.weekend_factor
        } else {
            1.0
        };
        self.students as f64 / 1_000.0 * self.peak_rps_per_kstudent * phase_f * diurnal * weekend
    }

    /// The request mix appropriate for the phase at `t`.
    #[must_use]
    pub fn mix_at(&self, t: SimTime) -> RequestMix {
        match self.calendar.phase_at(t) {
            Phase::Exams => RequestMix::exam(),
            _ => RequestMix::teaching(),
        }
    }

    /// Peak offered rate across a whole term (analytic: peak diurnal ×
    /// exams factor × population).
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        let peak_diurnal = DIURNAL.iter().cloned().fold(0.0, f64::max);
        self.students as f64 / 1_000.0
            * self.peak_rps_per_kstudent
            * self.phase_factors.exams
            * peak_diurnal
    }

    /// Mean offered rate over `[from, to)`, sampled at `step` resolution.
    ///
    /// Duration-weighted: when `(to - from)` is not a multiple of `step`,
    /// the trailing partial step contributes only the span it actually
    /// covers, not a full step's weight.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or the interval is empty.
    #[must_use]
    pub fn mean_rate(&self, from: SimTime, to: SimTime, step: SimDuration) -> f64 {
        assert!(!step.is_zero(), "step must be positive");
        assert!(to > from, "empty interval");
        let mut t = from;
        let mut weighted = 0.0;
        let mut total = 0.0;
        while t < to {
            let span = if to - t < step { to - t } else { step };
            let w = span.as_secs_f64();
            weighted += self.rate_at(t) * w;
            total += w;
            t += step;
        }
        weighted / total
    }

    /// Samples the number of requests arriving in the slot `[t, t + slot)`.
    pub fn sample_arrivals(&self, rng: &mut SimRng, t: SimTime, slot: SimDuration) -> u64 {
        let lambda = self.rate_at(t) * slot.as_secs_f64();
        Poisson::new(lambda.max(0.0))
            .expect("rate is finite and non-negative")
            .sample(rng)
    }

    /// Samples one slot's arrivals as sorted offsets from `t`, appended to
    /// `out` (which is cleared first, so callers can reuse one buffer
    /// across slots). Conditioned on the Poisson count, arrival instants
    /// are i.i.d. uniform over the slot; the sorted offsets feed
    /// `Simulation::schedule_batch` directly, which bulk-inserts them into
    /// the event arena.
    pub fn sample_arrival_offsets(
        &self,
        rng: &mut SimRng,
        t: SimTime,
        slot: SimDuration,
        out: &mut Vec<SimDuration>,
    ) {
        let n = self.sample_arrivals(rng, t, slot);
        crate::source::jitter_offsets(rng, n, t, slot, out);
    }
}

impl WorkloadSource for WorkloadModel {
    fn students(&self) -> u32 {
        WorkloadModel::students(self)
    }

    fn rate_at(&self, t: SimTime) -> f64 {
        WorkloadModel::rate_at(self, t)
    }

    fn mix_at(&self, t: SimTime) -> RequestMix {
        WorkloadModel::mix_at(self, t)
    }

    fn peak_rate(&self) -> f64 {
        WorkloadModel::peak_rate(self)
    }

    fn sample_arrivals(&self, rng: &mut SimRng, t: SimTime, slot: SimDuration) -> u64 {
        WorkloadModel::sample_arrivals(self, rng, t, slot)
    }

    fn sample_arrival_offsets(
        &self,
        rng: &mut SimRng,
        t: SimTime,
        slot: SimDuration,
        out: &mut Vec<SimDuration>,
    ) {
        WorkloadModel::sample_arrival_offsets(self, rng, t, slot, out);
    }

    fn mean_rate(&self, from: SimTime, to: SimTime, step: SimDuration) -> f64 {
        WorkloadModel::mean_rate(self, from, to, step)
    }

    fn split(&self, sites: u32) -> Vec<Box<dyn WorkloadSource>> {
        WorkloadModel::split(self, sites)
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn WorkloadSource>)
            .collect()
    }

    fn clone_source(&self) -> Box<dyn WorkloadSource> {
        Box::new(self.clone())
    }
}

/// Splits `students` into `sites` near-equal shares (difference at most
/// one, earlier sites take the remainder) that sum exactly to the input.
/// The deterministic cohort-to-site assignment behind
/// [`WorkloadModel::split`], matching the contiguous block partition of
/// `elc_simcore::shard::assign_blocks`.
///
/// # Panics
///
/// Panics when `sites` is zero or exceeds `students`.
#[must_use]
pub fn split_cohort(students: u32, sites: u32) -> Vec<u32> {
    assert!(sites > 0, "need at least one site");
    assert!(
        sites <= students,
        "cannot split {students} students over {sites} sites without an empty site"
    );
    let base = students / sites;
    let extra = students % sites;
    (0..sites)
        .map(|site| base + u32::from(site < extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::AcademicCalendar;

    fn model() -> WorkloadModel {
        WorkloadModel::builder(10_000, AcademicCalendar::standard_semester(SimTime::ZERO))
            .build()
            .unwrap()
    }

    fn at(week: u64, day: u64, hour: u64) -> SimTime {
        SimTime::from_secs(week * 7 * 86_400 + day * 86_400 + hour * 3_600)
    }

    #[test]
    fn split_cohort_is_exact_and_near_equal() {
        assert_eq!(split_cohort(10, 3), vec![4, 3, 3]);
        assert_eq!(split_cohort(9, 3), vec![3, 3, 3]);
        assert_eq!(split_cohort(5, 1), vec![5]);
        let shares = split_cohort(150_000, 4);
        assert_eq!(shares.iter().sum::<u32>(), 150_000);
        assert!(shares.iter().all(|&s| s == 37_500));
    }

    #[test]
    fn split_models_preserve_rates_and_total_enrolment() {
        let m = model();
        let sites = m.split(3);
        assert_eq!(
            sites.iter().map(WorkloadModel::students).sum::<u32>(),
            m.students()
        );
        let t = at(5, 2, 20);
        let whole = m.rate_at(t);
        let split_sum: f64 = sites.iter().map(|s| s.rate_at(t)).sum();
        assert!(
            (whole - split_sum).abs() < 1e-9 * whole,
            "per-site rates must sum to the institution rate: {whole} vs {split_sum}"
        );
    }

    #[test]
    #[should_panic(expected = "empty site")]
    fn split_rejects_more_sites_than_students() {
        let _ = split_cohort(2, 3);
    }

    #[test]
    fn exam_rate_exceeds_teaching_rate() {
        let m = model();
        let teaching = m.rate_at(at(5, 2, 20)); // week 5, Wednesday 20:00
        let exams = m.rate_at(at(15, 2, 20)); // exam week, same hour
        assert!(
            exams > 3.0 * teaching,
            "exams {exams} vs teaching {teaching}"
        );
    }

    #[test]
    fn break_is_quiet() {
        let m = model();
        let brk = m.rate_at(at(30, 2, 20));
        let teaching = m.rate_at(at(5, 2, 20));
        assert!(brk < 0.15 * teaching);
    }

    #[test]
    fn night_is_quieter_than_evening() {
        let m = model();
        assert!(m.rate_at(at(5, 2, 4)) < 0.1 * m.rate_at(at(5, 2, 20)));
    }

    #[test]
    fn weekends_are_quieter() {
        let m = model();
        assert!(m.rate_at(at(5, 5, 20)) < m.rate_at(at(5, 2, 20)));
    }

    #[test]
    fn rate_scales_with_population() {
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let small = WorkloadModel::builder(1_000, cal).build().unwrap();
        let large = WorkloadModel::builder(50_000, cal).build().unwrap();
        let t = at(5, 2, 20);
        assert!((large.rate_at(t) / small.rate_at(t) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn peak_rate_bounds_samples() {
        let m = model();
        let peak = m.peak_rate();
        for w in 0..17 {
            for h in 0..24 {
                assert!(m.rate_at(at(w, 2, h)) <= peak + 1e-9);
            }
        }
    }

    #[test]
    fn mean_rate_is_between_extremes() {
        let m = model();
        let mean = m.mean_rate(at(5, 0, 0), at(6, 0, 0), SimDuration::from_hours(1));
        assert!(mean > m.rate_at(at(5, 2, 4)));
        assert!(mean < m.peak_rate());
    }

    #[test]
    fn mean_rate_weights_a_trailing_partial_step_by_its_span() {
        let m = model();
        let from = at(5, 2, 10);
        // 2.5 steps of 1 h: samples at 10:00, 11:00 (full) and 12:00 (half).
        let to = from + SimDuration::from_mins(150);
        let step = SimDuration::from_hours(1);
        let expect = (m.rate_at(from)
            + m.rate_at(from + SimDuration::from_hours(1))
            + 0.5 * m.rate_at(from + SimDuration::from_hours(2)))
            / 2.5;
        let got = m.mean_rate(from, to, step);
        assert!(
            (got - expect).abs() < 1e-12 * expect,
            "trailing half step must carry half weight: got {got}, expect {expect}"
        );
        // An exact multiple of `step` keeps the plain average.
        let flat = m.mean_rate(from, from + SimDuration::from_hours(2), step);
        let plain = (m.rate_at(from) + m.rate_at(from + SimDuration::from_hours(1))) / 2.0;
        assert!((flat - plain).abs() < 1e-12 * plain);
    }

    #[test]
    fn builder_validates_every_knob() {
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        assert_eq!(
            WorkloadModel::builder(0, cal).build(),
            Err(WorkloadError::NoStudents)
        );
        assert_eq!(
            WorkloadModel::builder(100, cal)
                .peak_rps_per_kstudent(-3.0)
                .build(),
            Err(WorkloadError::BadRate(-3.0))
        );
        assert!(WorkloadModel::builder(100, cal)
            .peak_rps_per_kstudent(f64::NAN)
            .build()
            .is_err());
        assert_eq!(
            WorkloadModel::builder(100, cal)
                .weekend_factor(-0.1)
                .build(),
            Err(WorkloadError::BadFactor {
                name: "weekend",
                value: -0.1
            })
        );
        let bad_phase = PhaseFactors {
            exams: f64::INFINITY,
            ..PhaseFactors::default()
        };
        assert!(matches!(
            WorkloadModel::builder(100, cal)
                .phase_factors(bad_phase)
                .build(),
            Err(WorkloadError::BadFactor { name: "exams", .. })
        ));
        assert!(!WorkloadError::NoStudents.to_string().is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn builder_defaults_match_standard() {
        // Pins the deprecated shim to the builder defaults until its
        // release-note cycle ends and `standard` goes away.
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let built = WorkloadModel::builder(10_000, cal).build().unwrap();
        assert_eq!(built, WorkloadModel::standard(10_000, cal));
    }

    #[test]
    fn exam_phase_uses_exam_mix() {
        let m = model();
        let mix = m.mix_at(at(15, 2, 12));
        assert_eq!(mix, RequestMix::exam());
        assert_eq!(m.mix_at(at(5, 2, 12)), RequestMix::teaching());
    }

    #[test]
    fn arrivals_track_rate() {
        let m = model();
        let mut rng = SimRng::seed(1);
        let t = at(5, 2, 20);
        let slot = SimDuration::from_secs(10);
        let n = 2_000;
        let total: u64 = (0..n).map(|_| m.sample_arrivals(&mut rng, t, slot)).sum();
        let mean = total as f64 / n as f64;
        let expect = m.rate_at(t) * 10.0;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean}, expect {expect}"
        );
    }

    #[test]
    fn arrival_offsets_are_sorted_and_inside_the_slot() {
        let m = model();
        let mut rng = SimRng::seed(9);
        let slot = SimDuration::from_secs(10);
        let mut out = Vec::new();
        m.sample_arrival_offsets(&mut rng, at(5, 2, 20), slot, &mut out);
        assert!(!out.is_empty(), "teaching peak should see arrivals");
        assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        assert!(out.iter().all(|&d| d < slot));
    }

    #[test]
    fn arrival_offsets_reuse_the_buffer() {
        let m = model();
        let mut rng = SimRng::seed(9);
        let slot = SimDuration::from_secs(10);
        let mut out = vec![SimDuration::from_secs(999)]; // stale content
        m.sample_arrival_offsets(&mut rng, at(30, 2, 4), slot, &mut out);
        // Quiet break night: whatever was sampled, the stale entry is gone.
        assert!(out.iter().all(|&d| d < slot));
    }

    #[test]
    fn arrival_offset_count_matches_sample_arrivals() {
        let m = model();
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        let t = at(5, 2, 20);
        let slot = SimDuration::from_secs(10);
        let n = m.sample_arrivals(&mut a, t, slot);
        let mut out = Vec::new();
        m.sample_arrival_offsets(&mut b, t, slot, &mut out);
        assert_eq!(
            out.len() as u64,
            n,
            "count must come from the same Poisson draw"
        );
    }

    #[test]
    #[should_panic(expected = "at least one student")]
    #[allow(deprecated)]
    fn rejects_zero_students() {
        let _ = WorkloadModel::standard(0, AcademicCalendar::standard_semester(SimTime::ZERO));
    }

    #[test]
    fn deterministic_sampling() {
        let m = model();
        let mut a = SimRng::seed(4);
        let mut b = SimRng::seed(4);
        let t = at(5, 2, 20);
        for _ in 0..50 {
            assert_eq!(
                m.sample_arrivals(&mut a, t, SimDuration::from_secs(5)),
                m.sample_arrivals(&mut b, t, SimDuration::from_secs(5))
            );
        }
    }
}
