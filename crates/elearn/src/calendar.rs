//! The academic calendar.
//!
//! E-learning load is calendar-shaped: quiet breaks, steady teaching weeks,
//! a registration spike, and exam periods that concentrate the whole
//! institution onto the quiz engine. [`AcademicCalendar`] maps a simulation
//! instant to a [`Phase`] and the workload model scales traffic accordingly.

use elc_simcore::time::{SimDuration, SimTime};

/// Seconds in a week.
const WEEK: u64 = 7 * 86_400;

/// What part of the term an instant falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Before/after the term, or between terms.
    Break,
    /// Course registration window (enrollment churn spike).
    Registration,
    /// Ordinary teaching weeks.
    Teaching,
    /// Exam period.
    Exams,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Break => "break",
            Phase::Registration => "registration",
            Phase::Teaching => "teaching",
            Phase::Exams => "exams",
        };
        f.write_str(s)
    }
}

/// One term's calendar, laid out in whole weeks:
///
/// ```text
/// [registration: 1 week][teaching: N weeks][exams: M weeks][break …]
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcademicCalendar {
    term_start: SimTime,
    registration_weeks: u32,
    teaching_weeks: u32,
    exam_weeks: u32,
}

impl AcademicCalendar {
    /// Creates a calendar.
    ///
    /// # Panics
    ///
    /// Panics if the teaching period is empty.
    #[must_use]
    pub fn new(
        term_start: SimTime,
        registration_weeks: u32,
        teaching_weeks: u32,
        exam_weeks: u32,
    ) -> Self {
        assert!(teaching_weeks > 0, "a term needs teaching weeks");
        AcademicCalendar {
            term_start,
            registration_weeks,
            teaching_weeks,
            exam_weeks,
        }
    }

    /// A standard 14-week semester: 1 registration week, 14 teaching weeks,
    /// 2 exam weeks.
    #[must_use]
    pub fn standard_semester(term_start: SimTime) -> Self {
        AcademicCalendar::new(term_start, 1, 14, 2)
    }

    /// Start of the term (registration opens).
    #[must_use]
    pub fn term_start(&self) -> SimTime {
        self.term_start
    }

    /// Total term length including registration and exams.
    #[must_use]
    pub fn term_length(&self) -> SimDuration {
        SimDuration::from_secs(
            u64::from(self.registration_weeks + self.teaching_weeks + self.exam_weeks) * WEEK,
        )
    }

    /// End of the exam period.
    #[must_use]
    pub fn term_end(&self) -> SimTime {
        self.term_start + self.term_length()
    }

    /// The phase at instant `t`.
    #[must_use]
    pub fn phase_at(&self, t: SimTime) -> Phase {
        if t < self.term_start || t >= self.term_end() {
            return Phase::Break;
        }
        let week = (t - self.term_start).as_secs() / WEEK;
        let reg = u64::from(self.registration_weeks);
        let teach = u64::from(self.teaching_weeks);
        if week < reg {
            Phase::Registration
        } else if week < reg + teach {
            Phase::Teaching
        } else {
            Phase::Exams
        }
    }

    /// Zero-based week index within the term, `None` outside it.
    #[must_use]
    pub fn week_of(&self, t: SimTime) -> Option<u32> {
        if t < self.term_start || t >= self.term_end() {
            return None;
        }
        Some(((t - self.term_start).as_secs() / WEEK) as u32)
    }

    /// True on Saturday/Sunday (term starts on a Monday by convention).
    #[must_use]
    pub fn is_weekend(&self, t: SimTime) -> bool {
        let day = (t.saturating_since(self.term_start).as_secs() / 86_400) % 7;
        day >= 5
    }

    /// Hour of day in `[0, 24)`.
    #[must_use]
    pub fn hour_of_day(&self, t: SimTime) -> u32 {
        ((t.saturating_since(self.term_start).as_secs() / 3_600) % 24) as u32
    }

    /// Start instant of the exam period.
    #[must_use]
    pub fn exams_start(&self) -> SimTime {
        self.term_start
            + SimDuration::from_secs(
                u64::from(self.registration_weeks + self.teaching_weeks) * WEEK,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> AcademicCalendar {
        AcademicCalendar::standard_semester(SimTime::from_secs(WEEK)) // starts week 1
    }

    fn weeks(n: u64) -> SimDuration {
        SimDuration::from_secs(n * WEEK)
    }

    #[test]
    fn phases_in_order() {
        let c = cal();
        let t0 = c.term_start();
        assert_eq!(c.phase_at(SimTime::ZERO), Phase::Break);
        assert_eq!(c.phase_at(t0), Phase::Registration);
        assert_eq!(c.phase_at(t0 + weeks(1)), Phase::Teaching);
        assert_eq!(c.phase_at(t0 + weeks(14)), Phase::Teaching);
        assert_eq!(c.phase_at(t0 + weeks(15)), Phase::Exams);
        assert_eq!(c.phase_at(t0 + weeks(16)), Phase::Exams);
        assert_eq!(c.phase_at(t0 + weeks(17)), Phase::Break);
    }

    #[test]
    fn term_boundaries() {
        let c = cal();
        assert_eq!(c.term_length(), weeks(17));
        assert_eq!(c.term_end(), c.term_start() + weeks(17));
        assert_eq!(c.exams_start(), c.term_start() + weeks(15));
    }

    #[test]
    fn week_indexing() {
        let c = cal();
        assert_eq!(c.week_of(SimTime::ZERO), None);
        assert_eq!(c.week_of(c.term_start()), Some(0));
        assert_eq!(c.week_of(c.term_start() + weeks(3)), Some(3));
        assert_eq!(c.week_of(c.term_end()), None);
    }

    #[test]
    fn weekends_cycle() {
        let c = AcademicCalendar::standard_semester(SimTime::ZERO);
        // Days 0-4 weekdays, 5-6 weekend.
        assert!(!c.is_weekend(SimTime::from_secs(0)));
        assert!(!c.is_weekend(SimTime::from_secs(4 * 86_400)));
        assert!(c.is_weekend(SimTime::from_secs(5 * 86_400)));
        assert!(c.is_weekend(SimTime::from_secs(6 * 86_400)));
        assert!(!c.is_weekend(SimTime::from_secs(7 * 86_400)));
    }

    #[test]
    fn hour_of_day_cycles() {
        let c = AcademicCalendar::standard_semester(SimTime::ZERO);
        assert_eq!(c.hour_of_day(SimTime::from_secs(0)), 0);
        assert_eq!(c.hour_of_day(SimTime::from_secs(3_600 * 13)), 13);
        assert_eq!(c.hour_of_day(SimTime::from_secs(86_400 + 3_600)), 1);
    }

    #[test]
    fn no_registration_weeks_is_allowed() {
        let c = AcademicCalendar::new(SimTime::ZERO, 0, 10, 1);
        assert_eq!(c.phase_at(SimTime::ZERO), Phase::Teaching);
    }

    #[test]
    #[should_panic(expected = "teaching weeks")]
    fn zero_teaching_rejected() {
        let _ = AcademicCalendar::new(SimTime::ZERO, 1, 0, 1);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Exams.to_string(), "exams");
    }
}
