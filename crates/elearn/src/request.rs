//! LMS request taxonomy.
//!
//! Each request kind has a request/response payload and a server-side
//! service cost, expressed as a weight relative to the cheapest request.
//! Workload mixes ([`RequestMix`]) say how often each kind occurs; the exam
//! mix shifts sharply toward quiz traffic.

use elc_net::units::Bytes;
use elc_simcore::dist::{DistError, Weighted};
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::TRACE_TARGET;

/// One kind of LMS request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Login + dashboard render.
    Login,
    /// Course landing page.
    CoursePage,
    /// One chunk of streamed lecture video.
    VideoChunk,
    /// Fetch quiz questions.
    QuizFetch,
    /// Submit quiz answers (the write that must not be lost).
    QuizSubmit,
    /// Upload an assignment file.
    Upload,
    /// Download a document.
    Download,
    /// Read a discussion thread (§I collaboration).
    ForumRead,
    /// Post to a discussion thread (a small write).
    ForumPost,
}

impl RequestKind {
    /// All kinds.
    pub const ALL: [RequestKind; 9] = [
        RequestKind::Login,
        RequestKind::CoursePage,
        RequestKind::VideoChunk,
        RequestKind::QuizFetch,
        RequestKind::QuizSubmit,
        RequestKind::Upload,
        RequestKind::Download,
        RequestKind::ForumRead,
        RequestKind::ForumPost,
    ];

    /// Typical request payload sent by the client.
    #[must_use]
    pub fn request_size(self) -> Bytes {
        match self {
            RequestKind::Login => Bytes::new(2 * 1024),
            RequestKind::CoursePage => Bytes::new(1024),
            RequestKind::VideoChunk => Bytes::new(512),
            RequestKind::QuizFetch => Bytes::new(512),
            RequestKind::QuizSubmit => Bytes::new(16 * 1024),
            RequestKind::Upload => Bytes::from_mib(2),
            RequestKind::Download => Bytes::new(512),
            RequestKind::ForumRead => Bytes::new(512),
            RequestKind::ForumPost => Bytes::new(4 * 1024),
        }
    }

    /// Typical response payload returned by the server.
    #[must_use]
    pub fn response_size(self) -> Bytes {
        match self {
            RequestKind::Login => Bytes::new(60 * 1024),
            RequestKind::CoursePage => Bytes::new(180 * 1024),
            RequestKind::VideoChunk => Bytes::from_mib(2),
            RequestKind::QuizFetch => Bytes::new(40 * 1024),
            RequestKind::QuizSubmit => Bytes::new(2 * 1024),
            RequestKind::Upload => Bytes::new(1024),
            RequestKind::Download => Bytes::from_mib(3),
            RequestKind::ForumRead => Bytes::new(50 * 1024),
            RequestKind::ForumPost => Bytes::new(1024),
        }
    }

    /// Server-side cost relative to the cheapest request (1.0 = a video
    /// chunk served from cache).
    #[must_use]
    pub fn service_weight(self) -> f64 {
        match self {
            RequestKind::Login => 4.0,
            RequestKind::CoursePage => 3.0,
            RequestKind::VideoChunk => 1.0,
            RequestKind::QuizFetch => 2.0,
            RequestKind::QuizSubmit => 5.0,
            RequestKind::Upload => 6.0,
            RequestKind::Download => 1.5,
            RequestKind::ForumRead => 1.5,
            RequestKind::ForumPost => 2.5,
        }
    }

    /// True for requests whose loss destroys user work (writes).
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            RequestKind::QuizSubmit | RequestKind::Upload | RequestKind::ForumPost
        )
    }

    /// Parses the [`Display`](std::fmt::Display) name back into a kind —
    /// the inverse used by trace codecs whose on-disk kind table stores
    /// names, not discriminants, so the format survives enum reordering.
    #[must_use]
    pub fn from_name(name: &str) -> Option<RequestKind> {
        RequestKind::ALL.into_iter().find(|k| k.to_string() == name)
    }
}

impl std::fmt::Display for RequestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RequestKind::Login => "login",
            RequestKind::CoursePage => "course-page",
            RequestKind::VideoChunk => "video-chunk",
            RequestKind::QuizFetch => "quiz-fetch",
            RequestKind::QuizSubmit => "quiz-submit",
            RequestKind::Upload => "upload",
            RequestKind::Download => "download",
            RequestKind::ForumRead => "forum-read",
            RequestKind::ForumPost => "forum-post",
        };
        f.write_str(s)
    }
}

/// How a request ultimately fared once resilience policies (timeouts,
/// retries, load shedding — see `elc-resil`) are in the path. A plain
/// served/failed split hides the distinction the paper's reliability
/// comparison turns on: traffic a deployment *chose* to drop under
/// overload versus work the *user* lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// Served within its deadline.
    Served,
    /// Served, but late (deadline breached) or only after retries.
    ServedDegraded,
    /// Deliberately refused by admission control to protect writes.
    Shed,
    /// Never served: retries exhausted or no capacity reachable.
    GaveUp,
}

impl RequestOutcome {
    /// All outcomes, in severity order.
    pub const ALL: [RequestOutcome; 4] = [
        RequestOutcome::Served,
        RequestOutcome::ServedDegraded,
        RequestOutcome::Shed,
        RequestOutcome::GaveUp,
    ];

    /// True if the user's request was answered at all.
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(
            self,
            RequestOutcome::Served | RequestOutcome::ServedDegraded
        )
    }

    /// True if the user's work or intent was lost (the §III failure the
    /// stack must avoid for writes).
    #[must_use]
    pub fn is_loss(self) -> bool {
        matches!(self, RequestOutcome::Shed | RequestOutcome::GaveUp)
    }
}

impl std::fmt::Display for RequestOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RequestOutcome::Served => "served",
            RequestOutcome::ServedDegraded => "served-degraded",
            RequestOutcome::Shed => "shed",
            RequestOutcome::GaveUp => "gave-up",
        };
        f.write_str(s)
    }
}

/// One request's timeline through the service: arrival → queue → service
/// → done.
///
/// Models (closed-form or event-driven) compute the queueing and service
/// phases however they like; [`RequestLifecycle::emit`] writes the result
/// to the installed tracer as a `request` span tagged with the request
/// class, with a `request.service` instant marking the queue → service
/// transition. Guarded internally, so callers on hot paths still pay one
/// branch when tracing is off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestLifecycle {
    /// The request class.
    pub kind: RequestKind,
    /// When the request reached the service.
    pub arrival: SimTime,
    /// Time spent queued before a worker picked it up.
    pub queue_wait: SimDuration,
    /// Service time once picked up.
    pub service: SimDuration,
}

impl RequestLifecycle {
    /// When service on this request began.
    #[must_use]
    pub fn service_start(&self) -> SimTime {
        self.arrival + self.queue_wait
    }

    /// When the response left the service.
    #[must_use]
    pub fn done_at(&self) -> SimTime {
        self.arrival + self.queue_wait + self.service
    }

    /// Records the lifecycle on the installed tracer (no-op when tracing
    /// is off or `elearn` is filtered below debug).
    pub fn emit(&self) {
        if !elc_trace::enabled(TRACE_TARGET, Level::Debug) {
            return;
        }
        let class = self.kind.to_string();
        let span = elc_trace::span_begin(
            self.arrival.as_nanos(),
            TRACE_TARGET,
            "request",
            Level::Debug,
            &[Field::str("class", class.clone())],
        );
        elc_trace::instant(
            self.service_start().as_nanos(),
            TRACE_TARGET,
            "request.service",
            Level::Debug,
            &[Field::str("class", class.clone())],
        );
        elc_trace::span_end(
            self.done_at().as_nanos(),
            TRACE_TARGET,
            "request",
            Level::Debug,
            span,
            &[
                Field::str("class", class),
                Field::duration_ns("queued", self.queue_wait.as_nanos()),
                Field::duration_ns("service", self.service.as_nanos()),
            ],
        );
    }
}

/// A probability mix over request kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMix {
    dist: Weighted<RequestKind>,
    pairs: Vec<(RequestKind, f64)>,
    mean_weight: f64,
    mean_response: f64,
}

impl RequestMix {
    /// Builds a mix from `(kind, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the pairs are empty or weights invalid.
    pub fn new(pairs: &[(RequestKind, f64)]) -> Result<Self, DistError> {
        let dist = Weighted::new(pairs.iter().copied())?;
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        let mean_weight = pairs
            .iter()
            .map(|(k, w)| k.service_weight() * w)
            .sum::<f64>()
            / total;
        let mean_response = pairs
            .iter()
            .map(|(k, w)| k.response_size().as_u64() as f64 * w)
            .sum::<f64>()
            / total;
        Ok(RequestMix {
            dist,
            pairs: pairs.to_vec(),
            mean_weight,
            mean_response,
        })
    }

    /// The `(kind, weight)` pairs this mix was built from, in
    /// construction order — what a trace recorder serializes so a replay
    /// can rebuild the identical mix.
    #[must_use]
    pub fn pairs(&self) -> &[(RequestKind, f64)] {
        &self.pairs
    }

    /// Ordinary teaching-week traffic: browsing and video dominate.
    #[must_use]
    pub fn teaching() -> Self {
        RequestMix::new(&[
            (RequestKind::Login, 5.0),
            (RequestKind::CoursePage, 22.0),
            (RequestKind::VideoChunk, 45.0),
            (RequestKind::QuizFetch, 4.0),
            (RequestKind::QuizSubmit, 4.0),
            (RequestKind::Upload, 4.0),
            (RequestKind::Download, 9.0),
            (RequestKind::ForumRead, 5.0),
            (RequestKind::ForumPost, 2.0),
        ])
        .expect("static weights are valid")
    }

    /// Exam-window traffic: quiz fetch/submit dominate.
    #[must_use]
    pub fn exam() -> Self {
        RequestMix::new(&[
            (RequestKind::Login, 10.0),
            (RequestKind::CoursePage, 9.0),
            (RequestKind::VideoChunk, 2.0),
            (RequestKind::QuizFetch, 40.0),
            (RequestKind::QuizSubmit, 35.0),
            (RequestKind::Upload, 1.0),
            (RequestKind::Download, 1.0),
            (RequestKind::ForumRead, 1.5),
            (RequestKind::ForumPost, 0.5),
        ])
        .expect("static weights are valid")
    }

    /// Draws one request kind.
    pub fn sample(&self, rng: &mut SimRng) -> RequestKind {
        // `RequestKind` is `Copy`: sample by reference, no clone machinery.
        *self.dist.sample_ref(rng)
    }

    /// Mean service weight of the mix — converts request rates into
    /// capacity units.
    #[must_use]
    pub fn mean_service_weight(&self) -> f64 {
        self.mean_weight
    }

    /// Mean response size of the mix, for egress estimation.
    #[must_use]
    pub fn mean_response_size(&self) -> Bytes {
        Bytes::new(self.mean_response as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_weights_are_positive() {
        for k in RequestKind::ALL {
            assert!(k.response_size().as_u64() > 0);
            assert!(k.request_size().as_u64() > 0);
            assert!(k.service_weight() > 0.0);
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn writes_are_flagged() {
        assert!(RequestKind::QuizSubmit.is_write());
        assert!(RequestKind::Upload.is_write());
        assert!(RequestKind::ForumPost.is_write());
        assert!(!RequestKind::CoursePage.is_write());
        assert!(!RequestKind::ForumRead.is_write());
    }

    #[test]
    fn outcomes_partition_into_success_and_loss() {
        for o in RequestOutcome::ALL {
            assert_ne!(o.is_success(), o.is_loss(), "{o} must be exactly one");
            assert!(!o.to_string().is_empty());
        }
        assert!(RequestOutcome::Served.is_success());
        assert!(RequestOutcome::ServedDegraded.is_success());
        assert!(RequestOutcome::Shed.is_loss());
        assert!(RequestOutcome::GaveUp.is_loss());
        assert_eq!(
            RequestOutcome::ServedDegraded.to_string(),
            "served-degraded"
        );
    }

    #[test]
    fn teaching_mix_is_video_heavy() {
        let mix = RequestMix::teaching();
        let mut rng = SimRng::seed(1);
        let n = 50_000;
        let video = (0..n)
            .filter(|_| mix.sample(&mut rng) == RequestKind::VideoChunk)
            .count();
        let frac = video as f64 / n as f64;
        assert!((frac - 0.45).abs() < 0.02, "video fraction {frac}");
    }

    #[test]
    fn exam_mix_is_quiz_heavy() {
        let mix = RequestMix::exam();
        let mut rng = SimRng::seed(2);
        let n = 50_000;
        let quiz = (0..n)
            .filter(|_| {
                matches!(
                    mix.sample(&mut rng),
                    RequestKind::QuizFetch | RequestKind::QuizSubmit
                )
            })
            .count();
        let frac = quiz as f64 / n as f64;
        assert!(frac > 0.7, "quiz fraction {frac}");
    }

    #[test]
    fn exam_mix_costs_more_per_request() {
        // Quiz submits are expensive writes, so the exam mix has a higher
        // mean service weight than teaching browsing.
        assert!(
            RequestMix::exam().mean_service_weight() > RequestMix::teaching().mean_service_weight()
        );
    }

    #[test]
    fn teaching_mix_moves_more_bytes() {
        // Video dominates teaching traffic, so mean response is larger.
        assert!(
            RequestMix::teaching().mean_response_size() > RequestMix::exam().mean_response_size()
        );
    }

    #[test]
    fn lifecycle_emits_tagged_span() {
        use elc_trace::{EventKind, TraceFilter, Tracer};
        let lifecycle = RequestLifecycle {
            kind: RequestKind::QuizSubmit,
            arrival: SimTime::from_secs(100),
            queue_wait: SimDuration::from_secs(2),
            service: SimDuration::from_secs(3),
        };
        assert_eq!(lifecycle.service_start(), SimTime::from_secs(102));
        assert_eq!(lifecycle.done_at(), SimTime::from_secs(105));
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Debug)), || {
                lifecycle.emit();
            });
        let events: Vec<_> = tracer.events().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[2].kind, EventKind::End);
        assert_eq!(events[0].span, events[2].span);
        assert_eq!(tracer.resolve(events[1].name), "request.service");
        assert_eq!(events[2].time_ns, SimTime::from_secs(105).as_nanos());
        let json = elc_trace::export::jsonl_string(&tracer, &[]);
        assert!(json.contains("\"class\":\"quiz-submit\""));
    }

    #[test]
    fn lifecycle_emit_without_tracer_is_noop() {
        RequestLifecycle {
            kind: RequestKind::Login,
            arrival: SimTime::ZERO,
            queue_wait: SimDuration::ZERO,
            service: SimDuration::from_secs(1),
        }
        .emit();
    }

    #[test]
    fn custom_mix_validation() {
        assert!(RequestMix::new(&[]).is_err());
        assert!(RequestMix::new(&[(RequestKind::Login, -1.0)]).is_err());
        let single = RequestMix::new(&[(RequestKind::Login, 1.0)]).unwrap();
        let mut rng = SimRng::seed(3);
        assert_eq!(single.sample(&mut rng), RequestKind::Login);
        assert_eq!(
            single.mean_service_weight(),
            RequestKind::Login.service_weight()
        );
    }
}
