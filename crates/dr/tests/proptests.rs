//! Seed-derived property tests for the DR subsystem.
//!
//! No external property-testing crate: cases come from `SimRng`
//! streams, so every "random" case replays from its printed seed.

use elc_dr::{
    DrState, FailureDetector, Node, RecoveryOrchestrator, ReplicationLink, ReplicationMode,
};
use elc_simcore::rng::SimRng;
use elc_simcore::time::{SimDuration, SimTime};

#[test]
fn replication_pending_is_never_negative_and_sync_is_always_zero() {
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xD12A).derive_u64(case);
        let ship = rng.range_f64(0.5, 50.0);
        let mut links = [
            ReplicationLink::new(ReplicationMode::Sync),
            ReplicationLink::new(ReplicationMode::Async { ship_rate: ship }),
            ReplicationLink::new(ReplicationMode::Snapshot {
                interval: SimDuration::from_mins(rng.range_u64(1, 120)),
            }),
        ];
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            t += SimDuration::from_secs(rng.range_u64(1, 600));
            let rate = rng.range_f64(0.0, 100.0);
            for link in &mut links {
                link.advance(t, rate);
                assert!(
                    link.pending_writes() >= 0.0,
                    "case {case}: negative pending on {}",
                    link.mode()
                );
            }
            assert_eq!(
                links[0].pending_writes(),
                0.0,
                "case {case}: sync lagged at {t}"
            );
        }
    }
}

#[test]
fn snapshot_pending_is_bounded_by_one_interval_of_peak_rate() {
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xD12B).derive_u64(case);
        let interval = SimDuration::from_mins(rng.range_u64(1, 240));
        let mut link = ReplicationLink::new(ReplicationMode::Snapshot { interval });
        let peak = 50.0;
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            t += SimDuration::from_secs(rng.range_u64(1, 900));
            link.advance(t, rng.range_f64(0.0, peak));
            let bound = peak * interval.as_secs_f64() + 1e-6;
            assert!(
                link.pending_writes() <= bound,
                "case {case}: pending {} exceeds one interval at peak ({bound})",
                link.pending_writes()
            );
        }
    }
}

#[test]
fn orchestrator_never_double_serves_under_random_flapping() {
    for case in 0..150u64 {
        let mut rng = SimRng::seed(0xD12C).derive_u64(case);
        let beat = SimDuration::from_secs(rng.range_u64(2, 30));
        let suspect = rng.range_u64(1, 4) as u32;
        let confirm = suspect + rng.range_u64(1, 4) as u32;
        let mut o = RecoveryOrchestrator::new(
            FailureDetector::new(beat, suspect, confirm),
            SimDuration::from_secs(rng.range_u64(10, 300)),
            SimDuration::from_secs(rng.range_u64(60, 1200)),
        );
        let catch_up = SimDuration::from_secs(rng.range_u64(0, 600));
        // A hostile flap pattern: alive/dead stretches of random length.
        let mut alive = true;
        let mut flip_at = SimTime::ZERO;
        let mut t = SimTime::ZERO;
        let tick = SimDuration::from_secs(5);
        for _ in 0..2000 {
            if t >= flip_at {
                alive = !alive;
                flip_at = t + SimDuration::from_secs(rng.range_u64(5, 400));
            }
            o.tick(t, alive, catch_up);
            assert!(
                !(o.may_serve(Node::Primary) && o.may_serve(Node::Standby)),
                "case {case}: split brain at {t} in {}",
                o.state()
            );
            t += tick;
        }
    }
}

#[test]
fn orchestrator_replays_byte_identically_under_re_derive() {
    for case in 0..50u64 {
        let run = |seed: u64| {
            let mut rng = SimRng::seed(seed).derive_u64(case);
            let mut o = RecoveryOrchestrator::new(
                FailureDetector::new(SimDuration::from_secs(10), 2, 4),
                SimDuration::from_secs(60),
                SimDuration::from_mins(10),
            );
            let mut states = Vec::new();
            let mut t = SimTime::ZERO;
            for _ in 0..500 {
                let alive = rng.chance(0.8);
                states.push(o.tick(t, alive, SimDuration::from_secs(30)));
                t += SimDuration::from_secs(10);
            }
            (states, o.failovers(), o.failbacks(), o.fenced_ticks())
        };
        assert_eq!(run(0xFEED), run(0xFEED), "case {case}: must replay");
    }
}

#[test]
fn restored_state_always_follows_the_full_arc() {
    // Whatever the flap pattern, reaching Restored requires passing
    // through Promoting and CatchingUp first — no shortcut edges.
    for case in 0..100u64 {
        let mut rng = SimRng::seed(0xD12E).derive_u64(case);
        let mut o = RecoveryOrchestrator::new(
            FailureDetector::new(SimDuration::from_secs(10), 2, 4),
            SimDuration::from_secs(rng.range_u64(10, 120)),
            SimDuration::from_mins(10),
        );
        let mut prev = DrState::Healthy;
        let mut seen_promoting = false;
        let mut seen_catching_up = false;
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t += SimDuration::from_secs(10);
            let alive = rng.chance(0.7);
            let state = o.tick(t, alive, SimDuration::from_secs(rng.range_u64(0, 120)));
            match state {
                DrState::Promoting => seen_promoting = true,
                DrState::CatchingUp => {
                    assert!(seen_promoting, "case {case}: catching-up before promoting");
                    seen_catching_up = true;
                }
                DrState::Restored if prev != DrState::Restored => {
                    assert!(
                        seen_catching_up,
                        "case {case}: restored without catching up"
                    );
                }
                _ => {}
            }
            if state == DrState::Healthy {
                seen_promoting = false;
                seen_catching_up = false;
            }
            prev = state;
        }
    }
}
