//! RPO/RTO accounting: the drill scorecard.
//!
//! DR postures are bought in two currencies — how much committed data a
//! failure destroys (**RPO**, recovery point objective) and how long
//! service stays down (**RTO**, recovery time objective). [`RpoRto`]
//! accumulates both over a drill so E19 can put "data-minutes lost" and
//! "seconds to restored service" side by side with the posture's
//! carrying cost.

use elc_simcore::time::SimDuration;

/// Accumulated recovery metrics for one drill.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RpoRto {
    writes_lost: f64,
    data_lost: SimDuration,
    rto: Option<SimDuration>,
    downtime: SimDuration,
}

impl RpoRto {
    /// A clean scorecard.
    #[must_use]
    pub fn new() -> Self {
        RpoRto::default()
    }

    /// Records the data a failure destroyed: `writes` committed writes
    /// spanning `window` of history.
    pub fn record_loss(&mut self, writes: f64, window: SimDuration) {
        self.writes_lost += writes.max(0.0);
        self.data_lost += window;
    }

    /// Records the first restoration of service, `rto` after the loss.
    /// Later failovers keep the first RTO (the drill's headline number).
    pub fn record_restored(&mut self, rto: SimDuration) {
        self.rto.get_or_insert(rto);
    }

    /// Adds a span during which nobody served.
    pub fn add_downtime(&mut self, span: SimDuration) {
        self.downtime += span;
    }

    /// Committed writes destroyed across the drill.
    #[must_use]
    pub fn writes_lost(&self) -> f64 {
        self.writes_lost
    }

    /// History destroyed, as sim time (the "data-minutes lost" column is
    /// this in minutes).
    #[must_use]
    pub fn data_lost(&self) -> SimDuration {
        self.data_lost
    }

    /// Minutes of committed history destroyed.
    #[must_use]
    pub fn data_minutes_lost(&self) -> f64 {
        self.data_lost.as_secs_f64() / 60.0
    }

    /// Seconds from loss to restored service, if service was restored.
    #[must_use]
    pub fn rto(&self) -> Option<SimDuration> {
        self.rto
    }

    /// Total time nobody served.
    #[must_use]
    pub fn downtime(&self) -> SimDuration {
        self.downtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_keeps_the_first_rto() {
        let mut m = RpoRto::new();
        m.record_loss(120.0, SimDuration::from_mins(3));
        m.record_loss(30.0, SimDuration::from_mins(1));
        m.record_restored(SimDuration::from_secs(90));
        m.record_restored(SimDuration::from_secs(500));
        m.add_downtime(SimDuration::from_secs(60));
        m.add_downtime(SimDuration::from_secs(30));
        assert_eq!(m.writes_lost(), 150.0);
        assert_eq!(m.data_minutes_lost(), 4.0);
        assert_eq!(m.rto(), Some(SimDuration::from_secs(90)));
        assert_eq!(m.downtime(), SimDuration::from_secs(90));
    }

    #[test]
    fn negative_loss_is_clamped_and_default_is_clean() {
        let mut m = RpoRto::new();
        m.record_loss(-5.0, SimDuration::ZERO);
        assert_eq!(m.writes_lost(), 0.0);
        assert_eq!(m.rto(), None);
        assert_eq!(m.downtime(), SimDuration::ZERO);
    }
}
