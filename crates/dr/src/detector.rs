//! Heartbeat failure detection with deterministic suspicion timeouts.
//!
//! A [`FailureDetector`] watches a primary that is supposed to heartbeat
//! every `heartbeat_every`. Silence is graded, not binary: after
//! `suspect_after_missed` whole beats of silence the primary is
//! **suspected** (the orchestrator arms but does not act), after
//! `confirm_after_missed` beats it is **confirmed** dead and promotion
//! may begin. Both edges are pure functions of the last-heard instant
//! and `now` — no randomized timeouts — so detection latency is
//! byte-identical on every run. Rising edges trace `dr.suspect` and
//! `dr.confirm` on the `"dr"` target.

use std::fmt;

use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::TRACE_TARGET;

/// The detector's graded opinion of the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Heartbeats arriving on schedule.
    Healthy,
    /// Enough beats missed to arm recovery.
    Suspected,
    /// Enough beats missed to declare the primary dead.
    Confirmed,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Healthy => "healthy",
            Verdict::Suspected => "suspected",
            Verdict::Confirmed => "confirmed",
        })
    }
}

/// Why a [`FailureDetector`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorError {
    /// The heartbeat period was zero.
    ZeroHeartbeat,
    /// The suspicion threshold was zero (everything would be suspect).
    ZeroSuspect,
    /// Confirmation did not require more missed beats than suspicion.
    ConfirmNotPastSuspect,
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::ZeroHeartbeat => write!(f, "heartbeat period must be positive"),
            DetectorError::ZeroSuspect => write!(f, "suspect threshold must be >= 1 missed beat"),
            DetectorError::ConfirmNotPastSuspect => {
                write!(f, "confirm threshold must exceed the suspect threshold")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// A heartbeat suspicion detector. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDetector {
    heartbeat_every: SimDuration,
    suspect_after_missed: u32,
    confirm_after_missed: u32,
    last_heartbeat: SimTime,
    last_verdict: Verdict,
}

impl FailureDetector {
    /// Creates a detector expecting a beat every `heartbeat_every`,
    /// suspecting after `suspect_after_missed` missed beats and
    /// confirming after `confirm_after_missed`. The primary counts as
    /// heard at `SimTime::ZERO`.
    ///
    /// # Errors
    ///
    /// Rejects a zero heartbeat period, a zero suspicion threshold, and
    /// a confirmation threshold not strictly past suspicion.
    pub fn try_new(
        heartbeat_every: SimDuration,
        suspect_after_missed: u32,
        confirm_after_missed: u32,
    ) -> Result<Self, DetectorError> {
        if heartbeat_every.is_zero() {
            return Err(DetectorError::ZeroHeartbeat);
        }
        if suspect_after_missed == 0 {
            return Err(DetectorError::ZeroSuspect);
        }
        if confirm_after_missed <= suspect_after_missed {
            return Err(DetectorError::ConfirmNotPastSuspect);
        }
        Ok(FailureDetector {
            heartbeat_every,
            suspect_after_missed,
            confirm_after_missed,
            last_heartbeat: SimTime::ZERO,
            last_verdict: Verdict::Healthy,
        })
    }

    /// Panicking counterpart of [`FailureDetector::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(
        heartbeat_every: SimDuration,
        suspect_after_missed: u32,
        confirm_after_missed: u32,
    ) -> Self {
        FailureDetector::try_new(heartbeat_every, suspect_after_missed, confirm_after_missed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The expected heartbeat period.
    #[must_use]
    pub fn heartbeat_every(&self) -> SimDuration {
        self.heartbeat_every
    }

    /// Worst-case time from silence to a confirmed verdict.
    #[must_use]
    pub fn confirm_latency(&self) -> SimDuration {
        self.heartbeat_every
            .mul_f64(f64::from(self.confirm_after_missed))
    }

    /// Records a heartbeat heard at `now` (later beats only — an
    /// out-of-order beat is ignored).
    pub fn on_heartbeat(&mut self, now: SimTime) {
        if now > self.last_heartbeat {
            self.last_heartbeat = now;
        }
    }

    /// Grades the silence at `now`, tracing `dr.suspect` / `dr.confirm`
    /// on rising edges.
    pub fn poll(&mut self, now: SimTime) -> Verdict {
        let silent = now.saturating_since(self.last_heartbeat);
        let missed = (silent.as_nanos() / self.heartbeat_every.as_nanos()) as u32;
        let verdict = if missed >= self.confirm_after_missed {
            Verdict::Confirmed
        } else if missed >= self.suspect_after_missed {
            Verdict::Suspected
        } else {
            Verdict::Healthy
        };
        if verdict > self.last_verdict {
            let name = match verdict {
                Verdict::Suspected => "dr.suspect",
                Verdict::Confirmed => "dr.confirm",
                Verdict::Healthy => unreachable!("healthy is the minimum"),
            };
            if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
                elc_trace::instant(
                    now.as_nanos(),
                    TRACE_TARGET,
                    name,
                    Level::Warn,
                    &[
                        Field::u64("missed_beats", u64::from(missed)),
                        Field::u64("silent_ms", silent.as_millis()),
                    ],
                );
            }
        }
        self.last_verdict = verdict;
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> FailureDetector {
        // 10 s beats, suspected at 2 missed, confirmed at 4.
        FailureDetector::new(SimDuration::from_secs(10), 2, 4)
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn try_new_rejects_bad_knobs() {
        assert_eq!(
            FailureDetector::try_new(SimDuration::ZERO, 2, 4),
            Err(DetectorError::ZeroHeartbeat)
        );
        assert_eq!(
            FailureDetector::try_new(SimDuration::from_secs(10), 0, 4),
            Err(DetectorError::ZeroSuspect)
        );
        assert_eq!(
            FailureDetector::try_new(SimDuration::from_secs(10), 4, 4),
            Err(DetectorError::ConfirmNotPastSuspect)
        );
    }

    #[test]
    fn verdict_escalates_deterministically_with_silence() {
        let mut d = detector();
        d.on_heartbeat(secs(100));
        assert_eq!(d.poll(secs(110)), Verdict::Healthy, "one beat late is ok");
        assert_eq!(d.poll(secs(119)), Verdict::Healthy);
        assert_eq!(d.poll(secs(120)), Verdict::Suspected, "2 whole beats");
        assert_eq!(d.poll(secs(139)), Verdict::Suspected);
        assert_eq!(d.poll(secs(140)), Verdict::Confirmed, "4 whole beats");
        assert_eq!(d.confirm_latency(), SimDuration::from_secs(40));
    }

    #[test]
    fn heartbeat_heals_the_verdict() {
        let mut d = detector();
        assert_eq!(d.poll(secs(25)), Verdict::Suspected);
        d.on_heartbeat(secs(26));
        assert_eq!(d.poll(secs(27)), Verdict::Healthy);
        // Stale (out-of-order) beats cannot rewind the clock.
        let mut late = detector();
        late.on_heartbeat(secs(100));
        late.on_heartbeat(secs(50));
        assert_eq!(late.poll(secs(141)), Verdict::Confirmed);
    }

    #[test]
    fn rising_edges_trace_suspect_and_confirm_once() {
        use elc_trace::{TraceFilter, Tracer};
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Warn)), || {
                let mut d = detector();
                for s in [10u64, 20, 25, 30, 40, 45, 50] {
                    let _ = d.poll(secs(s));
                }
            });
        let names: Vec<_> = tracer
            .events()
            .map(|e| tracer.resolve(e.name).to_string())
            .collect();
        assert_eq!(names, ["dr.suspect", "dr.confirm"]);
    }
}
