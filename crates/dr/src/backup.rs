//! Backup schedules: periodic restore points and the restore clock.
//!
//! A [`BackupSchedule`] is the institutional side of recovery: snapshots
//! cut every `interval` (anchored at calendar zero, so "nightly" means
//! each midnight of sim time), and a restore that streams the protected
//! volume back at a finite rate — the §IV.B story where recovering from
//! physical damage is bounded by how fast tapes read, not by intent.

use std::fmt;

use elc_simcore::time::{SimDuration, SimTime};

/// Why a [`BackupSchedule`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackupError {
    /// The snapshot interval was zero.
    ZeroInterval,
    /// The restore rate was zero, negative, or not finite.
    BadRestoreRate(f64),
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::ZeroInterval => write!(f, "backup interval must be positive"),
            BackupError::BadRestoreRate(r) => {
                write!(f, "restore rate must be positive and finite, got {r} GiB/h")
            }
        }
    }
}

impl std::error::Error for BackupError {}

/// A periodic snapshot schedule with a volume-scaled restore clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackupSchedule {
    interval: SimDuration,
    restore_gib_per_hour: f64,
}

impl BackupSchedule {
    /// Creates a schedule cutting a restore point every `interval` and
    /// restoring at `restore_gib_per_hour`.
    ///
    /// # Errors
    ///
    /// Rejects a zero interval and a non-positive or non-finite restore
    /// rate.
    pub fn try_new(interval: SimDuration, restore_gib_per_hour: f64) -> Result<Self, BackupError> {
        if interval.is_zero() {
            return Err(BackupError::ZeroInterval);
        }
        if !(restore_gib_per_hour > 0.0 && restore_gib_per_hour.is_finite()) {
            return Err(BackupError::BadRestoreRate(restore_gib_per_hour));
        }
        Ok(BackupSchedule {
            interval,
            restore_gib_per_hour,
        })
    }

    /// Panicking counterpart of [`BackupSchedule::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(interval: SimDuration, restore_gib_per_hour: f64) -> Self {
        BackupSchedule::try_new(interval, restore_gib_per_hour).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Time between restore points.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The most recent restore point at or before `t` (snapshots are
    /// anchored at `SimTime::ZERO`).
    #[must_use]
    pub fn last_snapshot_before(&self, t: SimTime) -> SimTime {
        let step = self.interval.as_nanos();
        SimTime::from_nanos(t.as_nanos() / step * step)
    }

    /// How much committed history a failure at `t` rolls back to the last
    /// restore point — the schedule's RPO contribution.
    #[must_use]
    pub fn data_loss_window(&self, t: SimTime) -> SimDuration {
        t.saturating_since(self.last_snapshot_before(t))
    }

    /// How long restoring `data_gib` takes at this schedule's rate.
    #[must_use]
    pub fn restore_duration(&self, data_gib: f64) -> SimDuration {
        SimDuration::from_secs_f64(data_gib.max(0.0) / self.restore_gib_per_hour * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_bad_knobs() {
        assert_eq!(
            BackupSchedule::try_new(SimDuration::ZERO, 100.0),
            Err(BackupError::ZeroInterval)
        );
        assert_eq!(
            BackupSchedule::try_new(SimDuration::from_hours(24), -1.0),
            Err(BackupError::BadRestoreRate(-1.0))
        );
        assert!(matches!(
            BackupSchedule::try_new(SimDuration::from_hours(24), f64::INFINITY),
            Err(BackupError::BadRestoreRate(_))
        ));
    }

    #[test]
    fn nightly_schedule_floors_to_midnight() {
        let s = BackupSchedule::new(SimDuration::from_hours(24), 200.0);
        let evening = SimTime::ZERO + SimDuration::from_days(10) + SimDuration::from_hours(19);
        assert_eq!(
            s.last_snapshot_before(evening),
            SimTime::ZERO + SimDuration::from_days(10)
        );
        assert_eq!(s.data_loss_window(evening), SimDuration::from_hours(19));
        // Exactly on the boundary the loss window is zero.
        let midnight = SimTime::ZERO + SimDuration::from_days(3);
        assert_eq!(s.data_loss_window(midnight), SimDuration::ZERO);
    }

    #[test]
    fn restore_scales_linearly_with_volume() {
        let s = BackupSchedule::new(SimDuration::from_hours(24), 200.0);
        assert_eq!(s.restore_duration(200.0), SimDuration::from_hours(1));
        assert_eq!(s.restore_duration(50.0), SimDuration::from_mins(15));
        assert_eq!(s.restore_duration(0.0), SimDuration::ZERO);
        assert_eq!(s.restore_duration(-5.0), SimDuration::ZERO);
    }
}
