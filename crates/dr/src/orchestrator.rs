//! The failover orchestration state machine, with split-brain fencing.
//!
//! [`RecoveryOrchestrator`] drives one primary/standby pair through the
//! canonical recovery arc:
//!
//! ```text
//! healthy → suspected → promoting → catching-up → restored
//!     ↑                                               │
//!     └──────────────── failback ────────────────────┘
//! ```
//!
//! driven each tick by a [`FailureDetector`] verdict. The transitions
//! are deliberately one-way past `promoting`: once promotion starts the
//! old primary is **fenced** — it holds a stale epoch and
//! [`RecoveryOrchestrator::may_serve`] refuses it even if its
//! heartbeats come back mid-recovery. A flapping primary therefore
//! cannot double-serve: at every instant at most one node is servable,
//! and writes accepted by the promoted standby can never be shadowed by
//! a zombie primary. The primary only re-earns the epoch through an
//! explicit failback, after staying healthy for the configured hold.
//!
//! Traced on the `"dr"` target: `dr.promote`, `dr.fence` (the first
//! zombie heartbeat after fencing), `dr.restore`, `dr.failback`.

use std::fmt;

use elc_simcore::time::{SimDuration, SimTime};
use elc_trace::{Field, Level};

use crate::detector::{FailureDetector, Verdict};
use crate::TRACE_TARGET;

/// The two ends of the replication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The original serving site.
    Primary,
    /// The recovery site promotion turns into the serving head.
    Standby,
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Node::Primary => "primary",
            Node::Standby => "standby",
        })
    }
}

/// Where the recovery arc currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrState {
    /// The primary serves; heartbeats on schedule.
    Healthy,
    /// Beats are being missed; recovery is armed but the primary still
    /// serves (it may just be slow).
    Suspected,
    /// The primary is confirmed dead and fenced; the standby is being
    /// promoted. Nobody serves.
    Promoting,
    /// Promotion done; the standby is replaying backlog / restoring the
    /// snapshot. Nobody serves.
    CatchingUp,
    /// The standby serves as the new head. The fenced primary waits for
    /// failback.
    Restored,
}

impl fmt::Display for DrState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DrState::Healthy => "healthy",
            DrState::Suspected => "suspected",
            DrState::Promoting => "promoting",
            DrState::CatchingUp => "catching-up",
            DrState::Restored => "restored",
        })
    }
}

/// Why a [`RecoveryOrchestrator`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrchestratorError {
    /// The failback hold was zero — the pair would flap on the first
    /// returning heartbeat.
    ZeroFailbackHold,
}

impl fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestratorError::ZeroFailbackHold => {
                write!(f, "failback hold must be positive")
            }
        }
    }
}

impl std::error::Error for OrchestratorError {}

/// The failover state machine. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOrchestrator {
    detector: FailureDetector,
    promotion_time: SimDuration,
    failback_hold: SimDuration,
    state: DrState,
    /// The serving epoch; whoever holds it may serve.
    epoch: u64,
    /// The epoch the primary holds. Stale after fencing.
    primary_epoch: u64,
    promotion_done: SimTime,
    catch_up_until: SimTime,
    primary_healthy_since: Option<SimTime>,
    fence_traced: bool,
    failovers: u32,
    failbacks: u32,
    fenced_ticks: u64,
}

impl RecoveryOrchestrator {
    /// Creates an orchestrator in `Healthy`: `detector` grades the
    /// primary's silence, promotion takes `promotion_time`, and failback
    /// requires the returned primary to stay healthy for
    /// `failback_hold`.
    ///
    /// # Errors
    ///
    /// Rejects a zero failback hold.
    pub fn try_new(
        detector: FailureDetector,
        promotion_time: SimDuration,
        failback_hold: SimDuration,
    ) -> Result<Self, OrchestratorError> {
        if failback_hold.is_zero() {
            return Err(OrchestratorError::ZeroFailbackHold);
        }
        Ok(RecoveryOrchestrator {
            detector,
            promotion_time,
            failback_hold,
            state: DrState::Healthy,
            epoch: 1,
            primary_epoch: 1,
            promotion_done: SimTime::ZERO,
            catch_up_until: SimTime::ZERO,
            primary_healthy_since: None,
            fence_traced: false,
            failovers: 0,
            failbacks: 0,
            fenced_ticks: 0,
        })
    }

    /// Panicking counterpart of [`RecoveryOrchestrator::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(
        detector: FailureDetector,
        promotion_time: SimDuration,
        failback_hold: SimDuration,
    ) -> Self {
        RecoveryOrchestrator::try_new(detector, promotion_time, failback_hold)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> DrState {
        self.state
    }

    /// The detector grading the primary.
    #[must_use]
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// True iff `node` may accept traffic right now. At most one node
    /// ever may — the fencing invariant E19's flap test pins.
    #[must_use]
    pub fn may_serve(&self, node: Node) -> bool {
        match node {
            Node::Primary => {
                matches!(self.state, DrState::Healthy | DrState::Suspected)
                    && self.primary_epoch == self.epoch
            }
            Node::Standby => self.state == DrState::Restored,
        }
    }

    /// True while nobody serves (the RTO window).
    #[must_use]
    pub fn service_down(&self) -> bool {
        !self.may_serve(Node::Primary) && !self.may_serve(Node::Standby)
    }

    /// Completed failovers (confirmed loss → promotion started).
    #[must_use]
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Completed failbacks (primary re-earned the epoch).
    #[must_use]
    pub fn failbacks(&self) -> u32 {
        self.failbacks
    }

    /// Ticks in which the fenced primary was alive but refused service —
    /// each one is a split-brain that did not happen.
    #[must_use]
    pub fn fenced_ticks(&self) -> u64 {
        self.fenced_ticks
    }

    /// Advances the machine one tick. `primary_alive` is the ground
    /// truth the heartbeats follow; `catch_up` is how long the standby
    /// would need to become the serving head if promotion finished now
    /// (the caller reads it off its `ReplicationLink`/`BackupSchedule`;
    /// it is consumed at the promoting → catching-up edge).
    pub fn tick(&mut self, now: SimTime, primary_alive: bool, catch_up: SimDuration) -> DrState {
        if primary_alive {
            self.detector.on_heartbeat(now);
        }
        let verdict = self.detector.poll(now);
        // Fencing accounting: a primary heartbeating while it no longer
        // holds the epoch is exactly the split-brain the guard absorbs.
        if primary_alive && self.primary_epoch != self.epoch {
            self.fenced_ticks += 1;
            if !self.fence_traced {
                self.fence_traced = true;
                if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
                    elc_trace::instant(
                        now.as_nanos(),
                        TRACE_TARGET,
                        "dr.fence",
                        Level::Warn,
                        &[
                            Field::u64("epoch", self.epoch),
                            Field::u64("stale_epoch", self.primary_epoch),
                        ],
                    );
                }
            }
        }
        match self.state {
            DrState::Healthy => match verdict {
                Verdict::Healthy => {}
                Verdict::Suspected => self.state = DrState::Suspected,
                Verdict::Confirmed => self.begin_promotion(now),
            },
            DrState::Suspected => match verdict {
                Verdict::Healthy => self.state = DrState::Healthy,
                Verdict::Suspected => {}
                Verdict::Confirmed => self.begin_promotion(now),
            },
            DrState::Promoting => {
                if now >= self.promotion_done {
                    self.catch_up_until = now + catch_up;
                    self.state = DrState::CatchingUp;
                }
            }
            DrState::CatchingUp => {
                if now >= self.catch_up_until {
                    self.state = DrState::Restored;
                    self.primary_healthy_since = None;
                    if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
                        elc_trace::instant(
                            now.as_nanos(),
                            TRACE_TARGET,
                            "dr.restore",
                            Level::Warn,
                            &[
                                Field::u64("epoch", self.epoch),
                                Field::u64("failovers", u64::from(self.failovers)),
                            ],
                        );
                    }
                }
            }
            DrState::Restored => {
                if primary_alive {
                    let since = *self.primary_healthy_since.get_or_insert(now);
                    if now.saturating_since(since) >= self.failback_hold {
                        // Failback: the primary re-syncs from the new
                        // head and re-earns the serving epoch.
                        self.epoch += 1;
                        self.primary_epoch = self.epoch;
                        self.state = DrState::Healthy;
                        self.primary_healthy_since = None;
                        self.fence_traced = false;
                        self.failbacks += 1;
                        if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
                            elc_trace::instant(
                                now.as_nanos(),
                                TRACE_TARGET,
                                "dr.failback",
                                Level::Warn,
                                &[
                                    Field::u64("epoch", self.epoch),
                                    Field::u64("failbacks", u64::from(self.failbacks)),
                                ],
                            );
                        }
                    }
                } else {
                    self.primary_healthy_since = None;
                }
            }
        }
        self.state
    }

    fn begin_promotion(&mut self, now: SimTime) {
        // Fence first: from this instant the primary's epoch is stale,
        // whatever its heartbeats do.
        self.epoch += 1;
        self.promotion_done = now + self.promotion_time;
        self.state = DrState::Promoting;
        self.failovers += 1;
        if elc_trace::enabled(TRACE_TARGET, Level::Warn) {
            elc_trace::instant(
                now.as_nanos(),
                TRACE_TARGET,
                "dr.promote",
                Level::Warn,
                &[
                    Field::u64("epoch", self.epoch),
                    Field::u64("failovers", u64::from(self.failovers)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orchestrator() -> RecoveryOrchestrator {
        RecoveryOrchestrator::new(
            // 10 s beats, suspect at 2 missed, confirm at 4 (40 s).
            FailureDetector::new(SimDuration::from_secs(10), 2, 4),
            SimDuration::from_secs(60),
            SimDuration::from_mins(10),
        )
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Drives the machine at a 10 s tick with `alive(t_secs)` as ground
    /// truth, asserting the fencing invariant the whole way.
    fn drive(
        o: &mut RecoveryOrchestrator,
        from_s: u64,
        to_s: u64,
        catch_up: SimDuration,
        alive: impl Fn(u64) -> bool,
    ) {
        let mut s = from_s;
        while s <= to_s {
            o.tick(secs(s), alive(s), catch_up);
            assert!(
                !(o.may_serve(Node::Primary) && o.may_serve(Node::Standby)),
                "split brain at {s}s in state {}",
                o.state()
            );
            s += 10;
        }
    }

    #[test]
    fn try_new_rejects_zero_failback_hold() {
        assert_eq!(
            RecoveryOrchestrator::try_new(
                FailureDetector::new(SimDuration::from_secs(10), 2, 4),
                SimDuration::from_secs(60),
                SimDuration::ZERO,
            ),
            Err(OrchestratorError::ZeroFailbackHold)
        );
    }

    #[test]
    fn full_arc_heals_through_failback() {
        let mut o = orchestrator();
        // Healthy until 100 s, dead until 400 s, then back for good.
        let alive = |s: u64| !(100..400).contains(&s);
        drive(&mut o, 0, 2000, SimDuration::from_secs(30), alive);
        assert_eq!(o.state(), DrState::Healthy, "failback must complete");
        assert_eq!(o.failovers(), 1);
        assert_eq!(o.failbacks(), 1);
        assert!(o.may_serve(Node::Primary));
        assert!(!o.may_serve(Node::Standby));
    }

    #[test]
    fn suspected_heals_without_promotion() {
        let mut o = orchestrator();
        // Dead for 25 s: long enough to suspect (20 s), not to confirm
        // (40 s).
        let alive = |s: u64| !(100..125).contains(&s);
        drive(&mut o, 0, 300, SimDuration::ZERO, alive);
        assert_eq!(o.state(), DrState::Healthy);
        assert_eq!(o.failovers(), 0);
        assert_eq!(o.fenced_ticks(), 0);
    }

    #[test]
    fn flapping_primary_is_fenced_not_double_served() {
        let mut o = orchestrator();
        // The primary dies at 100 s, flaps back 60 s later — *after*
        // confirmation — flaps dead again, and finally returns at 600 s.
        let alive = |s: u64| !(100..200).contains(&s) && !(260..600).contains(&s);
        drive(&mut o, 0, 520, SimDuration::from_secs(30), alive);
        // The flap at 200..260 s landed mid-recovery: the primary was
        // alive, fenced, and refused — counted, not served.
        assert!(o.fenced_ticks() > 0, "the flap must hit the fence");
        assert_eq!(o.failovers(), 1, "the flap must not re-promote");
        // Recovery completed despite the flapping.
        assert_eq!(o.state(), DrState::Restored);
        assert!(o.may_serve(Node::Standby));
        assert!(!o.may_serve(Node::Primary), "stale epoch, still fenced");
        // And once back for good, failback hands the epoch home.
        drive(&mut o, 530, 1400, SimDuration::ZERO, |_| true);
        assert_eq!(o.state(), DrState::Healthy);
        assert_eq!(o.failbacks(), 1);
        assert!(o.may_serve(Node::Primary));
    }

    #[test]
    fn service_down_spans_promotion_and_catch_up_only() {
        let mut o = orchestrator();
        let alive = |s: u64| s < 100;
        let mut down_states = Vec::new();
        let mut s = 0;
        while s <= 400 {
            o.tick(secs(s), alive(s), SimDuration::from_secs(30));
            if o.service_down() {
                down_states.push(o.state());
            }
            s += 10;
        }
        assert!(down_states.contains(&DrState::Promoting));
        assert!(down_states.contains(&DrState::CatchingUp));
        assert!(!down_states.contains(&DrState::Restored));
        assert!(!down_states.contains(&DrState::Healthy));
    }

    #[test]
    fn recovery_arc_is_traced() {
        use elc_trace::{TraceFilter, Tracer};
        let ((), tracer) =
            elc_trace::with_tracer(Tracer::new(TraceFilter::all(Level::Warn)), || {
                let mut o = orchestrator();
                let alive = |s: u64| !(100..300).contains(&s);
                drive(&mut o, 0, 1300, SimDuration::from_secs(30), alive);
            });
        let names: Vec<_> = tracer
            .events()
            .map(|e| tracer.resolve(e.name).to_string())
            .collect();
        for needle in [
            "dr.suspect",
            "dr.confirm",
            "dr.promote",
            "dr.fence",
            "dr.restore",
            "dr.failback",
        ] {
            assert!(names.contains(&needle.to_string()), "missing {needle}");
        }
    }
}
