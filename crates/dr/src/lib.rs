//! # elc-dr — deterministic disaster recovery
//!
//! `elc-cloud` models the *loss* of a site and `elc-resil` reacts to it
//! tick by tick, but nothing in the stack ever brought data or service
//! *back* — the paper's deployment-model comparison (and arXiv:1305.2616's
//! "backup and recovery" motive for cloud adoption) hinges on exactly
//! that. This crate is the recovery layer: how much committed data a
//! failure destroys (**RPO**) and how long until students can submit
//! again (**RTO**).
//!
//! The pieces, each a pure function of `(configuration, sim time,
//! caller-supplied rates)`:
//!
//! * [`replication::ReplicationLink`] — sync, async-with-lag, or
//!   snapshot-shipping; un-replicated writes are *integrated* from the
//!   write rates the caller reads off its `WorkloadSource`, so the lag at
//!   any instant is the exact RPO a failure there would cost,
//! * [`backup::BackupSchedule`] — periodic restore points plus a restore
//!   clock that scales with data volume,
//! * [`detector::FailureDetector`] — heartbeat suspicion with
//!   deterministic missed-beat timeouts, traced `dr.suspect` /
//!   `dr.confirm`,
//! * [`orchestrator::RecoveryOrchestrator`] — the failover state machine
//!   (healthy → suspected → promoting → catching-up → restored, then
//!   failback), with an epoch fencing guard so a flapping primary can
//!   never double-serve,
//! * [`rpo::RpoRto`] — the drill scorecard: data-minutes lost, writes
//!   lost, seconds to restored service.
//!
//! Nothing here reads a wall clock or an OS entropy source; every
//! decision replays byte-identically at any `--threads`/`--shards`,
//! which is what lets E19 pin its goldens. Recovery activity is traced
//! on the `"dr"` target, sim-time stamped and guarded by
//! [`elc_trace::enabled`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trace target for every event this crate records.
pub const TRACE_TARGET: &str = "dr";

pub mod backup;
pub mod detector;
pub mod orchestrator;
pub mod replication;
pub mod rpo;

pub use backup::BackupSchedule;
pub use detector::{FailureDetector, Verdict};
pub use orchestrator::{DrState, Node, RecoveryOrchestrator};
pub use replication::{ReplicationLink, ReplicationMode};
pub use rpo::RpoRto;
