//! Replication links: how far behind the standby copy runs.
//!
//! A [`ReplicationLink`] tracks the writes the primary has committed
//! that the standby has *not* yet durably received — the exact data a
//! failure at that instant destroys. The caller integrates it forward
//! with the write rate its `WorkloadSource` implies
//! ([`ReplicationLink::advance`]); the link never samples randomness, so
//! the lag is a pure function of the rate history.

use std::fmt;

use elc_simcore::time::{SimDuration, SimTime};

/// How the standby copy is kept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationMode {
    /// Every write is acknowledged by the standby before it commits:
    /// zero lag, zero data loss — the multi-AZ posture.
    Sync,
    /// Writes stream to the standby at up to `ship_rate` writes/s;
    /// whenever the primary writes faster, lag accumulates and is lost
    /// on failure — the warm-standby posture.
    Async {
        /// Standby apply bandwidth in writes per second.
        ship_rate: f64,
    },
    /// The standby only ever has the last shipped snapshot; everything
    /// since the most recent `interval` boundary is lost on failure —
    /// the tape / mutual-aid posture.
    Snapshot {
        /// Time between shipped restore points.
        interval: SimDuration,
    },
}

impl fmt::Display for ReplicationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReplicationMode::Sync => f.write_str("sync"),
            ReplicationMode::Async { ship_rate } => write!(f, "async(ship={ship_rate}/s)"),
            ReplicationMode::Snapshot { interval } => {
                write!(f, "snapshot(every={}h)", interval.as_hours_f64())
            }
        }
    }
}

/// Why a [`ReplicationLink`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationError {
    /// An async link's ship rate was zero, negative, or not finite.
    BadShipRate(f64),
    /// A snapshot link's interval was zero.
    ZeroInterval,
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::BadShipRate(r) => {
                write!(f, "async ship rate must be positive and finite, got {r}")
            }
            ReplicationError::ZeroInterval => write!(f, "snapshot interval must be positive"),
        }
    }
}

impl std::error::Error for ReplicationError {}

/// A primary → standby replication link. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationLink {
    mode: ReplicationMode,
    /// Writes committed on the primary but not durable on the standby.
    pending: f64,
    /// The instant the integration has reached.
    advanced_to: SimTime,
}

impl ReplicationLink {
    /// Creates a link in `mode` with nothing pending, integrated from
    /// `SimTime::ZERO`.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive or non-finite async ship rate and a zero
    /// snapshot interval.
    pub fn try_new(mode: ReplicationMode) -> Result<Self, ReplicationError> {
        match mode {
            ReplicationMode::Async { ship_rate } if !(ship_rate > 0.0 && ship_rate.is_finite()) => {
                return Err(ReplicationError::BadShipRate(ship_rate));
            }
            ReplicationMode::Snapshot { interval } if interval.is_zero() => {
                return Err(ReplicationError::ZeroInterval);
            }
            _ => {}
        }
        Ok(ReplicationLink {
            mode,
            pending: 0.0,
            advanced_to: SimTime::ZERO,
        })
    }

    /// Panicking counterpart of [`ReplicationLink::try_new`].
    ///
    /// # Panics
    ///
    /// Panics when `try_new` would reject the configuration.
    #[must_use]
    pub fn new(mode: ReplicationMode) -> Self {
        ReplicationLink::try_new(mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The link's mode.
    #[must_use]
    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    /// The instant [`ReplicationLink::advance`] has integrated to.
    #[must_use]
    pub fn advanced_to(&self) -> SimTime {
        self.advanced_to
    }

    /// Integrates the link forward to `to`, assuming the primary commits
    /// `write_rate` writes/s over the whole span. Calls with `to` in the
    /// past are ignored (the integration clock never rewinds).
    pub fn advance(&mut self, to: SimTime, write_rate: f64) {
        if to <= self.advanced_to {
            return;
        }
        let write_rate = write_rate.max(0.0);
        match self.mode {
            ReplicationMode::Sync => {
                // The standby acknowledges before commit: never behind.
                self.pending = 0.0;
            }
            ReplicationMode::Async { ship_rate } => {
                let dt = to.saturating_since(self.advanced_to).as_secs_f64();
                self.pending = (self.pending + (write_rate - ship_rate) * dt).max(0.0);
            }
            ReplicationMode::Snapshot { interval } => {
                // Walk each snapshot boundary inside the span: pending
                // accumulates up to a boundary, then the shipped snapshot
                // zeroes it.
                let step = interval.as_nanos();
                let mut from = self.advanced_to;
                loop {
                    let next_boundary =
                        SimTime::from_nanos((from.as_nanos() / step + 1).saturating_mul(step));
                    if next_boundary > to {
                        break;
                    }
                    self.pending += write_rate * next_boundary.saturating_since(from).as_secs_f64();
                    self.pending = 0.0;
                    from = next_boundary;
                }
                self.pending += write_rate * to.saturating_since(from).as_secs_f64();
            }
        }
        self.advanced_to = to;
    }

    /// Writes committed on the primary that the standby does not have —
    /// the data a failure right now destroys (the instantaneous RPO, in
    /// writes).
    #[must_use]
    pub fn pending_writes(&self) -> f64 {
        self.pending
    }

    /// How long the promoted standby needs to drain the pending backlog
    /// while the primary keeps writing at `write_rate`. `None` when the
    /// link can never catch up (ship rate ≤ write rate); sync and
    /// snapshot links report zero — there is no log to replay, what the
    /// standby has *is* the restore point.
    #[must_use]
    pub fn catch_up_duration(&self, write_rate: f64) -> Option<SimDuration> {
        match self.mode {
            ReplicationMode::Sync | ReplicationMode::Snapshot { .. } => Some(SimDuration::ZERO),
            ReplicationMode::Async { ship_rate } => {
                if self.pending <= 0.0 {
                    return Some(SimDuration::ZERO);
                }
                let headroom = ship_rate - write_rate.max(0.0);
                if headroom <= 0.0 {
                    return None;
                }
                Some(SimDuration::from_secs_f64(self.pending / headroom))
            }
        }
    }

    /// Declares the standby promoted: its copy becomes the new history
    /// head, so nothing is pending any more. Returns the writes that were
    /// lost with the old primary.
    pub fn fail_over(&mut self) -> f64 {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn try_new_rejects_bad_knobs() {
        assert_eq!(
            ReplicationLink::try_new(ReplicationMode::Async { ship_rate: 0.0 }),
            Err(ReplicationError::BadShipRate(0.0))
        );
        assert!(matches!(
            ReplicationLink::try_new(ReplicationMode::Async {
                ship_rate: f64::NAN
            }),
            Err(ReplicationError::BadShipRate(_))
        ));
        assert_eq!(
            ReplicationLink::try_new(ReplicationMode::Snapshot {
                interval: SimDuration::ZERO
            }),
            Err(ReplicationError::ZeroInterval)
        );
    }

    #[test]
    fn sync_link_never_accumulates() {
        let mut link = ReplicationLink::new(ReplicationMode::Sync);
        link.advance(secs(3600), 500.0);
        assert_eq!(link.pending_writes(), 0.0);
        assert_eq!(link.catch_up_duration(500.0), Some(SimDuration::ZERO));
    }

    #[test]
    fn async_link_lags_by_the_rate_excess_and_drains_with_headroom() {
        let mut link = ReplicationLink::new(ReplicationMode::Async { ship_rate: 10.0 });
        // 60 s at 25 writes/s against a 10/s ship rate: 15/s excess.
        link.advance(secs(60), 25.0);
        assert!((link.pending_writes() - 900.0).abs() < 1e-9);
        // With the primary quiet, 900 pending at 10/s drains in 90 s.
        assert_eq!(
            link.catch_up_duration(0.0),
            Some(SimDuration::from_secs(90))
        );
        // Writing as fast as the ship rate: never catches up.
        assert_eq!(link.catch_up_duration(10.0), None);
        // Under-rate writing shrinks the backlog, clamped at zero.
        link.advance(secs(1000), 0.0);
        assert_eq!(link.pending_writes(), 0.0);
    }

    #[test]
    fn snapshot_link_resets_at_each_boundary() {
        let mut link = ReplicationLink::new(ReplicationMode::Snapshot {
            interval: SimDuration::from_hours(1),
        });
        // Half an hour in: half an hour of writes pending.
        link.advance(secs(1800), 2.0);
        assert!((link.pending_writes() - 3600.0).abs() < 1e-9);
        // Crossing the boundary ships the snapshot; only the overhang
        // stays pending.
        link.advance(secs(3600 + 600), 2.0);
        assert!((link.pending_writes() - 1200.0).abs() < 1e-9);
        // A big jump across several boundaries keeps only the tail.
        link.advance(secs(5 * 3600 + 60), 2.0);
        assert!((link.pending_writes() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn advance_ignores_time_travel_and_fail_over_takes_the_loss() {
        let mut link = ReplicationLink::new(ReplicationMode::Async { ship_rate: 1.0 });
        link.advance(secs(100), 3.0);
        let before = link.pending_writes();
        link.advance(secs(50), 1000.0);
        assert_eq!(link.pending_writes(), before, "rewind must be a no-op");
        let lost = link.fail_over();
        assert!((lost - 200.0).abs() < 1e-9);
        assert_eq!(link.pending_writes(), 0.0);
    }
}
