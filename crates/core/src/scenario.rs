//! Evaluation scenarios.
//!
//! A [`Scenario`] bundles everything an experiment needs: the institution's
//! size, its semester calendar, the learners' connectivity, a seed and a
//! planning horizon. Presets cover the populations the paper's introduction
//! motivates, from a small college to a national platform reaching rural
//! learners.

use elc_elearn::calendar::AcademicCalendar;
use elc_elearn::workload::WorkloadModel;
use elc_net::link::LinkProfile;
use elc_net::outage::OutageModel;
use elc_simcore::time::{SimDuration, SimTime};

/// A named evaluation context.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    students: u32,
    seed: u64,
    years: f64,
    link: LinkProfile,
    outages: OutageModel,
    calendar: AcademicCalendar,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if `students` is zero or `years` is not positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        students: u32,
        seed: u64,
        years: f64,
        link: LinkProfile,
        outages: OutageModel,
    ) -> Self {
        assert!(students > 0, "need students");
        assert!(years > 0.0, "need a horizon");
        Scenario {
            name: name.into(),
            students,
            seed,
            years,
            link,
            outages,
            calendar: AcademicCalendar::standard_semester(SimTime::ZERO),
        }
    }

    /// A 2 000-student college on metro broadband.
    #[must_use]
    pub fn small_college(seed: u64) -> Self {
        Scenario::new(
            "small-college",
            2_000,
            seed,
            3.0,
            LinkProfile::MetroInternet,
            OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8)),
        )
    }

    /// A 25 000-student university on metro broadband.
    #[must_use]
    pub fn university(seed: u64) -> Self {
        Scenario::new(
            "university",
            25_000,
            seed,
            3.0,
            LinkProfile::MetroInternet,
            OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8)),
        )
    }

    /// A 150 000-learner national platform.
    #[must_use]
    pub fn national_platform(seed: u64) -> Self {
        Scenario::new(
            "national-platform",
            150_000,
            seed,
            3.0,
            LinkProfile::MetroInternet,
            OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8)),
        )
    }

    /// Rural learners (the paper's closing motivation): degraded links,
    /// frequent outages.
    #[must_use]
    pub fn rural_learners(seed: u64) -> Self {
        Scenario::new(
            "rural-learners",
            10_000,
            seed,
            3.0,
            LinkProfile::RuralInternet,
            OutageModel::new(SimDuration::from_hours(30), SimDuration::from_mins(12)),
        )
    }

    /// The scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enrolled students.
    #[must_use]
    pub fn students(&self) -> u32 {
        self.students
    }

    /// Root seed; experiments derive their own streams from it.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Planning horizon in years.
    #[must_use]
    pub fn years(&self) -> f64 {
        self.years
    }

    /// Learner access-link profile.
    #[must_use]
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// Learner connectivity outage process.
    #[must_use]
    pub fn outages(&self) -> OutageModel {
        self.outages
    }

    /// The semester calendar.
    #[must_use]
    pub fn calendar(&self) -> AcademicCalendar {
        self.calendar
    }

    /// The institutional workload model.
    #[must_use]
    pub fn workload(&self) -> WorkloadModel {
        WorkloadModel::standard(self.students, self.calendar)
    }

    /// A copy with a different root seed (for replicated runs).
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Scenario {
        let mut s = self.clone();
        s.seed = seed;
        s
    }

    /// A copy with a different population (for sweeps).
    #[must_use]
    pub fn with_students(&self, students: u32) -> Scenario {
        let mut s = self.clone();
        assert!(students > 0, "need students");
        s.students = students;
        s.name = format!("{}@{}", self.name, students);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let small = Scenario::small_college(1);
        let uni = Scenario::university(1);
        let national = Scenario::national_platform(1);
        assert!(small.students() < uni.students());
        assert!(uni.students() < national.students());
    }

    #[test]
    fn rural_is_harsher() {
        let rural = Scenario::rural_learners(1);
        let uni = Scenario::university(1);
        assert_eq!(rural.link(), LinkProfile::RuralInternet);
        assert!(rural.outages().availability() < uni.outages().availability());
    }

    #[test]
    fn workload_matches_population() {
        let s = Scenario::university(1);
        assert_eq!(s.workload().students(), 25_000);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let s = Scenario::university(1).with_seed(99);
        assert_eq!(s.seed(), 99);
        assert_eq!(s.name(), "university");
        assert_eq!(s.students(), 25_000);
    }

    #[test]
    fn with_students_renames() {
        let s = Scenario::university(1).with_students(5_000);
        assert_eq!(s.students(), 5_000);
        assert!(s.name().contains("5000"));
        assert_eq!(s.seed(), 1);
    }

    #[test]
    #[should_panic(expected = "need students")]
    fn zero_students_rejected() {
        let _ = Scenario::university(1).with_students(0);
    }

    #[test]
    fn accessors() {
        let s = Scenario::small_college(7);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.years(), 3.0);
        assert_eq!(s.name(), "small-college");
        assert_eq!(s.calendar().term_start(), SimTime::ZERO);
    }
}
