//! Evaluation scenarios.
//!
//! A [`Scenario`] bundles everything an experiment needs: the institution's
//! size, its semester calendar, the learners' connectivity, a seed and a
//! planning horizon. Presets cover the populations the paper's introduction
//! motivates, from a small college to a national platform reaching rural
//! learners.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use elc_elearn::calendar::AcademicCalendar;
use elc_elearn::source::WorkloadSource;
use elc_elearn::workload::WorkloadModel;
use elc_fluid::Fidelity;
use elc_net::link::LinkProfile;
use elc_net::outage::OutageModel;
use elc_resil::chaos::ChaosSpec;
use elc_simcore::time::{SimDuration, SimTime};
use elc_wltrace::{TraceHandout, TraceRecorder, WorkloadTrace};

/// Why a [`ScenarioBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioError {
    /// The population was zero.
    NoStudents,
    /// The planning horizon was not a positive, finite number of years.
    BadHorizon(f64),
    /// The shard count was zero.
    NoShards,
    /// The replay trace was empty or failed validation.
    BadTrace,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoStudents => write!(f, "scenario needs at least one student"),
            ScenarioError::BadHorizon(y) => {
                write!(f, "scenario horizon must be positive and finite, got {y}")
            }
            ScenarioError::NoShards => write!(f, "scenario needs at least one shard"),
            ScenarioError::BadTrace => {
                write!(f, "scenario workload trace is empty or failed validation")
            }
        }
    }
}

impl Error for ScenarioError {}

/// Where a scenario's demand comes from.
///
/// The default is [`Generated`](WorkloadSpec::Generated): the synthetic
/// [`WorkloadModel`] calibrated to the scenario's population and calendar.
/// [`Trace`](WorkloadSpec::Trace) replays a recorded [`WorkloadTrace`]
/// instead, handing each requested source its own recorded stream through
/// a shared [`TraceHandout`].
#[derive(Debug)]
enum WorkloadSpec {
    /// Synthesise demand from the standard model (population + calendar).
    Generated,
    /// Drive demand from an explicitly configured model.
    Model(WorkloadModel),
    /// Replay a recorded trace; the handout assigns streams to sources.
    Trace(TraceHandout),
}

impl Clone for WorkloadSpec {
    fn clone(&self) -> Self {
        match self {
            WorkloadSpec::Generated => WorkloadSpec::Generated,
            WorkloadSpec::Model(model) => WorkloadSpec::Model(model.clone()),
            // A cloned scenario starts its own replay: stream claims are
            // per scenario instance, so parallel replication workers
            // (which clone, then reseed) never race on a shared handout.
            WorkloadSpec::Trace(handout) => WorkloadSpec::Trace(
                TraceHandout::new(Arc::clone(handout.trace()))
                    .expect("an existing handout's trace has streams"),
            ),
        }
    }
}

impl WorkloadSpec {
    /// Structural equality: handout claim state and recorded content both
    /// compare by the trace's value, never by allocation identity.
    fn matches(&self, other: &WorkloadSpec) -> bool {
        match (self, other) {
            (WorkloadSpec::Generated, WorkloadSpec::Generated) => true,
            (WorkloadSpec::Model(a), WorkloadSpec::Model(b)) => a == b,
            (WorkloadSpec::Trace(a), WorkloadSpec::Trace(b)) => {
                a.trace().as_ref() == b.trace().as_ref()
            }
            _ => false,
        }
    }
}

/// Builds a [`Scenario`] field by field, validating on [`build`].
///
/// Only the name and population are mandatory; everything else defaults
/// to the standard preset configuration (seed 0, three academic years,
/// metro broadband with rare short outages, standard semester calendar).
///
/// ```
/// use elc_core::scenario::Scenario;
/// use elc_net::link::LinkProfile;
///
/// let s = Scenario::builder("evening-school", 800)
///     .seed(42)
///     .years(1.5)
///     .link(LinkProfile::RuralInternet)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(s.students(), 800);
/// assert_eq!(s.years(), 1.5);
/// ```
///
/// [`build`]: ScenarioBuilder::build
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    students: u32,
    seed: u64,
    years: f64,
    link: LinkProfile,
    outages: OutageModel,
    calendar: AcademicCalendar,
    chaos: Option<ChaosSpec>,
    shards: u32,
    fidelity: Fidelity,
    model: Option<WorkloadModel>,
    trace: Option<Arc<WorkloadTrace>>,
}

impl ScenarioBuilder {
    /// The outage process shared by the wired presets.
    fn standard_outages() -> OutageModel {
        OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8))
    }

    fn new(name: impl Into<String>, students: u32) -> Self {
        ScenarioBuilder {
            name: name.into(),
            students,
            seed: 0,
            years: 3.0,
            link: LinkProfile::MetroInternet,
            outages: Self::standard_outages(),
            calendar: AcademicCalendar::standard_semester(SimTime::ZERO),
            chaos: None,
            shards: 1,
            fidelity: Fidelity::Event,
            model: None,
            trace: None,
        }
    }

    /// Sets the root seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the planning horizon in years (default 3.0).
    #[must_use]
    pub fn years(mut self, years: f64) -> Self {
        self.years = years;
        self
    }

    /// Sets the learner access-link profile (default metro broadband).
    #[must_use]
    pub fn link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Sets the connectivity outage process (default: rare, short).
    #[must_use]
    pub fn outages(mut self, outages: OutageModel) -> Self {
        self.outages = outages;
        self
    }

    /// Sets the academic calendar (default: standard semester from t=0).
    #[must_use]
    pub fn calendar(mut self, calendar: AcademicCalendar) -> Self {
        self.calendar = calendar;
        self
    }

    /// Sets the chaos-injection campaign for fault experiments (default:
    /// none — experiments that inject faults fall back to their own
    /// default campaign; see E16).
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the shard count for intra-replication parallelism (default
    /// 1). Output is byte-identical at any shard count; shards only
    /// change how a run is scheduled onto cores.
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the simulation fidelity (default [`Fidelity::Event`], the
    /// exact per-request path). `Fluid` integrates rate flows on coarse
    /// ticks; `Auto` switches per component. Experiments that support
    /// fluid mode read this; the rest ignore it (see EXPERIMENTS.md).
    #[must_use]
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Drives the scenario's demand from an explicitly configured
    /// workload model instead of the standard one (default: synthesise
    /// from the population and calendar). Clears any replay trace set
    /// earlier — the last workload choice wins.
    #[must_use]
    pub fn workload_model(mut self, model: WorkloadModel) -> Self {
        self.model = Some(model);
        self.trace = None;
        self
    }

    /// Replays a recorded workload trace instead of synthesising demand.
    /// Clears any explicit model set earlier — the last workload choice
    /// wins. The trace's recorded population replaces the builder's
    /// student count so capacity and cost planning match the replayed
    /// demand.
    #[must_use]
    pub fn workload_trace(mut self, trace: Arc<WorkloadTrace>) -> Self {
        self.trace = Some(trace);
        self.model = None;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the population is zero, the horizon
    /// is not a positive, finite number of years, the shard count is
    /// zero, or a configured replay trace is empty or invalid.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        if self.students == 0 {
            return Err(ScenarioError::NoStudents);
        }
        if !(self.years.is_finite() && self.years > 0.0) {
            return Err(ScenarioError::BadHorizon(self.years));
        }
        if self.shards == 0 {
            return Err(ScenarioError::NoShards);
        }
        let mut students = self.students;
        let workload = match (self.trace, self.model) {
            (Some(trace), _) => {
                if trace.validate().is_err() {
                    return Err(ScenarioError::BadTrace);
                }
                students = trace.students.max(1);
                let handout = TraceHandout::new(trace).map_err(|_| ScenarioError::BadTrace)?;
                WorkloadSpec::Trace(handout)
            }
            (None, Some(model)) => WorkloadSpec::Model(model),
            (None, None) => WorkloadSpec::Generated,
        };
        Ok(Scenario {
            name: self.name,
            students,
            seed: self.seed,
            years: self.years,
            link: self.link,
            outages: self.outages,
            calendar: self.calendar,
            chaos: self.chaos,
            shards: self.shards,
            fidelity: self.fidelity,
            workload,
            recorder: None,
        })
    }
}

/// A named evaluation context.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    students: u32,
    seed: u64,
    years: f64,
    link: LinkProfile,
    outages: OutageModel,
    calendar: AcademicCalendar,
    chaos: Option<ChaosSpec>,
    shards: u32,
    fidelity: Fidelity,
    workload: WorkloadSpec,
    recorder: Option<TraceRecorder>,
}

/// Equality is structural configuration, not runtime bookkeeping: replay
/// traces compare by content (never by which handout allocation assigns
/// their streams) and an attached recorder — a pure observation tee — is
/// ignored.
impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.students == other.students
            && self.seed == other.seed
            && self.years == other.years
            && self.link == other.link
            && self.outages == other.outages
            && self.calendar == other.calendar
            && self.chaos == other.chaos
            && self.shards == other.shards
            && self.fidelity == other.fidelity
            && self.workload.matches(&other.workload)
    }
}

impl Scenario {
    /// Starts building a scenario for `students` learners named `name`.
    ///
    /// See [`ScenarioBuilder`] for the optional knobs and defaults.
    #[must_use]
    pub fn builder(name: impl Into<String>, students: u32) -> ScenarioBuilder {
        ScenarioBuilder::new(name, students)
    }

    /// Creates a scenario from positional arguments.
    ///
    /// # Panics
    ///
    /// Panics if `students` is zero or `years` is not positive.
    #[deprecated(
        since = "0.1.0",
        note = "use `Scenario::builder(name, students)…build()`, which validates instead of panicking"
    )]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        students: u32,
        seed: u64,
        years: f64,
        link: LinkProfile,
        outages: OutageModel,
    ) -> Self {
        Scenario::builder(name, students)
            .seed(seed)
            .years(years)
            .link(link)
            .outages(outages)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// A 2 000-student college on metro broadband.
    #[must_use]
    pub fn small_college(seed: u64) -> Self {
        Scenario::builder("small-college", 2_000)
            .seed(seed)
            .build()
            .expect("preset is valid")
    }

    /// A 25 000-student university on metro broadband.
    #[must_use]
    pub fn university(seed: u64) -> Self {
        Scenario::builder("university", 25_000)
            .seed(seed)
            .build()
            .expect("preset is valid")
    }

    /// A 150 000-learner national platform.
    #[must_use]
    pub fn national_platform(seed: u64) -> Self {
        Scenario::builder("national-platform", 150_000)
            .seed(seed)
            .build()
            .expect("preset is valid")
    }

    /// A 5 000 000-student national exam-day platform spread over four
    /// regions — the MOOC-scale regime. Event-level simulation of a day
    /// at this size needs tens of billions of events; the preset
    /// therefore defaults to [`Fidelity::Auto`], and the event path is
    /// refused by the CLI feasibility guard (see
    /// `cli_args::check_fidelity_feasible`).
    #[must_use]
    pub fn national_5m(seed: u64) -> Self {
        Scenario::builder("national-5m", 5_000_000)
            .seed(seed)
            .shards(4)
            .fidelity(Fidelity::Auto)
            .build()
            .expect("preset is valid")
    }

    /// Rural learners (the paper's closing motivation): degraded links,
    /// frequent outages.
    #[must_use]
    pub fn rural_learners(seed: u64) -> Self {
        Scenario::builder("rural-learners", 10_000)
            .seed(seed)
            .link(LinkProfile::RuralInternet)
            .outages(OutageModel::new(
                SimDuration::from_hours(30),
                SimDuration::from_mins(12),
            ))
            .build()
            .expect("preset is valid")
    }

    /// The scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enrolled students.
    #[must_use]
    pub fn students(&self) -> u32 {
        self.students
    }

    /// Root seed; experiments derive their own streams from it.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Planning horizon in years.
    #[must_use]
    pub fn years(&self) -> f64 {
        self.years
    }

    /// Learner access-link profile.
    #[must_use]
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// Learner connectivity outage process.
    #[must_use]
    pub fn outages(&self) -> OutageModel {
        self.outages
    }

    /// The semester calendar.
    #[must_use]
    pub fn calendar(&self) -> AcademicCalendar {
        self.calendar
    }

    /// The chaos campaign, if one was configured (`None` lets fault
    /// experiments pick their default).
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosSpec> {
        self.chaos.as_ref()
    }

    /// A copy with the given chaos campaign.
    #[must_use]
    pub fn with_chaos(&self, chaos: ChaosSpec) -> Scenario {
        let mut s = self.clone();
        s.chaos = Some(chaos);
        s
    }

    /// Shard count for intra-replication parallelism (default 1).
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// A copy with the given shard count. Sharding never changes what a
    /// run computes — only how it is spread over cores — so reports stay
    /// byte-identical at any value.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    #[must_use]
    pub fn with_shards(&self, shards: u32) -> Scenario {
        assert!(shards > 0, "need at least one shard");
        let mut s = self.clone();
        s.shards = shards;
        s
    }

    /// The simulation fidelity (default [`Fidelity::Event`]).
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// A copy with the given simulation fidelity. In the default
    /// `Event` fidelity every output is byte-identical to the pre-fluid
    /// simulator; `Fluid`/`Auto` trade per-request exactness for ~100×
    /// cheaper ticks in the experiments that support them.
    #[must_use]
    pub fn with_fidelity(&self, fidelity: Fidelity) -> Scenario {
        let mut s = self.clone();
        s.fidelity = fidelity;
        s
    }

    /// The institutional demand source.
    ///
    /// Generated scenarios return the standard [`WorkloadModel`]; a
    /// scenario configured with [`workload_trace`] returns a
    /// [`TraceReplayer`](elc_wltrace::TraceReplayer) bound lazily to the
    /// next recorded stream. When a recorder is
    /// [attached](Scenario::attach_recorder), the source is wrapped in a
    /// recording tee that observes every query without perturbing it.
    ///
    /// [`workload_trace`]: ScenarioBuilder::workload_trace
    #[must_use]
    pub fn workload(&self) -> Box<dyn WorkloadSource> {
        let base: Box<dyn WorkloadSource> = match &self.workload {
            WorkloadSpec::Generated => Box::new(
                WorkloadModel::builder(self.students, self.calendar)
                    .build()
                    .expect("population validated at scenario build"),
            ),
            WorkloadSpec::Model(model) => Box::new(model.clone()),
            WorkloadSpec::Trace(handout) => Box::new(handout.source()),
        };
        match &self.recorder {
            Some(recorder) => recorder.wrap(base),
            None => base,
        }
    }

    /// The concrete analytic workload model, for closed-form consumers
    /// (capacity planning, cost models) that need more than the
    /// [`WorkloadSource`] sampling surface.
    ///
    /// Trace-driven scenarios fall back to the standard model calibrated
    /// to the trace's recorded population, so cost columns stay
    /// comparable across generated and replayed runs of the same cohort.
    #[must_use]
    pub fn workload_model(&self) -> WorkloadModel {
        match &self.workload {
            WorkloadSpec::Model(model) => model.clone(),
            WorkloadSpec::Generated | WorkloadSpec::Trace(_) => {
                WorkloadModel::builder(self.students, self.calendar)
                    .build()
                    .expect("population validated at scenario build")
            }
        }
    }

    /// The replay trace driving this scenario, if one is configured.
    #[must_use]
    pub fn replay_trace(&self) -> Option<&Arc<WorkloadTrace>> {
        match &self.workload {
            WorkloadSpec::Trace(handout) => Some(handout.trace()),
            WorkloadSpec::Generated | WorkloadSpec::Model(_) => None,
        }
    }

    /// A copy that replays `trace` instead of synthesising demand. The
    /// trace's recorded population replaces the scenario's student count
    /// so capacity and cost planning match the replayed demand.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::BadTrace`] when the trace is empty or
    /// fails validation.
    pub fn with_workload_trace(
        &self,
        trace: Arc<WorkloadTrace>,
    ) -> Result<Scenario, ScenarioError> {
        if trace.validate().is_err() {
            return Err(ScenarioError::BadTrace);
        }
        let mut s = self.clone();
        s.students = trace.students.max(1);
        s.workload =
            WorkloadSpec::Trace(TraceHandout::new(trace).map_err(|_| ScenarioError::BadTrace)?);
        Ok(s)
    }

    /// Tees every workload source this scenario hands out into
    /// `recorder`, so a generator-driven run can be captured with
    /// [`TraceRecorder::finish`] afterwards. Recording is a pure
    /// observation: the wrapped sources consume RNG exactly as the
    /// unwrapped ones would, so the run itself is byte-identical.
    pub fn attach_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// A copy with a different root seed (for replicated runs).
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Scenario {
        let mut s = self.clone();
        s.reseed(seed);
        s
    }

    /// Changes the root seed in place.
    ///
    /// The clone-free counterpart of [`Scenario::with_seed`] for
    /// replication loops that keep one scenario and re-aim it at each
    /// derived seed. For trace-driven scenarios this also reopens the
    /// stream handout, so each replication replays the full trace from
    /// its first stream again.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        if let WorkloadSpec::Trace(handout) = &self.workload {
            handout.reset();
        }
    }

    /// A copy with a different population (for sweeps).
    #[must_use]
    pub fn with_students(&self, students: u32) -> Scenario {
        let mut s = self.clone();
        assert!(students > 0, "need students");
        s.students = students;
        s.name = format!("{}@{}", self.name, students);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let small = Scenario::small_college(1);
        let uni = Scenario::university(1);
        let national = Scenario::national_platform(1);
        assert!(small.students() < uni.students());
        assert!(uni.students() < national.students());
    }

    #[test]
    fn rural_is_harsher() {
        let rural = Scenario::rural_learners(1);
        let uni = Scenario::university(1);
        assert_eq!(rural.link(), LinkProfile::RuralInternet);
        assert!(rural.outages().availability() < uni.outages().availability());
    }

    #[test]
    fn workload_matches_population() {
        let s = Scenario::university(1);
        assert_eq!(s.workload().students(), 25_000);
    }

    #[test]
    fn chaos_defaults_off_and_threads_through() {
        let plain = Scenario::university(1);
        assert!(plain.chaos().is_none(), "presets carry no campaign");
        let spec = ChaosSpec::exam_day_crisis();
        let chaotic = plain.with_chaos(spec.clone());
        assert_eq!(chaotic.chaos(), Some(&spec));
        // Everything else is untouched — and equality still holds for
        // same-built scenarios (golden stability).
        assert_eq!(chaotic.with_seed(1).students(), plain.students());
        let built = Scenario::builder("c", 10)
            .chaos(spec.clone())
            .build()
            .unwrap();
        assert_eq!(built.chaos(), Some(&spec));
        assert_eq!(plain, Scenario::university(1));
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let s = Scenario::university(1).with_seed(99);
        assert_eq!(s.seed(), 99);
        assert_eq!(s.name(), "university");
        assert_eq!(s.students(), 25_000);
    }

    #[test]
    fn with_students_renames() {
        let s = Scenario::university(1).with_students(5_000);
        assert_eq!(s.students(), 5_000);
        assert!(s.name().contains("5000"));
        assert_eq!(s.seed(), 1);
    }

    #[test]
    #[should_panic(expected = "need students")]
    fn zero_students_rejected() {
        let _ = Scenario::university(1).with_students(0);
    }

    #[test]
    fn fidelity_defaults_to_event_and_threads_through() {
        let plain = Scenario::university(1);
        assert_eq!(plain.fidelity(), Fidelity::Event);
        let fluid = plain.with_fidelity(Fidelity::Fluid);
        assert_eq!(fluid.fidelity(), Fidelity::Fluid);
        assert_eq!(fluid.students(), plain.students());
        assert_ne!(fluid, plain, "fidelity is part of the configuration");
        let built = Scenario::builder("f", 10)
            .fidelity(Fidelity::Auto)
            .build()
            .unwrap();
        assert_eq!(built.fidelity(), Fidelity::Auto);
    }

    #[test]
    fn national_5m_is_auto_fidelity_multi_region() {
        let s = Scenario::national_5m(42);
        assert_eq!(s.students(), 5_000_000);
        assert_eq!(s.shards(), 4);
        assert_eq!(s.fidelity(), Fidelity::Auto);
        assert_eq!(s.name(), "national-5m");
    }

    #[test]
    fn shards_default_to_one_and_thread_through() {
        let plain = Scenario::university(1);
        assert_eq!(plain.shards(), 1);
        let sharded = plain.with_shards(4);
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.students(), plain.students());
        let built = Scenario::builder("s", 10).shards(2).build().unwrap();
        assert_eq!(built.shards(), 2);
        let err = Scenario::builder("s", 10).shards(0).build().unwrap_err();
        assert_eq!(err, ScenarioError::NoShards);
        assert!(err.to_string().contains("shard"));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Scenario::university(1).with_shards(0);
    }

    #[test]
    fn accessors() {
        let s = Scenario::small_college(7);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.years(), 3.0);
        assert_eq!(s.name(), "small-college");
        assert_eq!(s.calendar().term_start(), SimTime::ZERO);
    }

    #[test]
    fn builder_defaults_match_the_wired_presets() {
        let built = Scenario::builder("small-college", 2_000)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(built, Scenario::small_college(7));
    }

    #[test]
    fn builder_rejects_zero_students() {
        let err = Scenario::builder("ghost-town", 0).build().unwrap_err();
        assert_eq!(err, ScenarioError::NoStudents);
        assert!(err.to_string().contains("student"));
    }

    #[test]
    fn builder_rejects_bad_horizons() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Scenario::builder("x", 10).years(bad).build().unwrap_err();
            assert!(matches!(err, ScenarioError::BadHorizon(_)), "{bad}");
        }
    }

    #[test]
    fn builder_sets_every_knob() {
        let outages = OutageModel::new(SimDuration::from_hours(1), SimDuration::from_mins(30));
        let s = Scenario::builder("harsh", 123)
            .seed(9)
            .years(0.5)
            .link(LinkProfile::RuralInternet)
            .outages(outages)
            .calendar(AcademicCalendar::standard_semester(SimTime::from_secs(60)))
            .build()
            .unwrap();
        assert_eq!(s.name(), "harsh");
        assert_eq!(s.students(), 123);
        assert_eq!(s.seed(), 9);
        assert_eq!(s.years(), 0.5);
        assert_eq!(s.link(), LinkProfile::RuralInternet);
        assert_eq!(s.outages(), outages);
        assert_eq!(s.calendar().term_start(), SimTime::from_secs(60));
    }

    fn tiny_trace() -> Arc<WorkloadTrace> {
        let mut trace = WorkloadTrace::empty(4_000, 120.0);
        let mut stream = elc_wltrace::Stream::default();
        for i in 0..4u64 {
            stream.rates.push(elc_wltrace::RateSample {
                t_ns: i * 60_000_000_000,
                rate_bits: (40.0 + i as f64).to_bits(),
            });
            stream.slots.push(elc_wltrace::SlotSample {
                t_ns: i * 60_000_000_000,
                slot_ns: 60_000_000_000,
                count: 10 + i,
            });
        }
        trace.streams.push(stream);
        trace.into_shared()
    }

    #[test]
    fn trace_scenarios_adopt_the_recorded_population() {
        let s = Scenario::university(1)
            .with_workload_trace(tiny_trace())
            .unwrap();
        assert_eq!(s.students(), 4_000, "population follows the trace header");
        assert_eq!(s.workload().students(), 4_000);
        assert!(s.replay_trace().is_some());
        assert!(
            (s.workload().peak_rate() - 120.0).abs() < 1e-12,
            "replayed peak comes from the header"
        );
        // Cost consumers still get an analytic model, sized to the trace.
        assert_eq!(s.workload_model().students(), 4_000);
    }

    #[test]
    fn trace_scenarios_replay_recorded_counts() {
        use elc_simcore::rng::SimRng;
        let s = Scenario::university(1)
            .with_workload_trace(tiny_trace())
            .unwrap();
        let source = s.workload();
        let mut rng = SimRng::seed(9);
        let minute = SimDuration::from_mins(1);
        for i in 0..4u64 {
            let t = SimTime::ZERO + SimDuration::from_mins(i);
            assert_eq!(source.sample_arrivals(&mut rng, t, minute), 10 + i);
        }
    }

    #[test]
    fn empty_traces_are_rejected() {
        let empty = WorkloadTrace::empty(100, 1.0).into_shared();
        let err = Scenario::university(1)
            .with_workload_trace(empty)
            .unwrap_err();
        assert_eq!(err, ScenarioError::BadTrace);
        assert!(err.to_string().contains("trace"));
        let err = Scenario::builder("t", 10)
            .workload_trace(WorkloadTrace::empty(100, 1.0).into_shared())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::BadTrace);
    }

    #[test]
    fn builder_workload_knobs_are_last_wins() {
        let cal = AcademicCalendar::standard_semester(SimTime::ZERO);
        let model = WorkloadModel::builder(700, cal).build().unwrap();
        let s = Scenario::builder("t", 10)
            .workload_trace(tiny_trace())
            .workload_model(model.clone())
            .build()
            .unwrap();
        assert!(s.replay_trace().is_none(), "model cleared the trace");
        assert_eq!(s.workload_model(), model);
        let s = Scenario::builder("t", 10)
            .workload_model(model)
            .workload_trace(tiny_trace())
            .build()
            .unwrap();
        assert!(s.replay_trace().is_some(), "trace cleared the model");
    }

    #[test]
    fn equality_ignores_handout_claims_and_recorders() {
        let a = Scenario::university(1)
            .with_workload_trace(tiny_trace())
            .unwrap();
        let b = Scenario::university(1)
            .with_workload_trace(tiny_trace())
            .unwrap();
        assert_eq!(a, b, "distinct allocations of the same trace compare equal");
        // Claiming a stream on one side must not break equality.
        let _source = a.workload();
        assert_eq!(a, b);
        let mut recorded = Scenario::university(1);
        recorded.attach_recorder(TraceRecorder::new());
        assert_eq!(recorded, Scenario::university(1));
        assert_ne!(a, Scenario::university(1), "trace vs generated differ");
    }

    #[test]
    fn reseed_reopens_the_stream_handout() {
        use elc_simcore::rng::SimRng;
        let mut s = Scenario::university(1)
            .with_workload_trace(tiny_trace())
            .unwrap();
        let minute = SimDuration::from_mins(1);
        let mut rng = SimRng::seed(9);
        let first = s
            .workload()
            .sample_arrivals(&mut rng, SimTime::ZERO, minute);
        s.reseed(2);
        let again = s
            .workload()
            .sample_arrivals(&mut rng, SimTime::ZERO, minute);
        assert_eq!(first, again, "replication replays the trace from its start");
        assert_eq!(s.seed(), 2);
    }

    #[test]
    fn attached_recorder_captures_generated_runs() {
        use elc_simcore::rng::SimRng;
        let mut s = Scenario::small_college(3);
        let recorder = TraceRecorder::new();
        s.attach_recorder(recorder.clone());
        let source = s.workload();
        let mut rng = SimRng::seed(3);
        let mut plain_rng = SimRng::seed(3);
        let plain = Scenario::small_college(3).workload();
        let minute = SimDuration::from_mins(1);
        for i in 0..8u64 {
            let t = SimTime::ZERO + SimDuration::from_mins(i);
            assert_eq!(
                source.sample_arrivals(&mut rng, t, minute),
                plain.sample_arrivals(&mut plain_rng, t, minute),
                "recording must not perturb the run"
            );
        }
        let trace = recorder.finish().expect("eight slots were recorded");
        assert_eq!(trace.students, 2_000);
        assert_eq!(trace.streams[0].slots.len(), 8);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_works() {
        let s = Scenario::new(
            "legacy",
            10,
            1,
            2.0,
            LinkProfile::MetroInternet,
            OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8)),
        );
        assert_eq!(s.name(), "legacy");
        assert_eq!(s.years(), 2.0);
    }
}
