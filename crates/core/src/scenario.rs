//! Evaluation scenarios.
//!
//! A [`Scenario`] bundles everything an experiment needs: the institution's
//! size, its semester calendar, the learners' connectivity, a seed and a
//! planning horizon. Presets cover the populations the paper's introduction
//! motivates, from a small college to a national platform reaching rural
//! learners.

use std::error::Error;
use std::fmt;

use elc_elearn::calendar::AcademicCalendar;
use elc_elearn::workload::WorkloadModel;
use elc_net::link::LinkProfile;
use elc_net::outage::OutageModel;
use elc_resil::chaos::ChaosSpec;
use elc_simcore::time::{SimDuration, SimTime};

/// Why a [`ScenarioBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioError {
    /// The population was zero.
    NoStudents,
    /// The planning horizon was not a positive, finite number of years.
    BadHorizon(f64),
    /// The shard count was zero.
    NoShards,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoStudents => write!(f, "scenario needs at least one student"),
            ScenarioError::BadHorizon(y) => {
                write!(f, "scenario horizon must be positive and finite, got {y}")
            }
            ScenarioError::NoShards => write!(f, "scenario needs at least one shard"),
        }
    }
}

impl Error for ScenarioError {}

/// Builds a [`Scenario`] field by field, validating on [`build`].
///
/// Only the name and population are mandatory; everything else defaults
/// to the standard preset configuration (seed 0, three academic years,
/// metro broadband with rare short outages, standard semester calendar).
///
/// ```
/// use elc_core::scenario::Scenario;
/// use elc_net::link::LinkProfile;
///
/// let s = Scenario::builder("evening-school", 800)
///     .seed(42)
///     .years(1.5)
///     .link(LinkProfile::RuralInternet)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(s.students(), 800);
/// assert_eq!(s.years(), 1.5);
/// ```
///
/// [`build`]: ScenarioBuilder::build
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    students: u32,
    seed: u64,
    years: f64,
    link: LinkProfile,
    outages: OutageModel,
    calendar: AcademicCalendar,
    chaos: Option<ChaosSpec>,
    shards: u32,
}

impl ScenarioBuilder {
    /// The outage process shared by the wired presets.
    fn standard_outages() -> OutageModel {
        OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8))
    }

    fn new(name: impl Into<String>, students: u32) -> Self {
        ScenarioBuilder {
            name: name.into(),
            students,
            seed: 0,
            years: 3.0,
            link: LinkProfile::MetroInternet,
            outages: Self::standard_outages(),
            calendar: AcademicCalendar::standard_semester(SimTime::ZERO),
            chaos: None,
            shards: 1,
        }
    }

    /// Sets the root seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the planning horizon in years (default 3.0).
    #[must_use]
    pub fn years(mut self, years: f64) -> Self {
        self.years = years;
        self
    }

    /// Sets the learner access-link profile (default metro broadband).
    #[must_use]
    pub fn link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Sets the connectivity outage process (default: rare, short).
    #[must_use]
    pub fn outages(mut self, outages: OutageModel) -> Self {
        self.outages = outages;
        self
    }

    /// Sets the academic calendar (default: standard semester from t=0).
    #[must_use]
    pub fn calendar(mut self, calendar: AcademicCalendar) -> Self {
        self.calendar = calendar;
        self
    }

    /// Sets the chaos-injection campaign for fault experiments (default:
    /// none — experiments that inject faults fall back to their own
    /// default campaign; see E16).
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the shard count for intra-replication parallelism (default
    /// 1). Output is byte-identical at any shard count; shards only
    /// change how a run is scheduled onto cores.
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the population is zero or the horizon
    /// is not a positive, finite number of years.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        if self.students == 0 {
            return Err(ScenarioError::NoStudents);
        }
        if !(self.years.is_finite() && self.years > 0.0) {
            return Err(ScenarioError::BadHorizon(self.years));
        }
        if self.shards == 0 {
            return Err(ScenarioError::NoShards);
        }
        Ok(Scenario {
            name: self.name,
            students: self.students,
            seed: self.seed,
            years: self.years,
            link: self.link,
            outages: self.outages,
            calendar: self.calendar,
            chaos: self.chaos,
            shards: self.shards,
        })
    }
}

/// A named evaluation context.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    students: u32,
    seed: u64,
    years: f64,
    link: LinkProfile,
    outages: OutageModel,
    calendar: AcademicCalendar,
    chaos: Option<ChaosSpec>,
    shards: u32,
}

impl Scenario {
    /// Starts building a scenario for `students` learners named `name`.
    ///
    /// See [`ScenarioBuilder`] for the optional knobs and defaults.
    #[must_use]
    pub fn builder(name: impl Into<String>, students: u32) -> ScenarioBuilder {
        ScenarioBuilder::new(name, students)
    }

    /// Creates a scenario from positional arguments.
    ///
    /// # Panics
    ///
    /// Panics if `students` is zero or `years` is not positive.
    #[deprecated(
        since = "0.1.0",
        note = "use `Scenario::builder(name, students)…build()`, which validates instead of panicking"
    )]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        students: u32,
        seed: u64,
        years: f64,
        link: LinkProfile,
        outages: OutageModel,
    ) -> Self {
        Scenario::builder(name, students)
            .seed(seed)
            .years(years)
            .link(link)
            .outages(outages)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// A 2 000-student college on metro broadband.
    #[must_use]
    pub fn small_college(seed: u64) -> Self {
        Scenario::builder("small-college", 2_000)
            .seed(seed)
            .build()
            .expect("preset is valid")
    }

    /// A 25 000-student university on metro broadband.
    #[must_use]
    pub fn university(seed: u64) -> Self {
        Scenario::builder("university", 25_000)
            .seed(seed)
            .build()
            .expect("preset is valid")
    }

    /// A 150 000-learner national platform.
    #[must_use]
    pub fn national_platform(seed: u64) -> Self {
        Scenario::builder("national-platform", 150_000)
            .seed(seed)
            .build()
            .expect("preset is valid")
    }

    /// Rural learners (the paper's closing motivation): degraded links,
    /// frequent outages.
    #[must_use]
    pub fn rural_learners(seed: u64) -> Self {
        Scenario::builder("rural-learners", 10_000)
            .seed(seed)
            .link(LinkProfile::RuralInternet)
            .outages(OutageModel::new(
                SimDuration::from_hours(30),
                SimDuration::from_mins(12),
            ))
            .build()
            .expect("preset is valid")
    }

    /// The scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enrolled students.
    #[must_use]
    pub fn students(&self) -> u32 {
        self.students
    }

    /// Root seed; experiments derive their own streams from it.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Planning horizon in years.
    #[must_use]
    pub fn years(&self) -> f64 {
        self.years
    }

    /// Learner access-link profile.
    #[must_use]
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// Learner connectivity outage process.
    #[must_use]
    pub fn outages(&self) -> OutageModel {
        self.outages
    }

    /// The semester calendar.
    #[must_use]
    pub fn calendar(&self) -> AcademicCalendar {
        self.calendar
    }

    /// The chaos campaign, if one was configured (`None` lets fault
    /// experiments pick their default).
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosSpec> {
        self.chaos.as_ref()
    }

    /// A copy with the given chaos campaign.
    #[must_use]
    pub fn with_chaos(&self, chaos: ChaosSpec) -> Scenario {
        let mut s = self.clone();
        s.chaos = Some(chaos);
        s
    }

    /// Shard count for intra-replication parallelism (default 1).
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// A copy with the given shard count. Sharding never changes what a
    /// run computes — only how it is spread over cores — so reports stay
    /// byte-identical at any value.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    #[must_use]
    pub fn with_shards(&self, shards: u32) -> Scenario {
        assert!(shards > 0, "need at least one shard");
        let mut s = self.clone();
        s.shards = shards;
        s
    }

    /// The institutional workload model.
    #[must_use]
    pub fn workload(&self) -> WorkloadModel {
        WorkloadModel::standard(self.students, self.calendar)
    }

    /// A copy with a different root seed (for replicated runs).
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Scenario {
        let mut s = self.clone();
        s.reseed(seed);
        s
    }

    /// Changes the root seed in place.
    ///
    /// The clone-free counterpart of [`Scenario::with_seed`] for
    /// replication loops that keep one scenario and re-aim it at each
    /// derived seed.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// A copy with a different population (for sweeps).
    #[must_use]
    pub fn with_students(&self, students: u32) -> Scenario {
        let mut s = self.clone();
        assert!(students > 0, "need students");
        s.students = students;
        s.name = format!("{}@{}", self.name, students);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let small = Scenario::small_college(1);
        let uni = Scenario::university(1);
        let national = Scenario::national_platform(1);
        assert!(small.students() < uni.students());
        assert!(uni.students() < national.students());
    }

    #[test]
    fn rural_is_harsher() {
        let rural = Scenario::rural_learners(1);
        let uni = Scenario::university(1);
        assert_eq!(rural.link(), LinkProfile::RuralInternet);
        assert!(rural.outages().availability() < uni.outages().availability());
    }

    #[test]
    fn workload_matches_population() {
        let s = Scenario::university(1);
        assert_eq!(s.workload().students(), 25_000);
    }

    #[test]
    fn chaos_defaults_off_and_threads_through() {
        let plain = Scenario::university(1);
        assert!(plain.chaos().is_none(), "presets carry no campaign");
        let spec = ChaosSpec::exam_day_crisis();
        let chaotic = plain.with_chaos(spec.clone());
        assert_eq!(chaotic.chaos(), Some(&spec));
        // Everything else is untouched — and equality still holds for
        // same-built scenarios (golden stability).
        assert_eq!(chaotic.with_seed(1).students(), plain.students());
        let built = Scenario::builder("c", 10)
            .chaos(spec.clone())
            .build()
            .unwrap();
        assert_eq!(built.chaos(), Some(&spec));
        assert_eq!(plain, Scenario::university(1));
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let s = Scenario::university(1).with_seed(99);
        assert_eq!(s.seed(), 99);
        assert_eq!(s.name(), "university");
        assert_eq!(s.students(), 25_000);
    }

    #[test]
    fn with_students_renames() {
        let s = Scenario::university(1).with_students(5_000);
        assert_eq!(s.students(), 5_000);
        assert!(s.name().contains("5000"));
        assert_eq!(s.seed(), 1);
    }

    #[test]
    #[should_panic(expected = "need students")]
    fn zero_students_rejected() {
        let _ = Scenario::university(1).with_students(0);
    }

    #[test]
    fn shards_default_to_one_and_thread_through() {
        let plain = Scenario::university(1);
        assert_eq!(plain.shards(), 1);
        let sharded = plain.with_shards(4);
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.students(), plain.students());
        let built = Scenario::builder("s", 10).shards(2).build().unwrap();
        assert_eq!(built.shards(), 2);
        let err = Scenario::builder("s", 10).shards(0).build().unwrap_err();
        assert_eq!(err, ScenarioError::NoShards);
        assert!(err.to_string().contains("shard"));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Scenario::university(1).with_shards(0);
    }

    #[test]
    fn accessors() {
        let s = Scenario::small_college(7);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.years(), 3.0);
        assert_eq!(s.name(), "small-college");
        assert_eq!(s.calendar().term_start(), SimTime::ZERO);
    }

    #[test]
    fn builder_defaults_match_the_wired_presets() {
        let built = Scenario::builder("small-college", 2_000)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(built, Scenario::small_college(7));
    }

    #[test]
    fn builder_rejects_zero_students() {
        let err = Scenario::builder("ghost-town", 0).build().unwrap_err();
        assert_eq!(err, ScenarioError::NoStudents);
        assert!(err.to_string().contains("student"));
    }

    #[test]
    fn builder_rejects_bad_horizons() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Scenario::builder("x", 10).years(bad).build().unwrap_err();
            assert!(matches!(err, ScenarioError::BadHorizon(_)), "{bad}");
        }
    }

    #[test]
    fn builder_sets_every_knob() {
        let outages = OutageModel::new(SimDuration::from_hours(1), SimDuration::from_mins(30));
        let s = Scenario::builder("harsh", 123)
            .seed(9)
            .years(0.5)
            .link(LinkProfile::RuralInternet)
            .outages(outages)
            .calendar(AcademicCalendar::standard_semester(SimTime::from_secs(60)))
            .build()
            .unwrap();
        assert_eq!(s.name(), "harsh");
        assert_eq!(s.students(), 123);
        assert_eq!(s.seed(), 9);
        assert_eq!(s.years(), 0.5);
        assert_eq!(s.link(), LinkProfile::RuralInternet);
        assert_eq!(s.outages(), outages);
        assert_eq!(s.calendar().term_start(), SimTime::from_secs(60));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_works() {
        let s = Scenario::new(
            "legacy",
            10,
            1,
            2.0,
            LinkProfile::MetroInternet,
            OutageModel::new(SimDuration::from_hours(400), SimDuration::from_mins(8)),
        );
        assert_eq!(s.name(), "legacy");
        assert_eq!(s.years(), 2.0);
    }
}
