//! The deployment advisor.
//!
//! §II: "the customers can choose one of cloud deployment models, depending
//! on their requirements." The advisor codifies §IV's guidance: it scores
//! the three models against a [`Requirements`] profile using *measured*
//! metrics (from the experiment suite), normalizes each criterion, and
//! returns a ranked recommendation with the reasoning spelled out.

use std::fmt;

use elc_deploy::model::DeploymentKind;

use crate::experiments::t1::ModelMetrics;
use crate::requirements::Requirements;

/// A ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Models with their scores, best first. Scores are in `[0, 1]`.
    pub ranking: Vec<(DeploymentKind, f64)>,
    /// Human-readable justification lines.
    pub rationale: Vec<String>,
}

impl Recommendation {
    /// The winning model.
    #[must_use]
    pub fn best(&self) -> DeploymentKind {
        self.ranking[0].0
    }
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recommendation: {}", self.best())?;
        for (kind, score) in &self.ranking {
            writeln!(f, "  {kind}: {score:.3}")?;
        }
        for line in &self.rationale {
            writeln!(f, "  - {line}")?;
        }
        Ok(())
    }
}

/// Normalizes a lower-is-better criterion to per-model goodness in
/// `[0, 1]` (1 = best). Equal values all score 1.
fn goodness(values: [f64; 3]) -> [f64; 3] {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < f64::EPSILON * max.abs().max(1.0) {
        return [1.0; 3];
    }
    let mut out = [0.0; 3];
    for (o, v) in out.iter_mut().zip(values) {
        *o = (max - v) / (max - min);
    }
    out
}

/// Scores the three models for a requirements profile.
///
/// # Panics
///
/// Panics if the requirements fail validation.
#[must_use]
pub fn advise(requirements: &Requirements, metrics: &ModelMetrics) -> Recommendation {
    requirements
        .validate()
        .unwrap_or_else(|field| panic!("invalid requirements: {field} out of [0, 1]"));

    // (criterion label, per-model values, weight)
    let criteria: [(&str, [f64; 3], f64); 6] = [
        ("cost", metrics.tco, requirements.cost_sensitivity),
        (
            "confidentiality",
            metrics.confidential_incidents,
            requirements.security_sensitivity,
        ),
        (
            "elasticity",
            metrics.surge_rejected,
            requirements.elasticity_need,
        ),
        (
            "portability",
            metrics.exit_cost,
            requirements.portability_concern,
        ),
        (
            "time to service",
            metrics.time_to_service_days,
            requirements.time_pressure,
        ),
        (
            "ops burden",
            metrics.ops_fte,
            1.0 - requirements.ops_capacity,
        ),
    ];

    let mut scores = [0.0f64; 3];
    let mut weight_sum = 0.0;
    let mut rationale = Vec::new();
    for (label, values, weight) in criteria {
        if weight <= 0.0 {
            continue;
        }
        let g = goodness(values);
        for (s, gi) in scores.iter_mut().zip(g) {
            *s += gi * weight;
        }
        weight_sum += weight;
        let winner = (0..3).max_by(|&a, &b| g[a].partial_cmp(&g[b]).expect("goodness is finite"));
        if let Some(w) = winner {
            rationale.push(format!(
                "{label} (weight {weight:.2}): favours {}",
                DeploymentKind::ALL[w]
            ));
        }
    }
    if weight_sum > 0.0 {
        for s in &mut scores {
            *s /= weight_sum;
        }
    }

    let mut ranking: Vec<(DeploymentKind, f64)> =
        DeploymentKind::ALL.iter().copied().zip(scores).collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));

    Recommendation { ranking, rationale }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Metrics with the shapes every experiment establishes (public fast
    /// and elastic, private secure and portable, hybrid in between).
    fn metrics() -> ModelMetrics {
        ModelMetrics {
            tco: [150_000.0, 250_000.0, 300_000.0],
            staleness_days: [1.0, 30.0, 6.0],
            loss_probability: [1e-6, 0.06, 0.004],
            confidential_incidents: [0.3, 0.096, 0.096],
            exit_cost: [120_000.0, 0.0, 40_000.0],
            time_to_service_days: [2.2, 55.0, 70.0],
            ops_fte: [0.35, 0.6, 0.95],
            surge_rejected: [0.01, 0.45, 0.01],
        }
    }

    #[test]
    fn startup_gets_public() {
        let rec = advise(&Requirements::startup_program(), &metrics());
        assert_eq!(rec.best(), DeploymentKind::Public);
    }

    #[test]
    fn exam_authority_gets_private() {
        let rec = advise(&Requirements::exam_authority(), &metrics());
        assert_eq!(rec.best(), DeploymentKind::Private);
    }

    #[test]
    fn scores_are_normalized() {
        let rec = advise(&Requirements::balanced_university(), &metrics());
        for (_, s) in &rec.ranking {
            assert!((0.0..=1.0).contains(s), "score {s}");
        }
        // Sorted descending.
        for w in rec.ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn rationale_names_winners() {
        let rec = advise(&Requirements::balanced_university(), &metrics());
        assert!(!rec.rationale.is_empty());
        assert!(rec
            .rationale
            .iter()
            .any(|l| l.contains("time to service") && l.contains("public")));
        assert!(rec
            .rationale
            .iter()
            .any(|l| l.contains("portability") && l.contains("private")));
    }

    #[test]
    fn goodness_normalization() {
        assert_eq!(goodness([1.0, 3.0, 2.0]), [1.0, 0.0, 0.5]);
        assert_eq!(goodness([5.0, 5.0, 5.0]), [1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid requirements")]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_requirements_rejected() {
        let mut r = Requirements::default();
        r.cost_sensitivity = 2.0;
        let _ = advise(&r, &metrics());
    }

    #[test]
    fn display_renders() {
        let rec = advise(&Requirements::default(), &metrics());
        let text = rec.to_string();
        assert!(text.contains("recommendation:"));
    }
}
